"""Autotune a user-defined kernel (not part of SPAPT).

The library is not limited to the 11 SPAPT problems: any loop nest expressed
in the IR can be wrapped into a tunable program and driven by the same
active learner.  This example defines a small 2-D convolution-like stencil,
exposes unroll and tile parameters for its loops, attaches a noise profile,
and trains a runtime predictor for it.

It demonstrates the three extension points a user touches:

* :mod:`repro.ir` to describe the kernel,
* :class:`repro.spapt.SearchSpace` / :class:`TunableParameter` to describe
  the tunables, and
* :class:`repro.machine.MachineCostModel` + :class:`repro.measurement` to
  obtain (noisy) measurements — on a real system this is where an actual
  compiler-and-run harness would plug in.

Run with::

    python examples/custom_kernel_autotuning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ActiveLearner, LearnerConfig, TestSet, sequential_plan
from repro.ir import ArrayDecl, ArrayRef, Kernel, Loop, Statement, Var
from repro.machine import MachineCostModel
from repro.measurement import NoiseModel, NoiseProfile, Profiler, noise_model_from_profile
from repro.spapt import SearchSpace, TunableParameter


def build_blur_kernel(n: int = 1200) -> Kernel:
    """A 3x3 blur: out[i][j] = average of the 3x3 neighbourhood of img."""
    reads = [
        ArrayRef("img", (Var("i") + di, Var("j") + dj))
        for di in (-1, 0, 1)
        for dj in (-1, 0, 1)
    ]
    statement = Statement(
        writes=(ArrayRef("out", (Var("i"), Var("j"))),),
        reads=tuple(reads),
        flops=9,
        label="blur",
    )
    inner = Loop(var="j", lower=1, upper=Var("N") - 1, body=(statement,))
    outer = Loop(var="i", lower=1, upper=Var("N") - 1, body=(inner,))
    return Kernel(
        name="blur3x3",
        sizes={"N": n},
        arrays=(ArrayDecl("img", ("N", "N")), ArrayDecl("out", ("N", "N"))),
        loops=(outer,),
    )


class BlurProgram:
    """Minimal TunableProgram wrapper around the custom kernel."""

    def __init__(self) -> None:
        self.name = "blur3x3"
        self.kernel = build_blur_kernel()
        self.space = SearchSpace(
            [
                TunableParameter.unroll("U_i", "i", max_factor=16),
                TunableParameter.unroll("U_j", "j", max_factor=16),
                TunableParameter.cache_tile("T_j", "j", values=(1,) + tuple(range(32, 513, 32))),
                TunableParameter.register_tile("RT_i", "i", max_factor=4),
            ]
        )
        self._model = MachineCostModel(self.kernel, time_scale=1.0)
        self._noise = noise_model_from_profile(
            NoiseProfile(interference_sigma=0.006, layout_sigma_high=0.04)
        )

    # -- TunableProgram protocol ------------------------------------------
    def true_runtime(self, configuration):
        return self._model.runtime_seconds(self.space.to_transform_configuration(configuration))

    def compile_time(self, configuration):
        return self._model.compile_seconds(self.space.to_transform_configuration(configuration))

    def noise_sensitivity(self, configuration):
        return self._model.noise_sensitivity(self.space.to_transform_configuration(configuration))

    @property
    def noise_model(self) -> NoiseModel:
        return self._noise

    # -- the small surface ActiveLearner needs beyond the protocol --------
    @property
    def search_space(self) -> SearchSpace:
        return self.space

    def features(self, configuration):
        return self.space.normalize(configuration)

    def features_many(self, configurations):
        return self.space.normalize_many(configurations)


def main() -> None:
    rng = np.random.default_rng(3)
    program = BlurProgram()
    print(f"custom kernel: {program.name}")
    print(program.space.describe())

    # Build a held-out test set by profiling random configurations.
    profiler = Profiler(program, rng=rng)
    test_configurations = program.space.sample_distinct(120, rng)
    means = []
    for configuration in test_configurations:
        profiler.measure(configuration, repetitions=6)
        means.append(profiler.mean_runtime(configuration))
    test_set = TestSet(
        configurations=tuple(test_configurations),
        features=program.features_many(test_configurations),
        mean_runtimes=np.asarray(means),
    )

    config = LearnerConfig(
        n_initial=5,
        seed_observations=15,
        n_candidates=40,
        max_training_examples=90,
        reference_size=25,
        evaluation_interval=10,
        tree_particles=20,
    )
    learner = ActiveLearner(program, plan=sequential_plan(15), config=config, rng=rng)
    result = learner.run(test_set)

    print()
    print(f"best RMSE           : {result.curve.best_error:.4f} s")
    print(f"profiling cost      : {result.total_cost_seconds:.0f} simulated seconds")
    best_prediction = result.model.predict(test_set.features)
    best_index = int(np.argmin(best_prediction.mean))
    print(f"model's favourite test configuration: {test_set.configurations[best_index]}"
          f" (measured mean {test_set.mean_runtimes[best_index]:.4f} s)")
    default_runtime = program.true_runtime(program.space.default_configuration())
    print(f"untransformed baseline runtime        : {default_runtime:.4f} s")


if __name__ == "__main__":
    main()
