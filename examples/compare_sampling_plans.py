"""Compare the paper's three sampling plans on one benchmark.

Reproduces, for a single benchmark, the comparison behind Table 1 and
Figure 6 of the paper: the 35-observation baseline, the single-observation
plan and the variable (sequential analysis) plan are each driven by the same
active learner, and we report the lowest error level all of them reach, the
profiling cost each needed to get there, and the speed-up of the variable
plan over the baseline.

Run with::

    python examples/compare_sampling_plans.py [benchmark]

where ``benchmark`` is one of the 11 SPAPT names (default: gemver, the
paper's best case at 26x).
"""

from __future__ import annotations

import sys

from repro.core import ComparisonConfig, LearnerConfig, compare_sampling_plans, standard_plans
from repro.spapt import benchmark_names, get_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gemver"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose from {benchmark_names()}")
    benchmark = get_benchmark(name)

    config = ComparisonConfig(
        learner=LearnerConfig(
            n_initial=5,
            seed_observations=20,
            n_candidates=40,
            max_training_examples=100,
            reference_size=25,
            evaluation_interval=10,
            tree_particles=20,
        ),
        repetitions=2,
        test_size=200,
        test_observations=10,
        seed=2017,
    )
    print(f"comparing sampling plans on {name} (this runs {config.repetitions} repetitions)...")
    comparison = compare_sampling_plans(benchmark, plans=standard_plans(), config=config)

    print()
    print(f"lowest common RMSE: {comparison.lowest_common_rmse:.4f} s")
    for plan_name, cost in sorted(comparison.cost_to_reach.items(), key=lambda kv: kv[1]):
        print(f"  {plan_name:<24} reaches it after {cost:12.1f} simulated seconds")
    speedup = comparison.speedup("all observations", "variable observations")
    print()
    print(f"speed-up of variable observations over the 35-sample baseline: {speedup:.2f}x")

    print()
    print("learning curves (sampled):")
    for plan_name, curve in comparison.curves.items():
        step = max(len(curve.points) // 6, 1)
        series = ", ".join(
            f"({p.cost_seconds:.0f}s, {p.rmse:.3f})" for p in curve.points[::step]
        )
        print(f"  {plan_name:<24} {series}")


if __name__ == "__main__":
    main()
