"""Quickstart: build a runtime predictor for one SPAPT kernel.

This is the smallest end-to-end use of the library:

1. pick a SPAPT benchmark (dense matrix multiplication, ``mm``);
2. build a held-out test set of configurations (each profiled a few times,
   exactly like the paper's datasets);
3. run the paper's active learner with the *variable observations* plan —
   one profiling run per selection, revisiting configurations only when the
   model thinks more samples of them are worth their cost;
4. look at the learning curve: model error (RMSE) against cumulative
   simulated compilation + profiling cost.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ActiveLearner, LearnerConfig, build_test_set, sequential_plan
from repro.spapt import get_benchmark


def main() -> None:
    rng = np.random.default_rng(2017)
    benchmark = get_benchmark("mm")
    print(f"benchmark: {benchmark.name}")
    print(benchmark.search_space.describe())
    print()

    # A held-out test set: random configurations with averaged observations.
    test_set = build_test_set(benchmark, size=200, observations=10, rng=rng)

    # Laptop-sized learner configuration; LearnerConfig.paper_scale() holds
    # the parameters from Section 4.4 of the paper.
    config = LearnerConfig(
        n_initial=5,
        seed_observations=35,
        n_candidates=50,
        max_training_examples=120,
        reference_size=30,
        evaluation_interval=10,
        tree_particles=25,
    )
    learner = ActiveLearner(
        benchmark, plan=sequential_plan(35), config=config, rng=rng
    )
    result = learner.run(test_set)

    print("learning curve (cumulative cost -> RMSE):")
    for point in result.curve.points:
        print(
            f"  {point.cost_seconds:10.1f} s   RMSE {point.rmse:.4f} s   "
            f"({point.training_examples} examples, {point.observations} runs)"
        )
    print()
    print(f"final RMSE          : {result.curve.points[-1].rmse:.4f} s")
    print(f"best RMSE           : {result.curve.best_error:.4f} s")
    print(f"profiling cost      : {result.total_cost_seconds:.0f} simulated seconds")
    print(f"distinct configs    : {result.distinct_configurations}")
    print(f"total observations  : {result.total_observations}")
    revisited = sum(1 for count in result.observation_counts.values() if count > 1)
    print(f"configs measured >1x: {revisited}")


if __name__ == "__main__":
    main()
