"""Autotune matrix multiplication with the learned runtime predictor.

The paper's models exist to *find good optimization settings cheaply*: once
a runtime predictor is trained, searching the space is nearly free because
candidate configurations are ranked by the model instead of being compiled
and run.  This example closes that loop for ``mm``:

1. train a predictor with the variable-observation active learner;
2. rank a large pool of random configurations with the model and profile
   only the few most promising ones;
3. compare the result against the ``-O2`` baseline (no transformation) and
   against a pure random search that spends the same profiling budget.

Run with::

    python examples/tune_matrix_multiply.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ActiveLearner, LearnerConfig, build_test_set, sequential_plan
from repro.measurement import Profiler
from repro.spapt import get_benchmark


def main() -> None:
    rng = np.random.default_rng(7)
    benchmark = get_benchmark("mm")
    space = benchmark.search_space

    # --- train the predictor with the paper's variable-observation learner.
    test_set = build_test_set(benchmark, size=150, observations=8, rng=rng)
    config = LearnerConfig(
        n_initial=5,
        seed_observations=20,
        n_candidates=50,
        max_training_examples=120,
        reference_size=30,
        evaluation_interval=20,
        tree_particles=25,
    )
    learner = ActiveLearner(benchmark, plan=sequential_plan(20), config=config, rng=rng)
    result = learner.run(test_set)
    model = result.model
    training_cost = result.total_cost_seconds
    print(f"trained predictor: best RMSE {result.curve.best_error:.4f} s, "
          f"training cost {training_cost:.0f} simulated seconds")

    # --- model-guided search: rank many candidates, profile only the top few.
    pool = space.sample_distinct(2000, rng)
    features = benchmark.features_many(pool)
    predictions = model.predict(features)
    ranked = [pool[i] for i in np.argsort(predictions.mean)]
    profiler = Profiler(benchmark, rng=rng)
    top_k = 10
    measured = {
        configuration: float(np.mean(profiler.measure(configuration, repetitions=5)))
        for configuration in ranked[:top_k]
    }
    best_config, best_runtime = min(measured.items(), key=lambda kv: kv[1])
    search_cost = profiler.ledger.total_seconds

    # --- baselines.
    default_runtime = benchmark.true_runtime(space.default_configuration())
    random_profiler = Profiler(benchmark, rng=np.random.default_rng(99))
    random_best = float("inf")
    while random_profiler.ledger.total_seconds < training_cost + search_cost:
        candidate = space.random_configuration(random_profiler._rng)
        runtime = float(np.mean(random_profiler.measure(candidate, repetitions=5)))
        random_best = min(random_best, runtime)

    print()
    print(f"-O2 baseline runtime                      : {default_runtime:.4f} s")
    print(f"best found by model-guided search         : {best_runtime:.4f} s "
          f"({default_runtime / best_runtime:.2f}x faster than -O2)")
    print(f"best found by random search (same budget) : {random_best:.4f} s")
    print()
    parameter_names = [p.name for p in space.parameters]
    print("best configuration:")
    for name, value in zip(parameter_names, best_config):
        print(f"  {name:>6} = {value}")


if __name__ == "__main__":
    main()
