"""Reproduce the paper's motivation study (Figures 1 and 2, Table 2 flavour).

Three short studies that together motivate sequential analysis:

1. **How noisy are measurements?**  Profile a handful of configurations of a
   quiet benchmark (mvt) and a noisy one (correlation) 35 times each and
   report the CI/mean validation the paper describes in Section 4.3.
2. **Figure 1** — over the mm unroll plane, how much error would a single
   observation incur, and how many observations does a post-hoc optimal
   plan actually need per point?
3. **Figure 2** — the adi runtime vs unroll-factor sweep with one sample per
   point, whose structure is visible despite the noise.

Run with::

    python examples/motivation_noise_study.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ExperimentScale, run_figure1, run_figure2
from repro.measurement import Profiler, summarize
from repro.spapt import get_benchmark


def ci_validation_study() -> None:
    print("=== CI/mean validation (Section 4.3) ===")
    for name in ("mvt", "correlation"):
        benchmark = get_benchmark(name)
        rng = np.random.default_rng(11)
        profiler = Profiler(benchmark, rng=rng)
        failures_1pct = 0
        failures_5pct = 0
        trials = 25
        for _ in range(trials):
            configuration = benchmark.search_space.random_configuration(rng)
            observations = profiler.measure(configuration, repetitions=35)
            summary = summarize(observations)
            if not summary.passes_ci_validation(0.01):
                failures_1pct += 1
            if not summary.passes_ci_validation(0.05):
                failures_5pct += 1
        print(
            f"  {name:<12} {failures_1pct}/{trials} configurations break the 1% CI/mean "
            f"threshold with 35 observations ({failures_5pct} break the 5% threshold)"
        )
    print()


def main() -> None:
    ci_validation_study()

    scale = ExperimentScale.laptop(benchmarks=("mm", "adi"))
    print("=== Figure 1: error and optimal sample size over the mm unroll plane ===")
    figure1 = run_figure1(scale)
    print(figure1.render())
    print()

    print("=== Figure 2: adi runtime vs unroll factor, one observation per point ===")
    figure2 = run_figure2(scale)
    print(figure2.render())


if __name__ == "__main__":
    main()
