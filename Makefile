PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test docs-check bench bench-update bench-session bench-batch bench-broker bench-gate lint coverage profile chaos

## Coverage ratchet for the CI coverage job: fail below this line rate.
## Raise it when coverage grows; never lower it to make a PR pass.
COV_MIN ?= 75

## Tier-1 verification: the full test suite plus the benchmark harness.
test:
	$(PYTHON) -m pytest -x -q

## Static checks (ruff check, no autofix; configuration in ruff.toml).
## CI installs ruff; locally: pip install ruff.
lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

## Execute every fenced shell command in README.md's Quickstart section
## (smoke mode), so the documentation cannot rot silently.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q

## Refresh the tracked model benchmarks (writes BENCH_model.json).
bench:
	$(PYTHON) -m pytest benchmarks/test_bench_predict.py benchmarks/test_bench_model_update.py -q

## Refresh only the model-update benchmark group (the SMC update kernel):
## the quick loop when iterating on the update path.
bench-update:
	$(PYTHON) -m pytest benchmarks/test_bench_model_update.py -q \
		-k "particle_update or dynamic_tree_update"

## Refresh the ask/tell session dispatch-overhead group (session-driven
## run vs the frozen inline loop; also asserts < 5% dispatch overhead).
bench-session:
	$(PYTHON) -m pytest benchmarks/test_bench_session_overhead.py -q

## Refresh the batch-acquisition group: one ask(5) batch cycle vs five
## ask(1) cycles from the same primed session.
bench-batch:
	$(PYTHON) -m pytest benchmarks/test_bench_batch_ask.py -q

## Refresh the broker-overhead group (bare ProfilerBroker vs the
## ResilientBroker happy path; also asserts < 5% wrapper overhead).
bench-broker:
	$(PYTHON) -m pytest benchmarks/test_bench_broker_overhead.py -q

## Chaos suite: fault injection, retry/quarantine, and the bit-identity
## contract under a fresh random fault schedule each run.  The chosen
## seed is echoed in the pytest header; pin a failing schedule with
## CHAOS_SEED=N.
chaos:
	$(PYTHON) -m pytest tests/test_chaos.py -q \
		$(if $(CHAOS_SEED),--chaos-seed $(CHAOS_SEED))

## Fail on >20% mean-time regressions in the gated benchmark groups.
bench-gate:
	$(PYTHON) benchmarks/check_regression.py

## cProfile a smoke-scale table1 run: per-unit .prof dumps plus a merged
## top-25 cumulative summary in $(PROFILE_DIR)/profile.txt.  Override the
## artifact subset with PROFILE_ONLY=... and the directory with
## PROFILE_DIR=...
PROFILE_DIR ?= profile
PROFILE_ONLY ?= table1
profile:
	$(PYTHON) -m repro.experiments.run_all --scale smoke \
		--only $(PROFILE_ONLY) --profile $(PROFILE_DIR)

## Test-suite line coverage with the ratchet threshold (needs pytest-cov,
## installed by the CI coverage job; locally: pip install pytest-cov).
coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term-missing \
		--cov-fail-under=$(COV_MIN)
