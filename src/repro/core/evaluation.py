"""Held-out test sets and model-error evaluation.

The paper scores every intermediate model by the RMSE of its predicted
runtimes against the *observed mean* runtimes of a held-out test set of
configurations (Section 4.3, Equation 1).  The test set is built exactly as
the training data would be: random distinct configurations, each profiled a
fixed number of times and averaged (Section 4.5 uses 2 500 test
configurations with 35 observations each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..measurement.profiler import Profiler
from ..measurement.stats import root_mean_squared_error
from ..models.base import SurrogateModel
from ..spapt.suite import SpaptBenchmark

__all__ = ["TestSet", "build_test_set", "evaluate_rmse"]


@dataclass(frozen=True)
class TestSet:
    """Held-out configurations with their observed mean runtimes."""

    # Not a pytest test class, despite the name.
    __test__ = False

    configurations: Tuple[Tuple[int, ...], ...]
    features: np.ndarray
    mean_runtimes: np.ndarray

    def __post_init__(self) -> None:
        features = np.atleast_2d(np.asarray(self.features, dtype=float))
        runtimes = np.asarray(self.mean_runtimes, dtype=float).ravel()
        if features.shape[0] != runtimes.shape[0]:
            raise ValueError("features and mean_runtimes disagree on the number of rows")
        if features.shape[0] != len(self.configurations):
            raise ValueError("configurations and features disagree on the number of rows")
        if features.shape[0] == 0:
            raise ValueError("a test set needs at least one configuration")
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "mean_runtimes", runtimes)

    def __len__(self) -> int:
        return len(self.configurations)


def build_test_set(
    benchmark: SpaptBenchmark,
    size: int = 500,
    observations: int = 35,
    rng: Optional[np.random.Generator] = None,
    exclude: Sequence[Sequence[int]] = (),
) -> TestSet:
    """Profile ``size`` random configurations into a test set.

    ``observations`` controls how many runs are averaged per configuration
    (35 in the paper); the test set's profiling cost is *not* charged to any
    learner — it plays the role of the paper's pre-collected datasets.
    """
    if size < 1:
        raise ValueError("size must be at least 1")
    if observations < 1:
        raise ValueError("observations must be at least 1")
    rng = rng if rng is not None else np.random.default_rng()
    space = benchmark.search_space
    count = min(size, space.size - len(tuple(exclude)))
    configurations = space.sample_distinct(count, rng, exclude=exclude)
    profiler = Profiler(benchmark, rng=rng)
    means = []
    for configuration in configurations:
        profiler.measure(configuration, repetitions=observations)
        means.append(profiler.mean_runtime(configuration))
    return TestSet(
        configurations=tuple(configurations),
        features=benchmark.features_many(configurations),
        mean_runtimes=np.asarray(means, dtype=float),
    )


def evaluate_rmse(model: SurrogateModel, test_set: TestSet) -> float:
    """RMSE of the model's predictions over the test set (Equation 1)."""
    prediction = model.predict(test_set.features)
    return root_mean_squared_error(prediction.mean, test_set.mean_runtimes)
