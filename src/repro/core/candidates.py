"""Candidate-pool management for the active-learning loop.

Algorithm 1 of the paper builds, at every iteration, a candidate set ``C``
containing

* ``nc`` configurations sampled at random from the part of the space that
  has never been observed, and
* (for the sequential/variable plan only) every previously observed
  configuration that has fewer than ``nobs`` observations so far — these are
  the configurations the learner may *revisit* instead of trying something
  new, which is the sequential-analysis ingredient.

:class:`CandidatePool` tracks which configurations have been observed and
how many times (the ``D`` dictionary of Algorithm 1) and assembles that
candidate set.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..spapt.search_space import SearchSpace

__all__ = ["CandidatePool"]

Configuration = Tuple[int, ...]


class CandidatePool:
    """Tracks observation counts and assembles per-iteration candidate sets."""

    def __init__(self, space: SearchSpace, max_observations: int, revisit: bool) -> None:
        if max_observations < 1:
            raise ValueError("max_observations must be at least 1")
        self._space = space
        self._max_observations = max_observations
        self._revisit = revisit
        self._counts: Dict[Configuration, int] = {}

    @property
    def observation_counts(self) -> Dict[Configuration, int]:
        """A copy of the per-configuration observation counts (Algorithm 1's ``D``)."""
        return dict(self._counts)

    @property
    def seen(self) -> List[Configuration]:
        """Every configuration that has been observed at least once."""
        return list(self._counts)

    def count(self, configuration: Sequence[int]) -> int:
        return self._counts.get(tuple(int(v) for v in configuration), 0)

    def record(self, configuration: Sequence[int], observations: int = 1) -> None:
        """Record that ``configuration`` received ``observations`` more runs."""
        if observations < 1:
            raise ValueError("observations must be at least 1")
        key = tuple(int(v) for v in configuration)
        self._counts[key] = self._counts.get(key, 0) + observations

    def revisitable(self) -> List[Configuration]:
        """Configurations that may be revisited (seen but not yet at the cap)."""
        if not self._revisit:
            return []
        return [
            configuration
            for configuration, count in self._counts.items()
            if count < self._max_observations
        ]

    def draw(self, n_fresh: int, rng: np.random.Generator) -> List[Configuration]:
        """One iteration's candidate set: fresh random points plus revisitable ones.

        ``n_fresh`` is the paper's ``nc``; fresh candidates are drawn from
        the space excluding everything already observed, so the two halves of
        the pool never overlap.
        """
        if n_fresh < 0:
            raise ValueError("n_fresh cannot be negative")
        n_available = self._space.size - len(self._counts)
        n_fresh = min(n_fresh, max(n_available, 0))
        fresh = (
            self._space.sample_distinct(n_fresh, rng, exclude=self._counts)
            if n_fresh > 0
            else []
        )
        return fresh + self.revisitable()

    def exhausted(self) -> bool:
        """True when no candidate (fresh or revisitable) remains."""
        if len(self._counts) < self._space.size:
            return False
        return not self.revisitable()
