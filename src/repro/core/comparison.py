"""Head-to-head comparison of sampling plans on one benchmark.

This is the driver behind Table 1, Figure 5 and Figure 6: for one SPAPT
benchmark it runs the active learner once per sampling plan per repetition
(sharing a held-out test set within each repetition), averages the learning
curves across repetitions, and computes the Table 1 metrics — the lowest
error level every plan reaches, the cost each plan needs to first reach it,
and the resulting speed-up of the paper's variable plan over the baseline.

Every (benchmark × plan × repetition) run is seeded independently of
execution order, so the runs can be fanned out over a process pool
(``workers > 1``, used by ``run_all --workers N``) with results identical to
the serial schedule.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..spapt.suite import BENCHMARK_SPECS, SpaptBenchmark, get_benchmark
from .acquisition import AcquisitionFunction, ALCAcquisition, make_acquisition
from .curves import LearningCurve, average_curves, lowest_common_error, time_to_reach
from .evaluation import build_test_set
from .learner import ActiveLearner, LearnerConfig, LearningResult
from .plans import SamplingPlan, make_plan, standard_plans

__all__ = [
    "ComparisonConfig",
    "PlanComparison",
    "assemble_comparison",
    "compare_sampling_plans",
    "compare_sampling_plans_suite",
    "resolve_acquisition",
    "resolve_plans",
    "speedup_between",
]

PlanLike = object  # a SamplingPlan or a registered plan name (str)


def resolve_plans(plans: Optional[Sequence[PlanLike]]) -> List[SamplingPlan]:
    """Normalise a plan axis: ``None`` → the paper's three standard plans,
    strings → :func:`~repro.core.plans.make_plan` lookups, plan instances
    pass through.  This is what lets an experiment spec declare its plan
    axis as a list of names."""
    if plans is None:
        return standard_plans()
    resolved = [
        make_plan(plan) if isinstance(plan, str) else plan for plan in plans
    ]
    if not resolved:
        raise ValueError("at least one sampling plan is required")
    return resolved


def resolve_acquisition(
    acquisition: Optional[object],
) -> AcquisitionFunction:
    """Normalise an acquisition axis: ``None`` → ALC, strings → lookup."""
    if acquisition is None:
        return ALCAcquisition()
    if isinstance(acquisition, str):
        return make_acquisition(acquisition)
    return acquisition


@dataclass(frozen=True)
class ComparisonConfig:
    """Scale knobs for a plan comparison.

    The paper repeats every experiment ten times with fresh random seeds and
    tests on 2 500 held-out configurations; the defaults here are laptop
    sized and every knob is explicit so the harness (and the user) can dial
    the experiment up to paper scale.
    """

    learner: LearnerConfig = field(default_factory=LearnerConfig)
    repetitions: int = 2
    test_size: int = 300
    test_observations: int = 35
    seed: int = 2017

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if self.test_size < 1:
            raise ValueError("test_size must be at least 1")
        if self.test_observations < 1:
            raise ValueError("test_observations must be at least 1")

    @classmethod
    def paper_scale(cls) -> "ComparisonConfig":
        """The experimental scale used by the paper (Sections 4.4-4.5)."""
        return cls(
            learner=LearnerConfig.paper_scale(),
            repetitions=10,
            test_size=2500,
            test_observations=35,
        )


@dataclass
class PlanComparison:
    """Outcome of comparing several sampling plans on one benchmark."""

    benchmark_name: str
    curves: Dict[str, LearningCurve]
    results: Dict[str, List[LearningResult]]
    lowest_common_rmse: float
    cost_to_reach: Dict[str, float]

    def speedup(self, baseline: str, contender: str) -> float:
        """Cost of ``baseline`` divided by cost of ``contender`` (>1 means faster)."""
        if baseline not in self.cost_to_reach or contender not in self.cost_to_reach:
            raise KeyError("unknown plan name")
        contender_cost = self.cost_to_reach[contender]
        if contender_cost <= 0:
            raise ValueError("contender cost must be positive")
        return self.cost_to_reach[baseline] / contender_cost


def _run_one(
    benchmark: SpaptBenchmark,
    plan: SamplingPlan,
    plan_index: int,
    repetition: int,
    config: ComparisonConfig,
    acquisition: AcquisitionFunction,
    test_set,
) -> LearningResult:
    """One (plan × repetition) learner run, seeded independently of order."""
    run_rng = np.random.default_rng(
        config.seed + 104729 * repetition + 1299709 * plan_index + 1
    )
    learner = ActiveLearner(
        benchmark,
        plan=plan,
        acquisition=acquisition,
        config=config.learner,
        rng=run_rng,
    )
    return learner.run(test_set)


def _pool_job(
    args: Tuple[str, SamplingPlan, int, int, ComparisonConfig, AcquisitionFunction],
) -> Tuple[str, str, int, LearningResult]:
    """Worker-process entry point: rebuild the benchmark and run one learner.

    Benchmarks hold unpicklable ``lru_cache`` wrappers, so workers receive
    the benchmark *name* and reconstruct it; the held-out test set is
    rebuilt from the repetition's deterministic seed, so it is identical to
    the one the serial schedule would share across plans.
    """
    benchmark_name, plan, plan_index, repetition, config, acquisition = args
    benchmark = get_benchmark(benchmark_name)
    test_rng = np.random.default_rng(config.seed + 7919 * repetition)
    test_set = build_test_set(
        benchmark,
        size=config.test_size,
        observations=config.test_observations,
        rng=test_rng,
    )
    result = _run_one(
        benchmark, plan, plan_index, repetition, config, acquisition, test_set
    )
    return benchmark_name, plan.name, repetition, result


def assemble_comparison(
    benchmark_name: str,
    plan_names: Sequence[str],
    per_plan_results: Dict[str, List[LearningResult]],
) -> PlanComparison:
    """Fold per-run results into the averaged curves and Table 1 metrics.

    ``plan_names`` are plain labels, so the same fold serves the sampling
    plan comparison and any other single-axis comparison of learner runs
    (the ablation specs group runs by acquisition or model name).
    """
    per_plan_curves = {
        name: [result.curve for result in per_plan_results[name]]
        for name in plan_names
    }
    averaged = {
        name: average_curves(curves) for name, curves in per_plan_curves.items()
    }
    common_rmse = lowest_common_error(averaged.values())
    cost_to_reach = {
        name: time_to_reach(curve, common_rmse) for name, curve in averaged.items()
    }
    return PlanComparison(
        benchmark_name=benchmark_name,
        curves=averaged,
        results=per_plan_results,
        lowest_common_rmse=common_rmse,
        cost_to_reach=cost_to_reach,
    )


def compare_sampling_plans(
    benchmark: SpaptBenchmark,
    plans: Optional[Sequence[SamplingPlan]] = None,
    config: Optional[ComparisonConfig] = None,
    acquisition: Optional[AcquisitionFunction] = None,
    workers: int = 1,
) -> PlanComparison:
    """Run every sampling plan on ``benchmark`` and summarise the comparison.

    With ``workers > 1`` the (plan × repetition) runs are distributed over a
    process pool.  Pool workers rebuild the benchmark by name, so the pool
    is used only when ``benchmark`` is a stock instance of a registered
    SPAPT spec; customised instances (e.g. a scaled noise profile sharing a
    registered name) always run serially, never silently substituted.

    ``plans`` entries and ``acquisition`` may be given as registered names
    (strings) instead of instances.
    """
    plans = resolve_plans(plans)
    config = config if config is not None else ComparisonConfig()
    acquisition = resolve_acquisition(acquisition)

    if workers > 1 and BENCHMARK_SPECS.get(benchmark.name) is benchmark.spec:
        suite = compare_sampling_plans_suite(
            [benchmark.name],
            plans=plans,
            config=config,
            acquisition=acquisition,
            workers=workers,
        )
        return suite[benchmark.name]

    per_plan_results: Dict[str, List[LearningResult]] = {plan.name: [] for plan in plans}
    for repetition in range(config.repetitions):
        test_rng = np.random.default_rng(config.seed + 7919 * repetition)
        test_set = build_test_set(
            benchmark,
            size=config.test_size,
            observations=config.test_observations,
            rng=test_rng,
        )
        for plan_index, plan in enumerate(plans):
            result = _run_one(
                benchmark, plan, plan_index, repetition, config, acquisition, test_set
            )
            per_plan_results[plan.name].append(result)
    return assemble_comparison(
        benchmark.name, [plan.name for plan in plans], per_plan_results
    )


def compare_sampling_plans_suite(
    benchmark_names: Sequence[str],
    plans: Optional[Sequence[SamplingPlan]] = None,
    config: Optional[ComparisonConfig] = None,
    acquisition: Optional[AcquisitionFunction] = None,
    workers: int = 1,
) -> Dict[str, PlanComparison]:
    """Compare plans on several benchmarks, fanning runs out over processes.

    Every (benchmark × plan × repetition) triple becomes one process-pool
    job, so a multi-benchmark driver (Table 1, Figure 6) saturates all
    cores instead of parallelising only within one benchmark.

    ``workers == 1`` reproduces the historical serial schedule exactly (one
    shared benchmark instance per name).  With ``workers > 1`` every job
    rebuilds its benchmark, so stateful noise components start fresh per
    run; the outcome is deterministic and independent of the worker count,
    but benchmarks with frequency drift are not bit-identical to the serial
    schedule.
    """
    names = list(benchmark_names)
    plans = resolve_plans(plans)
    config = config if config is not None else ComparisonConfig()
    acquisition = resolve_acquisition(acquisition)

    unknown = [name for name in names if name not in BENCHMARK_SPECS]
    if unknown:
        raise KeyError(f"unknown benchmarks: {', '.join(unknown)}")

    if workers <= 1:
        # The serial schedule shares one benchmark instance per name across
        # all (plan × repetition) runs, exactly like running the drivers by
        # hand: stateful noise components (frequency drift) carry over
        # between runs in iteration order, preserving historical outputs.
        return {
            name: compare_sampling_plans(
                get_benchmark(name), plans=plans, config=config, acquisition=acquisition
            )
            for name in names
        }

    jobs = [
        (name, plan, plan_index, repetition, config, acquisition)
        for name in names
        for repetition in range(config.repetitions)
        for plan_index, plan in enumerate(plans)
    ]
    results: Dict[str, Dict[str, List[Tuple[int, LearningResult]]]] = {
        name: {plan.name: [] for plan in plans} for name in names
    }
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        outcomes = list(pool.map(_pool_job, jobs))
    for benchmark_name, plan_name, repetition, result in outcomes:
        results[benchmark_name][plan_name].append((repetition, result))

    comparisons: Dict[str, PlanComparison] = {}
    for name in names:
        per_plan_results = {
            plan_name: [result for _, result in sorted(runs, key=lambda item: item[0])]
            for plan_name, runs in results[name].items()
        }
        comparisons[name] = assemble_comparison(
            name, [plan.name for plan in plans], per_plan_results
        )
    return comparisons


def speedup_between(
    comparison: PlanComparison,
    baseline: str = "all observations",
    contender: str = "variable observations",
) -> float:
    """Convenience wrapper for the Table 1 / Figure 5 speed-up numbers."""
    return comparison.speedup(baseline, contender)
