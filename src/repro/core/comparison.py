"""Head-to-head comparison of sampling plans on one benchmark.

This is the driver behind Table 1, Figure 5 and Figure 6: for one SPAPT
benchmark it runs the active learner once per sampling plan per repetition
(sharing a held-out test set within each repetition), averages the learning
curves across repetitions, and computes the Table 1 metrics — the lowest
error level every plan reaches, the cost each plan needs to first reach it,
and the resulting speed-up of the paper's variable plan over the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..spapt.suite import SpaptBenchmark
from .acquisition import AcquisitionFunction, ALCAcquisition
from .curves import LearningCurve, average_curves, lowest_common_error, time_to_reach
from .evaluation import build_test_set
from .learner import ActiveLearner, LearnerConfig, LearningResult
from .plans import SamplingPlan, standard_plans

__all__ = ["ComparisonConfig", "PlanComparison", "compare_sampling_plans", "speedup_between"]


@dataclass(frozen=True)
class ComparisonConfig:
    """Scale knobs for a plan comparison.

    The paper repeats every experiment ten times with fresh random seeds and
    tests on 2 500 held-out configurations; the defaults here are laptop
    sized and every knob is explicit so the harness (and the user) can dial
    the experiment up to paper scale.
    """

    learner: LearnerConfig = field(default_factory=LearnerConfig)
    repetitions: int = 2
    test_size: int = 300
    test_observations: int = 35
    seed: int = 2017

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if self.test_size < 1:
            raise ValueError("test_size must be at least 1")
        if self.test_observations < 1:
            raise ValueError("test_observations must be at least 1")

    @classmethod
    def paper_scale(cls) -> "ComparisonConfig":
        """The experimental scale used by the paper (Sections 4.4-4.5)."""
        return cls(
            learner=LearnerConfig.paper_scale(),
            repetitions=10,
            test_size=2500,
            test_observations=35,
        )


@dataclass
class PlanComparison:
    """Outcome of comparing several sampling plans on one benchmark."""

    benchmark_name: str
    curves: Dict[str, LearningCurve]
    results: Dict[str, List[LearningResult]]
    lowest_common_rmse: float
    cost_to_reach: Dict[str, float]

    def speedup(self, baseline: str, contender: str) -> float:
        """Cost of ``baseline`` divided by cost of ``contender`` (>1 means faster)."""
        if baseline not in self.cost_to_reach or contender not in self.cost_to_reach:
            raise KeyError("unknown plan name")
        contender_cost = self.cost_to_reach[contender]
        if contender_cost <= 0:
            raise ValueError("contender cost must be positive")
        return self.cost_to_reach[baseline] / contender_cost


def compare_sampling_plans(
    benchmark: SpaptBenchmark,
    plans: Optional[Sequence[SamplingPlan]] = None,
    config: Optional[ComparisonConfig] = None,
    acquisition: Optional[AcquisitionFunction] = None,
) -> PlanComparison:
    """Run every sampling plan on ``benchmark`` and summarise the comparison."""
    plans = list(plans) if plans is not None else standard_plans()
    if not plans:
        raise ValueError("at least one sampling plan is required")
    config = config if config is not None else ComparisonConfig()
    acquisition = acquisition if acquisition is not None else ALCAcquisition()

    per_plan_curves: Dict[str, List[LearningCurve]] = {plan.name: [] for plan in plans}
    per_plan_results: Dict[str, List[LearningResult]] = {plan.name: [] for plan in plans}

    for repetition in range(config.repetitions):
        test_rng = np.random.default_rng(config.seed + 7919 * repetition)
        test_set = build_test_set(
            benchmark,
            size=config.test_size,
            observations=config.test_observations,
            rng=test_rng,
        )
        for plan_index, plan in enumerate(plans):
            run_rng = np.random.default_rng(
                config.seed + 104729 * repetition + 1299709 * plan_index + 1
            )
            learner = ActiveLearner(
                benchmark,
                plan=plan,
                acquisition=acquisition,
                config=config.learner,
                rng=run_rng,
            )
            result = learner.run(test_set)
            per_plan_curves[plan.name].append(result.curve)
            per_plan_results[plan.name].append(result)

    averaged = {
        name: average_curves(curves) for name, curves in per_plan_curves.items()
    }
    common_rmse = lowest_common_error(averaged.values())
    cost_to_reach = {
        name: time_to_reach(curve, common_rmse) for name, curve in averaged.items()
    }
    return PlanComparison(
        benchmark_name=benchmark.name,
        curves=averaged,
        results=per_plan_results,
        lowest_common_rmse=common_rmse,
        cost_to_reach=cost_to_reach,
    )


def speedup_between(
    comparison: PlanComparison,
    baseline: str = "all observations",
    contender: str = "variable observations",
) -> float:
    """Convenience wrapper for the Table 1 / Figure 5 speed-up numbers."""
    return comparison.speedup(baseline, contender)
