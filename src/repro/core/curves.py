"""Learning curves: model error as a function of cumulative profiling cost.

The paper's headline results are read off curves of Root Mean Squared Error
versus *evaluation time* (cumulative compilation plus profiling seconds):
Figure 6 plots the curves themselves and Table 1 reports, per benchmark, the
lowest error level reached by every compared approach together with the time
each approach needed to first reach it.

:class:`LearningCurve` stores one run's curve; :func:`average_curves`
averages repetitions onto a common cost grid (the paper averages ten runs);
:func:`lowest_common_error` and :func:`time_to_reach` implement the Table 1
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CurvePoint",
    "LearningCurve",
    "average_curves",
    "lowest_common_error",
    "time_to_reach",
    "speedup_factor",
]


@dataclass(frozen=True)
class CurvePoint:
    """One evaluation of the intermediate model during training."""

    cost_seconds: float
    rmse: float
    training_examples: int
    observations: int

    def __post_init__(self) -> None:
        if self.cost_seconds < 0:
            raise ValueError("cost cannot be negative")
        if self.rmse < 0:
            raise ValueError("rmse cannot be negative")


class LearningCurve:
    """A monotone-in-cost sequence of :class:`CurvePoint`."""

    def __init__(self, label: str, points: Optional[Sequence[CurvePoint]] = None) -> None:
        self.label = label
        self._points: List[CurvePoint] = list(points or [])
        self._validate()

    def _validate(self) -> None:
        costs = [p.cost_seconds for p in self._points]
        if any(b < a for a, b in zip(costs, costs[1:])):
            raise ValueError("curve points must be ordered by non-decreasing cost")

    def add(self, point: CurvePoint) -> None:
        if self._points and point.cost_seconds < self._points[-1].cost_seconds:
            raise ValueError("curve points must be appended in cost order")
        self._points.append(point)

    @property
    def points(self) -> Tuple[CurvePoint, ...]:
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def costs(self) -> np.ndarray:
        return np.array([p.cost_seconds for p in self._points], dtype=float)

    def errors(self) -> np.ndarray:
        return np.array([p.rmse for p in self._points], dtype=float)

    @property
    def final_cost(self) -> float:
        if not self._points:
            raise ValueError("curve has no points")
        return self._points[-1].cost_seconds

    @property
    def best_error(self) -> float:
        """Lowest RMSE reached anywhere on the curve."""
        if not self._points:
            raise ValueError("curve has no points")
        return float(min(p.rmse for p in self._points))

    def error_at_cost(self, cost: float) -> float:
        """Best (lowest) error achieved at or before ``cost`` seconds.

        Using the running minimum rather than pointwise interpolation makes
        the metric monotone, which is what "time needed to *first reach* an
        error level" requires.
        """
        if not self._points:
            raise ValueError("curve has no points")
        best = np.inf
        for point in self._points:
            if point.cost_seconds > cost:
                break
            best = min(best, point.rmse)
        return float(best)

    def time_to_error(self, target_rmse: float) -> Optional[float]:
        """Cost at which the curve first reaches ``target_rmse`` (None if never)."""
        for point in self._points:
            if point.rmse <= target_rmse:
                return point.cost_seconds
        return None


def average_curves(curves: Sequence[LearningCurve], grid_size: int = 200) -> LearningCurve:
    """Average several repetitions of the same approach onto a common cost grid.

    Each curve is evaluated (running minimum) on a grid spanning the range of
    costs every repetition covers, then averaged pointwise — the procedure the
    paper uses to average its ten experimental runs.
    """
    curves = [c for c in curves if len(c) > 0]
    if not curves:
        raise ValueError("average_curves() needs at least one non-empty curve")
    if len(curves) == 1:
        return curves[0]
    start = max(c.costs()[0] for c in curves)
    end = min(c.final_cost for c in curves)
    if end <= start:
        # Repetitions barely overlap in cost; fall back to the shortest range.
        end = max(c.final_cost for c in curves)
        start = min(c.costs()[0] for c in curves)
    grid = np.linspace(start, end, grid_size)
    averaged_points: List[CurvePoint] = []
    for cost in grid:
        errors = [c.error_at_cost(cost) for c in curves]
        finite = [e for e in errors if np.isfinite(e)]
        if not finite:
            continue
        averaged_points.append(
            CurvePoint(
                cost_seconds=float(cost),
                rmse=float(np.mean(finite)),
                training_examples=0,
                observations=0,
            )
        )
    return LearningCurve(curves[0].label, averaged_points)


def lowest_common_error(curves: Iterable[LearningCurve]) -> float:
    """The lowest RMSE that *every* curve manages to reach.

    This is Table 1's "lowest common RMSE": the best error of the worst
    approach, i.e. the max over curves of each curve's best error.
    """
    best_errors = [curve.best_error for curve in curves]
    if not best_errors:
        raise ValueError("lowest_common_error() needs at least one curve")
    return float(max(best_errors))


def time_to_reach(curve: LearningCurve, target_rmse: float) -> float:
    """Cost needed by ``curve`` to first reach ``target_rmse``.

    Raises ``ValueError`` if the curve never reaches the target (callers are
    expected to use :func:`lowest_common_error`, which guarantees
    reachability for every compared curve).
    """
    cost = curve.time_to_error(target_rmse)
    if cost is None:
        raise ValueError(
            f"curve {curve.label!r} never reaches RMSE {target_rmse:.6g}"
        )
    return cost


def speedup_factor(
    baseline: LearningCurve, contender: LearningCurve, levels: int = 20
) -> float:
    """Multi-level speed-up: AUC-style ratio of costs across error levels.

    Table 1's cost-to-reach speed-up compares the two curves at a *single*
    error level (the lowest one both reach), which makes it sensitive to
    exactly where that level falls.  Following the Speed-up Factor idea of
    arXiv:2602.13359 this metric instead sweeps ``levels`` error levels
    spanning the range both curves cover — from the worse of the two
    starting errors down to the lowest common error — computes the
    baseline/contender cost ratio at every level, and aggregates with the
    geometric mean (equivalently: the ratio of the areas under the two
    log-cost-versus-error curves).  Values above 1 mean the contender is
    cheaper across the whole error range, not just at one point.
    """
    if levels < 1:
        raise ValueError("levels must be at least 1")
    lo = float(max(baseline.best_error, contender.best_error))
    hi = float(min(baseline.errors()[0], contender.errors()[0]))
    if hi < lo:
        # One curve starts below the other's floor: only the common floor
        # is comparable, so degrade to the single-level ratio.
        hi = lo
    log_ratios = []
    for target in np.linspace(hi, lo, num=levels):
        baseline_cost = time_to_reach(baseline, float(target))
        contender_cost = time_to_reach(contender, float(target))
        if baseline_cost <= 0 or contender_cost <= 0:
            continue  # both at the free starting point: no information
        log_ratios.append(np.log(baseline_cost) - np.log(contender_cost))
    if not log_ratios:
        return 1.0
    return float(np.exp(np.mean(log_ratios)))
