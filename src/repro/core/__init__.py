"""Active learning with sequential analysis — the paper's contribution."""

from .acquisition import (
    AcquisitionFunction,
    ALCAcquisition,
    ALMAcquisition,
    RandomAcquisition,
    acquisition_names,
    make_acquisition,
)
from .candidates import CandidatePool
from .comparison import (
    ComparisonConfig,
    PlanComparison,
    assemble_comparison,
    compare_sampling_plans,
    resolve_acquisition,
    resolve_plans,
    speedup_between,
)
from .curves import (
    CurvePoint,
    LearningCurve,
    average_curves,
    lowest_common_error,
    speedup_factor,
    time_to_reach,
)
from .evaluation import TestSet, build_test_set, evaluate_rmse
from .learner import ActiveLearner, LearnerCheckpoint, LearnerConfig, LearningResult
from .plans import (
    SamplingPlan,
    adaptive_ci_plan,
    fixed_plan,
    make_plan,
    plan_names,
    sequential_plan,
    standard_plans,
)
from .session import DONE, LEARNING, SEEDING, TuningSession

__all__ = [
    "AcquisitionFunction",
    "ALCAcquisition",
    "ALMAcquisition",
    "RandomAcquisition",
    "acquisition_names",
    "make_acquisition",
    "CandidatePool",
    "ComparisonConfig",
    "PlanComparison",
    "assemble_comparison",
    "compare_sampling_plans",
    "resolve_acquisition",
    "resolve_plans",
    "speedup_between",
    "CurvePoint",
    "LearningCurve",
    "average_curves",
    "lowest_common_error",
    "speedup_factor",
    "time_to_reach",
    "TestSet",
    "build_test_set",
    "evaluate_rmse",
    "ActiveLearner",
    "LearnerCheckpoint",
    "LearnerConfig",
    "LearningResult",
    "SamplingPlan",
    "adaptive_ci_plan",
    "fixed_plan",
    "make_plan",
    "plan_names",
    "sequential_plan",
    "standard_plans",
    "TuningSession",
    "SEEDING",
    "LEARNING",
    "DONE",
]
