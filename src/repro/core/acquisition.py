"""Acquisition (usefulness) functions for the active learner.

Section 3.3 of the paper: the dynaTree package offers two scoring
heuristics, MacKay's ALM (pick the candidate whose predicted output variance
is largest) and Cohn's ALC (pick the candidate expected to most reduce the
average predictive variance across the space).  The paper uses ALC because
it copes better with heteroskedastic noise; Algorithm 1 expresses it as
*minimising* ``predictAvgModelVariance``.  Both are implemented here against
the generic :class:`~repro.models.base.SurrogateModel` interface, together
with a random-selection control.

Batch selection (``TuningSession.ask(k)`` with ``k > 1``) goes through
:meth:`AcquisitionFunction.select_batch`.  The base implementation takes
the top ``k`` of one scoring pass; two interaction-aware strategies refine
it: :class:`GreedyALCFantasyAcquisition` (``"greedy-alc-fantasy"``) picks
the ALC argmax, fantasizes its observation at the model's predictive mean
on a copy, and re-scores — the kriging-believer construction — while
:class:`DiversityPenaltyAcquisition` (``"diversity-penalty"``) approximates
the same spreading effect with a single scoring pass and an RBF similarity
penalty against already-picked batch members.  Every strategy's ``k=1``
batch consumes the generator exactly like :meth:`AcquisitionFunction.select`,
preserving the sequential path's bit-identity contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from ..models.base import SurrogateModel

__all__ = [
    "AcquisitionFunction",
    "ALCAcquisition",
    "ALMAcquisition",
    "RandomAcquisition",
    "GreedyALCFantasyAcquisition",
    "DiversityPenaltyAcquisition",
    "make_acquisition",
    "acquisition_names",
]


class AcquisitionFunction(ABC):
    """Scores candidates; the learner selects the candidate with the *best* score."""

    name: str = "abstract"

    @abstractmethod
    def score(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return one score per candidate; **higher is better**."""

    #: Relative tie tolerance: candidates within this fraction of the best
    #: score's magnitude are considered tied and drawn from uniformly.
    TIE_RTOL = 1e-12

    def select(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """Index of the best candidate (ties broken at random).

        The tie band is *relative* to the best score's magnitude.  An
        absolute band (the previous ``best - 1e-15``) mis-scales in both
        directions: with large-magnitude scores (ALC's negated average
        variances on unnormalized-runtime benchmarks, easily ~1e3 s²) it is
        below one ulp and never groups anything — float-noise duplicates
        are then ranked by rounding accident instead of tie-broken at
        random — while with tiny scores (~1e-18 variances) it lumps
        candidates whose scores differ by many orders of magnitude.  A
        relative band keeps exactly the intended behaviour at every scale:
        exact ties and float-noise-level differences are grouped, genuine
        differences are not.  (``best == 0`` degrades to exact ties only,
        which is the correct limit.)
        """
        scores = np.asarray(
            self.score(model, candidates, reference, rng), dtype=float
        )
        if scores.shape[0] != np.atleast_2d(candidates).shape[0]:
            raise ValueError("score() must return one value per candidate")
        best = float(scores.max())
        ties = np.flatnonzero(scores >= best - self.TIE_RTOL * abs(best))
        return int(rng.choice(ties))

    def _pick_best(
        self,
        scores: np.ndarray,
        available: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """The tie-banded argmax of :meth:`select`, restricted to
        ``available`` indices — one generator draw per pick, exactly like
        the single-selection path."""
        subset = scores[available]
        best = float(subset.max())
        ties = available[np.flatnonzero(subset >= best - self.TIE_RTOL * abs(best))]
        return int(rng.choice(ties))

    def select_batch(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
        k: int,
    ) -> List[int]:
        """Indices of ``k`` distinct candidates, best first.

        The default strategy scores once and takes the top ``k`` greedily,
        re-applying the relative tie band (and a generator draw) at every
        pick so ``select_batch(..., k=1)`` consumes the generator exactly
        like :meth:`select` — the bit-identity anchor for ``ask(1)``.
        Subclasses with an interaction-aware batch rule (fantasized
        updates, diversity penalties) override this.
        """
        n = np.atleast_2d(candidates).shape[0]
        if not 1 <= k <= n:
            raise ValueError(f"batch size k={k} must be within [1, {n}] candidates")
        scores = np.asarray(
            self.score(model, candidates, reference, rng), dtype=float
        )
        if scores.shape[0] != n:
            raise ValueError("score() must return one value per candidate")
        chosen: List[int] = []
        taken = np.zeros(n, dtype=bool)
        for _ in range(k):
            available = np.flatnonzero(~taken)
            pick = self._pick_best(scores, available, rng)
            chosen.append(pick)
            taken[pick] = True
        return chosen


class ALCAcquisition(AcquisitionFunction):
    """Cohn's ALC: minimise the predicted average variance across the space.

    This is the scoring function the paper uses (``predictAvgModelVariance``
    in Algorithm 1, lines 14-20, where the candidate with the *lowest*
    predicted average variance is chosen — equivalently the candidate whose
    observation removes the most variance).  Scores returned here are the
    negated expected average variance so that "higher is better" holds.
    """

    name = "alc"

    def score(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        expected = model.expected_average_variance(candidates, reference)
        return -np.asarray(expected, dtype=float)


class ALMAcquisition(AcquisitionFunction):
    """MacKay's ALM: pick the candidate with the largest predictive variance."""

    name = "alm"

    def score(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        prediction = model.predict(np.atleast_2d(candidates))
        return np.asarray(prediction.variance, dtype=float)


class RandomAcquisition(AcquisitionFunction):
    """Uniform random selection — the non-active-learning control."""

    name = "random"

    def score(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return rng.random(np.atleast_2d(candidates).shape[0])


class GreedyALCFantasyAcquisition(ALCAcquisition):
    """Greedy-ALC batch selection with fantasized model updates.

    The kriging-believer recipe applied to ALC: pick the ALC argmax, then
    pretend its measurement came back at the model's current predictive
    mean — updating a *copy* of the model with the fantasy — and re-score
    the remaining candidates against the fantasized posterior.  Repeated
    ``k`` times this spreads the batch across the space (a fantasized
    observation collapses the variance around its location, so near
    neighbours stop looking useful) at the price of ``k`` scoring passes
    and ``k - 1`` fantasy updates per batch.

    ``select_batch(..., k=1)`` never copies or fantasizes — it scores the
    real model once and tie-breaks once, so a ``k=1`` batch session stays
    bit-identical to the sequential ALC path.
    """

    name = "greedy-alc-fantasy"

    def select_batch(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
        k: int,
    ) -> List[int]:
        C = np.atleast_2d(np.asarray(candidates, dtype=float))
        n = C.shape[0]
        if not 1 <= k <= n:
            raise ValueError(f"batch size k={k} must be within [1, {n}] candidates")
        chosen: List[int] = []
        taken = np.zeros(n, dtype=bool)
        current = model
        for step in range(k):
            available = np.flatnonzero(~taken)
            scores = np.full(n, -np.inf)
            scores[available] = np.asarray(
                self.score(current, C[available], reference, rng), dtype=float
            )
            pick = self._pick_best(scores, available, rng)
            chosen.append(pick)
            taken[pick] = True
            if step + 1 < k:
                if current is model:
                    # First fantasy of the batch: all believed observations
                    # go into a throwaway copy; the session's model sees
                    # only real measurements through tell().  Models with
                    # copy-on-write state return a cheap shared-state copy
                    # here instead of a deep clone.
                    current = model.fantasy_copy()
                believed = float(current.predict(C[pick : pick + 1]).mean[0])
                current.update(C[pick], believed)
        return chosen


class DiversityPenaltyAcquisition(ALCAcquisition):
    """ALC batch selection with an RBF diversity penalty — the cheap variant.

    One ALC scoring pass; each subsequent pick subtracts a penalty
    proportional to the candidate's kernel similarity to the closest
    already-picked batch member, approximating the variance collapse a
    fantasized update would produce without copying or re-scoring the
    model.  The similarity lengthscale is the median pairwise candidate
    distance and the penalty is scaled by the score range, so the
    behaviour is invariant to affine rescaling of scores and features.

    ``select_batch(..., k=1)`` reduces to plain ALC selection (one scoring
    pass, one tie-break draw) and stays bit-identical to the sequential
    path.
    """

    name = "diversity-penalty"

    #: Penalty at zero distance, as a fraction of the batch's score range.
    PENALTY_WEIGHT = 1.0

    def select_batch(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
        k: int,
    ) -> List[int]:
        C = np.atleast_2d(np.asarray(candidates, dtype=float))
        n = C.shape[0]
        if not 1 <= k <= n:
            raise ValueError(f"batch size k={k} must be within [1, {n}] candidates")
        base = np.asarray(self.score(model, C, reference, rng), dtype=float)
        if base.shape[0] != n:
            raise ValueError("score() must return one value per candidate")
        chosen: List[int] = []
        taken = np.zeros(n, dtype=bool)
        similarity = np.zeros(n)
        if k > 1:
            deltas = C[:, None, :] - C[None, :, :]
            distances = np.sqrt((deltas ** 2).sum(axis=-1))
            positive = distances[distances > 0]
            lengthscale = float(np.median(positive)) if positive.size else 1.0
            spread = float(base.max() - base.min())
            if spread <= 0.0:
                spread = max(abs(float(base.max())), 1.0)
        for step in range(k):
            available = np.flatnonzero(~taken)
            adjusted = base - self.PENALTY_WEIGHT * spread * similarity if step else base
            pick = self._pick_best(adjusted, available, rng)
            chosen.append(pick)
            taken[pick] = True
            if step + 1 < k:
                sq = ((C - C[pick]) ** 2).sum(axis=1)
                fresh = np.exp(-0.5 * sq / lengthscale ** 2)
                similarity = np.maximum(similarity, fresh)
        return chosen


_ACQUISITION_REGISTRY = {
    "alc": ALCAcquisition,
    "alm": ALMAcquisition,
    "random": RandomAcquisition,
    "greedy-alc-fantasy": GreedyALCFantasyAcquisition,
    "diversity-penalty": DiversityPenaltyAcquisition,
}


def acquisition_names() -> list[str]:
    """The names :func:`make_acquisition` accepts, in registration order."""
    return list(_ACQUISITION_REGISTRY)


def make_acquisition(name: str) -> AcquisitionFunction:
    """Look up an acquisition function by name (``"alc"``, ``"alm"``,
    ``"random"``, ``"greedy-alc-fantasy"``, ``"diversity-penalty"``)."""
    key = name.strip().lower()
    if key not in _ACQUISITION_REGISTRY:
        raise KeyError(
            f"unknown acquisition {name!r}; expected one of {acquisition_names()}"
        )
    return _ACQUISITION_REGISTRY[key]()
