"""Acquisition (usefulness) functions for the active learner.

Section 3.3 of the paper: the dynaTree package offers two scoring
heuristics, MacKay's ALM (pick the candidate whose predicted output variance
is largest) and Cohn's ALC (pick the candidate expected to most reduce the
average predictive variance across the space).  The paper uses ALC because
it copes better with heteroskedastic noise; Algorithm 1 expresses it as
*minimising* ``predictAvgModelVariance``.  Both are implemented here against
the generic :class:`~repro.models.base.SurrogateModel` interface, together
with a random-selection control.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..models.base import SurrogateModel

__all__ = [
    "AcquisitionFunction",
    "ALCAcquisition",
    "ALMAcquisition",
    "RandomAcquisition",
    "make_acquisition",
    "acquisition_names",
]


class AcquisitionFunction(ABC):
    """Scores candidates; the learner selects the candidate with the *best* score."""

    name: str = "abstract"

    @abstractmethod
    def score(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return one score per candidate; **higher is better**."""

    #: Relative tie tolerance: candidates within this fraction of the best
    #: score's magnitude are considered tied and drawn from uniformly.
    TIE_RTOL = 1e-12

    def select(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """Index of the best candidate (ties broken at random).

        The tie band is *relative* to the best score's magnitude.  An
        absolute band (the previous ``best - 1e-15``) mis-scales in both
        directions: with large-magnitude scores (ALC's negated average
        variances on unnormalized-runtime benchmarks, easily ~1e3 s²) it is
        below one ulp and never groups anything — float-noise duplicates
        are then ranked by rounding accident instead of tie-broken at
        random — while with tiny scores (~1e-18 variances) it lumps
        candidates whose scores differ by many orders of magnitude.  A
        relative band keeps exactly the intended behaviour at every scale:
        exact ties and float-noise-level differences are grouped, genuine
        differences are not.  (``best == 0`` degrades to exact ties only,
        which is the correct limit.)
        """
        scores = np.asarray(
            self.score(model, candidates, reference, rng), dtype=float
        )
        if scores.shape[0] != np.atleast_2d(candidates).shape[0]:
            raise ValueError("score() must return one value per candidate")
        best = float(scores.max())
        ties = np.flatnonzero(scores >= best - self.TIE_RTOL * abs(best))
        return int(rng.choice(ties))


class ALCAcquisition(AcquisitionFunction):
    """Cohn's ALC: minimise the predicted average variance across the space.

    This is the scoring function the paper uses (``predictAvgModelVariance``
    in Algorithm 1, lines 14-20, where the candidate with the *lowest*
    predicted average variance is chosen — equivalently the candidate whose
    observation removes the most variance).  Scores returned here are the
    negated expected average variance so that "higher is better" holds.
    """

    name = "alc"

    def score(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        expected = model.expected_average_variance(candidates, reference)
        return -np.asarray(expected, dtype=float)


class ALMAcquisition(AcquisitionFunction):
    """MacKay's ALM: pick the candidate with the largest predictive variance."""

    name = "alm"

    def score(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        prediction = model.predict(np.atleast_2d(candidates))
        return np.asarray(prediction.variance, dtype=float)


class RandomAcquisition(AcquisitionFunction):
    """Uniform random selection — the non-active-learning control."""

    name = "random"

    def score(
        self,
        model: SurrogateModel,
        candidates: np.ndarray,
        reference: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return rng.random(np.atleast_2d(candidates).shape[0])


_ACQUISITION_REGISTRY = {
    "alc": ALCAcquisition,
    "alm": ALMAcquisition,
    "random": RandomAcquisition,
}


def acquisition_names() -> list[str]:
    """The names :func:`make_acquisition` accepts, in registration order."""
    return list(_ACQUISITION_REGISTRY)


def make_acquisition(name: str) -> AcquisitionFunction:
    """Look up an acquisition function by name (``"alc"``, ``"alm"``, ``"random"``)."""
    key = name.strip().lower()
    if key not in _ACQUISITION_REGISTRY:
        raise KeyError(
            f"unknown acquisition {name!r}; expected one of {acquisition_names()}"
        )
    return _ACQUISITION_REGISTRY[key]()
