"""Algorithm 1: active learning with sequential analysis.

This module is the paper's primary contribution.  :class:`ActiveLearner`
implements the learning loop of Algorithm 1 generalised over a
:class:`~repro.core.plans.SamplingPlan`, so the same code runs the baseline
fixed-35 plan, the single-observation plan and the paper's variable
(sequential-analysis) plan:

1. Seed the model with ``n_initial`` random configurations, each profiled
   ``seed_observations`` times (good-quality data for the initial model).
2. Repeat until the completion criterion (``max_training_examples``
   selections, or a cost budget):

   a. assemble the candidate set — ``n_candidates`` never-observed random
      configurations plus, under a revisiting plan, every configuration seen
      fewer than ``max_observations_per_example`` times;
   b. score the candidates with the acquisition function (ALC by default)
      and select the most useful one;
   c. compile-and-run it according to the plan (one observation for the
      sequential plan, ``nobs`` for the fixed plans) and charge the cost;
   d. feed the observation(s) to the model and update the bookkeeping.

3. Periodically evaluate the intermediate model's RMSE on a held-out test
   set; the resulting :class:`~repro.core.curves.LearningCurve` is the raw
   material of Table 1 and Figures 5-6.

The loop is *checkpointable*: :meth:`ActiveLearner.run` can emit a
picklable :class:`LearnerCheckpoint` every few examples and resume from one
later, reproducing the uninterrupted trajectory bit-for-bit.  The sharded
experiment backend (:mod:`repro.experiments.runner`) uses this to survive
killed paper-scale runs: a checkpoint captures everything the loop state
depends on — the model (with its own generator), the learner/profiler
generator they share, the profiler's ledger and per-configuration
statistics, the candidate pool and the curve — while the benchmark itself
is reattached on resume (its memoised cost caches are pure functions; the
one piece of *stateful* benchmark state, the noise model's frequency-drift
walk, rides along in the checkpoint for the owner to restore).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..measurement.profiler import CostLedger, Profiler
from ..models.base import SurrogateModel
from ..models.compiled_kernels import BACKENDS
from ..models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from ..spapt.suite import SpaptBenchmark
from .acquisition import AcquisitionFunction, ALCAcquisition
from .candidates import CandidatePool
from .curves import CurvePoint, LearningCurve
from .evaluation import TestSet, evaluate_rmse
from .plans import SamplingPlan, sequential_plan

__all__ = ["LearnerConfig", "LearningResult", "LearnerCheckpoint", "ActiveLearner"]

ModelFactory = Callable[[np.random.Generator], SurrogateModel]


@dataclass(frozen=True)
class LearnerConfig:
    """Parameters of the active-learning loop (Section 4.4 of the paper).

    The paper's values are ``n_initial=5``, ``seed_observations=35``,
    ``n_candidates=500``, ``max_training_examples=2500`` and 5 000 dynamic
    tree particles; the defaults here are scaled down so a full comparison
    runs in minutes on a laptop, and :meth:`paper_scale` restores the paper's
    values.
    """

    n_initial: int = 5
    seed_observations: int = 35
    n_candidates: int = 60
    max_training_examples: int = 200
    reference_size: int = 40
    evaluation_interval: int = 10
    max_cost_seconds: Optional[float] = None
    tree_particles: int = 30
    tree_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.n_initial < 1:
            raise ValueError("n_initial must be at least 1")
        if self.seed_observations < 1:
            raise ValueError("seed_observations must be at least 1")
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be at least 1")
        if self.max_training_examples <= self.n_initial:
            raise ValueError("max_training_examples must exceed n_initial")
        if self.reference_size < 1:
            raise ValueError("reference_size must be at least 1")
        if self.evaluation_interval < 1:
            raise ValueError("evaluation_interval must be at least 1")
        if self.max_cost_seconds is not None and self.max_cost_seconds <= 0:
            raise ValueError("max_cost_seconds must be positive when given")
        if self.tree_particles < 1:
            raise ValueError("tree_particles must be at least 1")
        if self.tree_backend not in BACKENDS:
            raise ValueError(f"tree_backend must be one of {BACKENDS}")

    @classmethod
    def paper_scale(cls) -> "LearnerConfig":
        """The configuration used by the paper's experiments (Section 4.4)."""
        return cls(
            n_initial=5,
            seed_observations=35,
            n_candidates=500,
            max_training_examples=2500,
            reference_size=100,
            evaluation_interval=25,
            tree_particles=5000,
        )


@dataclass
class LearningResult:
    """Everything produced by one active-learning run."""

    plan_name: str
    curve: LearningCurve
    ledger: CostLedger
    observation_counts: Dict[Tuple[int, ...], int]
    training_examples: int
    model: SurrogateModel

    @property
    def total_cost_seconds(self) -> float:
        return self.ledger.total_seconds

    @property
    def distinct_configurations(self) -> int:
        return len(self.observation_counts)

    @property
    def total_observations(self) -> int:
        return sum(self.observation_counts.values())


@dataclass
class LearnerCheckpoint:
    """Mid-run snapshot of the learning loop, sufficient for bit-exact resume.

    Produced by :meth:`ActiveLearner.run` via its ``checkpoint_sink`` and
    consumed by a later ``run(..., resume=checkpoint)``.  The snapshot
    references the *live* loop objects — a sink must serialise it (pickle)
    before the loop continues, which is how the experiment runner uses it.
    Pickling the whole checkpoint in one pass preserves the identity
    sharing the loop depends on (the profiler and the candidate draws use
    the same :class:`numpy.random.Generator`).

    ``noise_model`` carries the benchmark's noise model, whose stateful
    components (frequency drift) are the only benchmark-side state a resume
    must restore; the checkpoint owner reattaches it to a freshly rebuilt
    benchmark (``SpaptBenchmark.restore_noise_model``) because benchmarks
    themselves hold unpicklable memoisation caches.
    """

    plan_name: str
    n_seed: int
    training_examples: int
    next_iteration: int
    rng: np.random.Generator
    model: SurrogateModel
    profiler: Profiler
    pool: CandidatePool
    curve: LearningCurve
    noise_model: object = None


class ActiveLearner:
    """The Algorithm-1 learning loop for one benchmark and one sampling plan."""

    def __init__(
        self,
        benchmark: SpaptBenchmark,
        plan: Optional[SamplingPlan] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        config: Optional[LearnerConfig] = None,
        model_factory: Optional[ModelFactory] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._benchmark = benchmark
        self._plan = plan if plan is not None else sequential_plan()
        self._acquisition = acquisition if acquisition is not None else ALCAcquisition()
        self._config = config if config is not None else LearnerConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._model_factory = (
            model_factory if model_factory is not None else self._default_model_factory
        )

    @property
    def plan(self) -> SamplingPlan:
        return self._plan

    @property
    def config(self) -> LearnerConfig:
        return self._config

    def _default_model_factory(self, rng: np.random.Generator) -> SurrogateModel:
        return DynamicTreeRegressor(
            DynamicTreeConfig(
                n_particles=self._config.tree_particles,
                backend=self._config.tree_backend,
            ),
            rng=rng,
        )

    # ------------------------------------------------------------------ run

    def run(
        self,
        test_set: TestSet,
        resume: Optional[LearnerCheckpoint] = None,
        checkpoint_interval: Optional[int] = None,
        checkpoint_sink: Optional[Callable[[LearnerCheckpoint], None]] = None,
    ) -> LearningResult:
        """Execute the learning loop and return its learning curve and costs.

        ``checkpoint_sink`` (with a positive ``checkpoint_interval``) is
        called with a :class:`LearnerCheckpoint` every ``checkpoint_interval``
        training examples; the sink must serialise the snapshot before
        returning.  ``resume`` restarts the loop from such a checkpoint —
        the continued trajectory (curve, costs, model state, RNG stream) is
        bit-identical to the uninterrupted run, provided ``test_set`` and
        the benchmark are rebuilt the same way (the checkpoint owner is
        responsible for restoring the benchmark's noise-model state from
        ``resume.noise_model`` before calling this).
        """
        config = self._config
        plan = self._plan
        benchmark = self._benchmark
        space = benchmark.search_space
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive when given")

        if resume is not None:
            if resume.plan_name != plan.name:
                raise ValueError(
                    f"checkpoint is for plan {resume.plan_name!r}, "
                    f"not {plan.name!r}"
                )
            rng = resume.rng
            self._rng = rng
            profiler = resume.profiler
            profiler.attach_program(benchmark)
            pool = resume.pool
            model = resume.model
            curve = resume.curve
            n_seed = resume.n_seed
            training_examples = resume.training_examples
            start_iteration = resume.next_iteration
        else:
            rng = self._rng
            profiler = Profiler(benchmark, rng=rng)
            pool = CandidatePool(
                space,
                max_observations=plan.max_observations_per_example,
                revisit=plan.revisit,
            )
            model = self._model_factory(np.random.default_rng(rng.integers(2 ** 63)))
            curve = LearningCurve(plan.name)

            # ---- seeding (Algorithm 1, lines 2-4) -----------------------
            n_seed = min(config.n_initial, space.size)
            seed_configurations = space.sample_distinct(n_seed, rng)
            seed_features = benchmark.features_many(seed_configurations)
            seed_targets = []
            for configuration in seed_configurations:
                profiler.measure(configuration, repetitions=config.seed_observations)
                pool.record(configuration, config.seed_observations)
                seed_targets.append(profiler.mean_runtime(configuration))
            model.fit(seed_features, np.asarray(seed_targets))
            self._record_point(curve, model, test_set, profiler, pool, n_seed)
            training_examples = n_seed
            start_iteration = n_seed

        def snapshot(next_iteration: int) -> LearnerCheckpoint:
            return LearnerCheckpoint(
                plan_name=plan.name,
                n_seed=n_seed,
                training_examples=training_examples,
                next_iteration=next_iteration,
                rng=rng,
                model=model,
                profiler=profiler,
                pool=pool,
                curve=curve,
                noise_model=benchmark.noise_model,
            )

        # ---- learning loop (Algorithm 1, lines 6-29) --------------------
        for iteration in range(start_iteration, config.max_training_examples):
            if self._budget_exhausted(profiler):
                break
            if pool.exhausted():
                break
            candidates = pool.draw(config.n_candidates, rng)
            if not candidates:
                break
            candidate_features = benchmark.features_many(candidates)
            reference_features = self._reference_features(candidate_features, rng)
            index = self._acquisition.select(
                model, candidate_features, reference_features, rng
            )
            chosen = candidates[index]

            observations = self._collect_observations(profiler, chosen, plan)
            pool.record(chosen, len(observations))
            chosen_features = benchmark.features(chosen)
            if plan.aggregate_mean:
                model.update(chosen_features, float(np.mean(observations)))
            else:
                for observation in observations:
                    model.update(chosen_features, float(observation))
            training_examples = iteration + 1

            evaluate_now = (
                (training_examples - n_seed) % config.evaluation_interval == 0
                or training_examples == config.max_training_examples
            )
            if evaluate_now:
                self._record_point(
                    curve, model, test_set, profiler, pool, training_examples
                )
            checkpoint_now = (
                checkpoint_sink is not None
                and checkpoint_interval is not None
                and (training_examples - n_seed) % checkpoint_interval == 0
            )
            if checkpoint_now:
                checkpoint_sink(snapshot(iteration + 1))

        if not curve.points or curve.points[-1].training_examples != training_examples:
            self._record_point(curve, model, test_set, profiler, pool, training_examples)

        return LearningResult(
            plan_name=plan.name,
            curve=curve,
            ledger=profiler.ledger.snapshot(),
            observation_counts=pool.observation_counts,
            training_examples=training_examples,
            model=model,
        )

    # ------------------------------------------------------------ internals

    def _collect_observations(
        self, profiler: Profiler, configuration: Tuple[int, ...], plan: SamplingPlan
    ) -> np.ndarray:
        """Profile ``configuration`` according to the plan's per-selection rule.

        Fixed and sequential plans take exactly
        ``observations_per_selection`` runs.  Plans with a ``ci_threshold``
        (the raced-profiles-style stopping rule) keep adding runs, one at a
        time, until the 95% CI/mean ratio of the runs taken so far falls
        below the threshold or the per-example cap is reached.
        """
        observations = list(
            profiler.measure(configuration, repetitions=plan.observations_per_selection)
        )
        if plan.ci_threshold is None:
            return np.asarray(observations)
        already = profiler.observation_count(configuration)
        while (
            already < plan.max_observations_per_example
            and not profiler.summary(configuration).passes_ci_validation(plan.ci_threshold)
        ):
            observations.extend(profiler.measure(configuration, repetitions=1))
            already += 1
        return np.asarray(observations)

    def _budget_exhausted(self, profiler: Profiler) -> bool:
        budget = self._config.max_cost_seconds
        return budget is not None and profiler.ledger.total_seconds >= budget

    def _reference_features(
        self, candidate_features: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Reference locations over which the ALC score averages the variance.

        Following dynaTree practice the reference set is a random subset of
        the current candidate set, so the score concentrates on the part of
        the space the learner is actually choosing between.
        """
        n = candidate_features.shape[0]
        size = min(self._config.reference_size, n)
        indices = rng.choice(n, size=size, replace=False)
        return candidate_features[indices]

    def _record_point(
        self,
        curve: LearningCurve,
        model: SurrogateModel,
        test_set: TestSet,
        profiler: Profiler,
        pool: CandidatePool,
        training_examples: int,
    ) -> None:
        rmse = evaluate_rmse(model, test_set)
        curve.add(
            CurvePoint(
                cost_seconds=profiler.ledger.total_seconds,
                rmse=rmse,
                training_examples=training_examples,
                observations=profiler.ledger.executions,
            )
        )
