"""Algorithm 1: active learning with sequential analysis.

This module is the paper's primary contribution.  :class:`ActiveLearner`
drives the learning loop of Algorithm 1 generalised over a
:class:`~repro.core.plans.SamplingPlan`, so the same code runs the baseline
fixed-35 plan, the single-observation plan and the paper's variable
(sequential-analysis) plan:

1. Seed the model with ``n_initial`` random configurations, each profiled
   ``seed_observations`` times (good-quality data for the initial model).
2. Repeat until the completion criterion (``max_training_examples``
   selections, or a cost budget):

   a. assemble the candidate set — ``n_candidates`` never-observed random
      configurations plus, under a revisiting plan, every configuration seen
      fewer than ``max_observations_per_example`` times;
   b. score the candidates with the acquisition function (ALC by default)
      and select the most useful one;
   c. compile-and-run it according to the plan (one observation for the
      sequential plan, ``nobs`` for the fixed plans) and charge the cost;
   d. feed the observation(s) to the model and update the bookkeeping.

3. Periodically evaluate the intermediate model's RMSE on a held-out test
   set; the resulting :class:`~repro.core.curves.LearningCurve` is the raw
   material of Table 1 and Figures 5-6.

The loop itself lives in :class:`~repro.core.session.TuningSession`, an
inverted-control ask/tell state machine: the session proposes
:class:`~repro.measurement.broker.MeasurementRequest`\\ s and a
:class:`~repro.measurement.broker.MeasurementBroker` satisfies them.
:meth:`ActiveLearner.run` is the thin driver wiring the two together with
a live profiler (or, through ``broker_factory``, a replaying broker), and
its trajectory — curve, ledger, RNG stream — is bit-identical to the
pre-refactor inline loop.

The loop is *checkpointable*: a mid-run pickle of the session captures
everything the loop state depends on — the model (with its own generator),
the shared session generator, the cost ledger and per-configuration
statistics, the candidate pool, the curve, the held-out test set — while
the benchmark itself is reattached on resume (its memoised cost caches are
pure functions; the one piece of *stateful* benchmark state, the noise
model's frequency-drift walk, rides along in the session for
:meth:`~repro.core.session.TuningSession.attach_benchmark` to restore).
The sharded experiment backend (:mod:`repro.experiments.runner`) uses this
to survive killed paper-scale runs.  ``LearnerCheckpoint`` is a
compatibility alias for the session class.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..measurement.broker import MeasurementBroker, ProfilerBroker, measure_batch
from ..measurement.profiler import CostLedger, Profiler
from ..models.base import SurrogateModel
from ..models.compiled_kernels import BACKENDS
from ..models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from ..spapt.suite import SpaptBenchmark
from .acquisition import AcquisitionFunction, ALCAcquisition
from .curves import LearningCurve
from .evaluation import TestSet
from .plans import SamplingPlan, sequential_plan
from .session import TuningSession

__all__ = ["LearnerConfig", "LearningResult", "LearnerCheckpoint", "ActiveLearner"]

ModelFactory = Callable[[np.random.Generator], SurrogateModel]

#: A hook replacing the live broker: called with the default
#: :class:`ProfilerBroker` and the session's generator, it returns the
#: broker the run should use (e.g. a ReplayBroker recording into a trace).
BrokerFactory = Callable[
    [ProfilerBroker, np.random.Generator], MeasurementBroker
]


@dataclass(frozen=True)
class LearnerConfig:
    """Parameters of the active-learning loop (Section 4.4 of the paper).

    The paper's values are ``n_initial=5``, ``seed_observations=35``,
    ``n_candidates=500``, ``max_training_examples=2500`` and 5 000 dynamic
    tree particles; the defaults here are scaled down so a full comparison
    runs in minutes on a laptop, and :meth:`paper_scale` restores the paper's
    values.
    """

    n_initial: int = 5
    seed_observations: int = 35
    n_candidates: int = 60
    max_training_examples: int = 200
    reference_size: int = 40
    evaluation_interval: int = 10
    max_cost_seconds: Optional[float] = None
    tree_particles: int = 30
    tree_backend: str = "numpy"
    tree_float_mode: str = "exact"

    def __post_init__(self) -> None:
        if self.n_initial < 1:
            raise ValueError("n_initial must be at least 1")
        if self.seed_observations < 1:
            raise ValueError("seed_observations must be at least 1")
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be at least 1")
        if self.max_training_examples <= self.n_initial:
            raise ValueError("max_training_examples must exceed n_initial")
        if self.reference_size < 1:
            raise ValueError("reference_size must be at least 1")
        if self.evaluation_interval < 1:
            raise ValueError("evaluation_interval must be at least 1")
        if self.max_cost_seconds is not None and self.max_cost_seconds <= 0:
            raise ValueError("max_cost_seconds must be positive when given")
        if self.tree_particles < 1:
            raise ValueError("tree_particles must be at least 1")
        if self.tree_backend not in BACKENDS:
            raise ValueError(f"tree_backend must be one of {BACKENDS}")
        if self.tree_float_mode not in ("exact", "fast"):
            raise ValueError('tree_float_mode must be "exact" or "fast"')

    @classmethod
    def paper_scale(cls, **overrides) -> "LearnerConfig":
        """The configuration used by the paper's experiments (Section 4.4).

        Keyword overrides are forwarded to the constructor, so callers can
        keep the paper's loop parameters while adjusting orthogonal knobs
        (``tree_backend``, ``max_cost_seconds``, ...)::

            LearnerConfig.paper_scale(tree_backend="numba")
        """
        params = dict(
            n_initial=5,
            seed_observations=35,
            n_candidates=500,
            max_training_examples=2500,
            reference_size=100,
            evaluation_interval=25,
            tree_particles=5000,
        )
        params.update(overrides)
        return cls(**params)


@dataclass
class LearningResult:
    """Everything produced by one active-learning run."""

    plan_name: str
    curve: LearningCurve
    ledger: CostLedger
    observation_counts: Dict[Tuple[int, ...], int]
    training_examples: int
    model: SurrogateModel

    @property
    def total_cost_seconds(self) -> float:
        return self.ledger.total_seconds

    @property
    def distinct_configurations(self) -> int:
        return len(self.observation_counts)

    @property
    def total_observations(self) -> int:
        return sum(self.observation_counts.values())


#: Compatibility alias: a checkpoint *is* a pickled
#: :class:`~repro.core.session.TuningSession` now.  Code that type-checks
#: or unpickles old-style ``LearnerCheckpoint`` dataclasses must restart
#: the affected unit (the sharded runner already treats an unreadable
#: checkpoint as "start fresh").
LearnerCheckpoint = TuningSession


class ActiveLearner:
    """The Algorithm-1 learning loop for one benchmark and one sampling plan."""

    def __init__(
        self,
        benchmark: SpaptBenchmark,
        plan: Optional[SamplingPlan] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        config: Optional[LearnerConfig] = None,
        model_factory: Optional[ModelFactory] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._benchmark = benchmark
        self._plan = plan if plan is not None else sequential_plan()
        self._acquisition = acquisition if acquisition is not None else ALCAcquisition()
        self._config = config if config is not None else LearnerConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._model_factory = model_factory

    @property
    def plan(self) -> SamplingPlan:
        return self._plan

    @property
    def config(self) -> LearnerConfig:
        return self._config

    def _default_model_factory(self, rng: np.random.Generator) -> SurrogateModel:
        return DynamicTreeRegressor(
            DynamicTreeConfig(
                n_particles=self._config.tree_particles,
                backend=self._config.tree_backend,
                float_mode=self._config.tree_float_mode,
            ),
            rng=rng,
        )

    # ------------------------------------------------------------------ run

    def start_session(self, test_set: TestSet) -> TuningSession:
        """A fresh :class:`TuningSession` for this learner's configuration.

        The session receives a *copy* of the learner's generator, so the
        learner instance stays stateless across runs: calling :meth:`run`
        (or driving a started session) twice produces identical
        trajectories instead of mutating the learner's own stream.
        """
        return TuningSession(
            self._benchmark,
            plan=self._plan,
            acquisition=self._acquisition,
            config=self._config,
            model_factory=self._model_factory,
            rng=copy.deepcopy(self._rng),
            test_set=test_set,
        )

    def run(
        self,
        test_set: TestSet,
        resume: Optional[TuningSession] = None,
        checkpoint_interval: Optional[int] = None,
        checkpoint_sink: Optional[Callable[[TuningSession], None]] = None,
        broker_factory: Optional[BrokerFactory] = None,
        batch_size: int = 1,
    ) -> LearningResult:
        """Execute the learning loop and return its learning curve and costs.

        The loop is the ask/tell drive of a :class:`TuningSession` against
        a live :class:`~repro.measurement.broker.ProfilerBroker` (or
        whatever ``broker_factory`` wraps around it — e.g. a
        :class:`~repro.measurement.broker.ReplayBroker` serving a recorded
        trace).  ``checkpoint_sink`` (with a positive
        ``checkpoint_interval``) is called with the session every
        ``checkpoint_interval`` training examples; the sink must serialise
        the snapshot before returning.  ``resume`` restarts from such a
        pickled session — the continued trajectory (curve, costs, model
        state, RNG stream) is bit-identical to the uninterrupted run; the
        session carries its own plan, configuration and test set, and the
        benchmark (rebuilt by the caller) is reattached with its noise
        state restored.  A session pickled mid-batch resumes by measuring
        its still-pending requests before asking again.

        ``batch_size > 1`` drives batch acquisition: every round asks the
        session for up to ``batch_size`` requests at once, measures them
        through :func:`~repro.measurement.broker.measure_batch`, and tells
        the results back.  ``batch_size=1`` is the sequential path,
        bit-identical to the pre-batch loop.
        """
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive when given")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if resume is not None:
            if resume.plan_name != self._plan.name:
                raise ValueError(
                    f"checkpoint is for plan {resume.plan_name!r}, "
                    f"not {self._plan.name!r}"
                )
            session = resume
            session.attach_benchmark(self._benchmark)
        else:
            session = self.start_session(test_set)
        broker: MeasurementBroker = ProfilerBroker(
            Profiler(self._benchmark, rng=session.rng)
        )
        if broker_factory is not None:
            broker = broker_factory(broker, session.rng)
        # A session checkpointed mid-batch still owes measurements for the
        # requests it had already handed out; serve those before asking.
        pending = list(session.pending_requests)
        while True:
            if pending:
                requests = pending
                pending = []
            elif batch_size == 1:
                request = session.ask()
                if request is None:
                    break
                requests = [request]
            else:
                requests = session.ask(batch_size)
                if not requests:
                    break
            for result in measure_batch(broker, requests):
                session.tell(result)
            if (
                checkpoint_sink is not None
                and checkpoint_interval is not None
                and session.should_checkpoint(checkpoint_interval)
            ):
                checkpoint_sink(session)
        return session.result()
