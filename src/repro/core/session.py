"""The inverted-control core of Algorithm 1: an ask/tell tuning session.

:class:`TuningSession` is the learning loop of the paper turned inside
out.  Instead of a closed batch loop that owns both candidate selection
*and* profiling, the session is a state machine that *proposes* — every
:meth:`TuningSession.ask` returns a
:class:`~repro.measurement.broker.MeasurementRequest` naming the next
configuration to profile together with the sampling plan's repetition
count and CI stopping rule — and *consumes* — :meth:`TuningSession.tell`
feeds the resulting observations back into the model, the candidate pool,
the cost ledger and the learning curve.  Who satisfies a request is the
caller's business: a live :class:`~repro.measurement.broker.ProfilerBroker`,
a trace-backed :class:`~repro.measurement.broker.ReplayBroker`, or any
future measurement service.

The session covers the full lifecycle of Algorithm 1 — ``seeding`` (the
``n_initial`` bootstrap configurations), ``learning`` (acquisition-driven
selection) and ``done`` — and is fully picklable mid-run: a pickled
session *is* the checkpoint (``LearnerCheckpoint`` is now a thin alias),
carrying the model, the generator, the per-configuration statistics, the
cost ledger, the candidate pool, the curve, the held-out test set and the
benchmark's stateful noise components.  Only the benchmark itself is
dropped (it holds unpicklable memoisation caches) and reattached on resume
through :meth:`TuningSession.attach_benchmark`.

Determinism contract: a session driven ask/tell against a live profiler
sharing :attr:`TuningSession.rng` reproduces the pre-refactor inline loop
bit for bit — same candidate draws, same acquisition tie-breaks, same
noise stream, same float accumulation in the ledger, same curve.  The
tests in ``tests/test_session.py`` pin this against a frozen copy of the
inline loop.

``ask(k)`` accepts a batch size so batch acquisition for N parallel
workers can land as a session feature later; only ``k=1`` is implemented
today and larger values raise :class:`NotImplementedError`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..measurement.broker import MeasurementRequest, MeasurementResult
from ..measurement.profiler import CostLedger
from ..measurement.stats import RunningStats
from ..models.base import SurrogateModel
from ..models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from .acquisition import AcquisitionFunction, ALCAcquisition
from .candidates import CandidatePool
from .curves import CurvePoint, LearningCurve
from .evaluation import TestSet, evaluate_rmse
from .plans import SamplingPlan, sequential_plan

__all__ = ["TuningSession", "SEEDING", "LEARNING", "DONE"]

ModelFactory = Callable[[np.random.Generator], SurrogateModel]

#: Lifecycle phases of a session.
SEEDING = "seeding"
LEARNING = "learning"
DONE = "done"


class TuningSession:
    """Ask/tell state machine for one benchmark × plan × acquisition run.

    Construct it with a benchmark and drive it to completion::

        session = TuningSession(benchmark, plan=plan, config=config,
                                rng=rng, test_set=test_set)
        broker = ProfilerBroker(Profiler(benchmark, rng=session.rng))
        while (request := session.ask()) is not None:
            session.tell(broker.measure(request))
        result = session.result()

    The session owns the random generator (candidate draws, acquisition
    tie-breaks and — through the profiler constructed over
    :attr:`rng` — the noise stream all consume from it), the cost ledger
    and the per-configuration observation statistics; brokers are
    stateless with respect to the adaptive sampling rule, which is what
    makes a mid-run pickle of the session a complete checkpoint.
    """

    def __init__(
        self,
        benchmark,
        plan: Optional[SamplingPlan] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        config=None,
        model_factory: Optional[ModelFactory] = None,
        rng: Optional[np.random.Generator] = None,
        test_set: Optional[TestSet] = None,
    ) -> None:
        from .learner import LearnerConfig  # late: learner imports this module

        if test_set is None:
            raise ValueError("a TuningSession needs a held-out test_set")
        self._benchmark = benchmark
        self._benchmark_name = benchmark.name
        self._plan = plan if plan is not None else sequential_plan()
        self._acquisition = acquisition if acquisition is not None else ALCAcquisition()
        self._config = config if config is not None else LearnerConfig()
        self._model_factory = model_factory
        self._rng = rng if rng is not None else np.random.default_rng()
        self._test_set = test_set
        self._pool = CandidatePool(
            benchmark.search_space,
            max_observations=self._plan.max_observations_per_example,
            revisit=self._plan.revisit,
        )
        self._ledger = CostLedger()
        self._stats: Dict[Tuple[int, ...], RunningStats] = {}
        self._phase = SEEDING
        self._model: Optional[SurrogateModel] = None
        self._curve: Optional[LearningCurve] = None
        self._n_seed = 0
        self._seed_configurations: List[Tuple[int, ...]] = []
        self._seed_targets: List[float] = []
        self._seed_index = 0
        self._training_examples = 0
        self._iteration = 0
        self._pending: Optional[MeasurementRequest] = None
        self._noise_model = None

    # ------------------------------------------------------------ properties

    @property
    def phase(self) -> str:
        """``"seeding"``, ``"learning"`` or ``"done"``."""
        return self._phase

    @property
    def done(self) -> bool:
        return self._phase == DONE

    @property
    def rng(self) -> np.random.Generator:
        """The session's generator — build the live profiler over this, so
        candidate draws and measurement noise share one stream exactly as
        the inline loop did."""
        return self._rng

    @property
    def plan(self) -> SamplingPlan:
        return self._plan

    @property
    def plan_name(self) -> str:
        return self._plan.name

    @property
    def benchmark_name(self) -> str:
        return self._benchmark_name

    @property
    def n_seed(self) -> int:
        return self._n_seed

    @property
    def training_examples(self) -> int:
        return self._training_examples

    @property
    def next_iteration(self) -> int:
        """The next Algorithm-1 iteration index (compat with the old
        ``LearnerCheckpoint.next_iteration`` field)."""
        return self._iteration

    @property
    def model(self) -> Optional[SurrogateModel]:
        return self._model

    @property
    def pool(self) -> CandidatePool:
        return self._pool

    @property
    def curve(self) -> Optional[LearningCurve]:
        return self._curve

    @property
    def ledger(self) -> CostLedger:
        return self._ledger

    @property
    def test_set(self) -> TestSet:
        return self._test_set

    @property
    def noise_model(self):
        """The benchmark's (stateful) noise model, for checkpoint owners
        that restore it explicitly; on a live session this reads through to
        the attached benchmark."""
        if self._benchmark is not None:
            return self._benchmark.noise_model
        return self._noise_model

    # -------------------------------------------------------- (un)pickling

    def __getstate__(self) -> dict:
        """Drop the benchmark (unpicklable memoisation caches) and the model
        factory (often a closure); capture the benchmark's stateful noise
        components so :meth:`attach_benchmark` can restore them.  The model
        factory is only consulted on the first :meth:`ask`, which always
        precedes the first checkpoint, so dropping it loses nothing."""
        state = self.__dict__.copy()
        if self._benchmark is not None:
            state["_noise_model"] = self._benchmark.noise_model
        state["_benchmark"] = None
        state["_model_factory"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        if "_plan" not in state or "_rng" not in state:
            # An old-style LearnerCheckpoint blob (the dataclass this class
            # replaced) unpickles into the aliased class with foreign
            # fields; surface it as the error the checkpoint loaders treat
            # as "corrupt/stale: restart the unit".
            raise AttributeError(
                "incompatible checkpoint: not a pickled TuningSession"
            )
        self.__dict__.update(state)

    def attach_benchmark(self, benchmark) -> None:
        """Reattach a (freshly rebuilt) benchmark to an unpickled session.

        Restores the checkpointed noise-model state into the benchmark, so
        the resumed measurement stream continues the recorded random walk
        bit for bit.  The benchmark must be the one the session was created
        for.
        """
        if benchmark.name != self._benchmark_name:
            raise ValueError(
                f"session is for benchmark {self._benchmark_name!r}, "
                f"not {benchmark.name!r}"
            )
        self._benchmark = benchmark
        if self._noise_model is not None:
            benchmark.restore_noise_model(self._noise_model)

    # -------------------------------------------------------------- ask/tell

    def ask(self, k: int = 1) -> Optional[MeasurementRequest]:
        """The next measurement request, or ``None`` when the run is done.

        ``k`` is the batch size; batch acquisition (``k > 1``) is reserved
        for a future session feature and raises ``NotImplementedError``.
        """
        if k != 1:
            raise NotImplementedError(
                "batch acquisition (k > 1) is not implemented yet; "
                "ask one configuration at a time"
            )
        if self._pending is not None:
            raise RuntimeError(
                "ask() called while a request is outstanding; "
                "tell() the previous result first"
            )
        if self._phase == DONE:
            return None
        self._require_benchmark()
        if self._phase == SEEDING:
            return self._ask_seeding()
        return self._ask_learning()

    def tell(self, result: MeasurementResult) -> None:
        """Feed the observations answering the outstanding request back in."""
        if self._pending is None:
            raise RuntimeError("tell() called without an outstanding ask()")
        request = self._pending
        if tuple(result.configuration) != request.configuration:
            raise ValueError(
                f"result is for configuration {tuple(result.configuration)}, "
                f"but the outstanding request asked for {request.configuration}"
            )
        self._require_benchmark()
        self._pending = None
        key = request.configuration
        # Replay the charges into the session ledger in measurement order;
        # compile and runtime accumulate separately, so the totals match an
        # inline profiler's ledger bit for bit.
        for seconds in result.compile_seconds:
            self._ledger.charge_compile(seconds)
        stats = self._stats.setdefault(key, RunningStats())
        for runtime in result.runtimes:
            self._ledger.charge_run(runtime)
            stats.add(runtime)
        self._pool.record(key, len(result.runtimes))
        if self._phase == SEEDING:
            self._tell_seeding(key, stats)
        else:
            self._tell_learning(key, result)

    def result(self):
        """The finished run's :class:`~repro.core.learner.LearningResult`."""
        from .learner import LearningResult  # late: learner imports this module

        if not self.done:
            raise RuntimeError(
                "result() is only available once the session is done; "
                "keep asking until ask() returns None"
            )
        return LearningResult(
            plan_name=self._plan.name,
            curve=self._curve,
            ledger=self._ledger.snapshot(),
            observation_counts=self._pool.observation_counts,
            training_examples=self._training_examples,
            model=self._model,
        )

    def should_checkpoint(self, interval: int) -> bool:
        """True when the inline loop's checkpoint cadence fires: every
        ``interval`` training examples past seeding (never during or right
        after the seeding phase itself)."""
        if interval < 1:
            raise ValueError("interval must be positive")
        return (
            self._training_examples > self._n_seed
            and (self._training_examples - self._n_seed) % interval == 0
        )

    # ------------------------------------------------------------- internals

    def _require_benchmark(self) -> None:
        if self._benchmark is None:
            raise RuntimeError(
                "session has no benchmark attached; call attach_benchmark() "
                "after unpickling"
            )

    def _ask_seeding(self) -> MeasurementRequest:
        config = self._config
        if self._model is None:
            # First ask of the run: the generator draws happen in exactly
            # the inline loop's order — model seed first, then the seed
            # configurations.
            space = self._benchmark.search_space
            self._model = self._make_model(
                np.random.default_rng(self._rng.integers(2 ** 63))
            )
            self._curve = LearningCurve(self._plan.name)
            self._n_seed = min(config.n_initial, space.size)
            self._seed_configurations = space.sample_distinct(
                self._n_seed, self._rng
            )
        configuration = self._seed_configurations[self._seed_index]
        self._pending = MeasurementRequest(
            benchmark=self._benchmark_name,
            configuration=configuration,
            repetitions=config.seed_observations,
        )
        return self._pending

    def _tell_seeding(self, key: Tuple[int, ...], stats: RunningStats) -> None:
        self._seed_targets.append(stats.mean)
        self._seed_index += 1
        if self._seed_index < self._n_seed:
            return
        seed_features = self._benchmark.features_many(self._seed_configurations)
        self._model.fit(seed_features, np.asarray(self._seed_targets))
        self._record_point(self._n_seed)
        self._training_examples = self._n_seed
        self._iteration = self._n_seed
        self._phase = LEARNING

    def _ask_learning(self) -> Optional[MeasurementRequest]:
        config = self._config
        if self._iteration >= config.max_training_examples:
            return self._finish()
        if self._budget_exhausted():
            return self._finish()
        if self._pool.exhausted():
            return self._finish()
        candidates = self._pool.draw(config.n_candidates, self._rng)
        if not candidates:
            return self._finish()
        candidate_features = self._benchmark.features_many(candidates)
        reference_features = self._reference_features(candidate_features)
        index = self._acquisition.select(
            self._model, candidate_features, reference_features, self._rng
        )
        chosen = candidates[index]
        self._pending = self._plan.measurement_request(
            self._benchmark_name, chosen, prior_stats=self._stats.get(tuple(chosen))
        )
        return self._pending

    def _tell_learning(
        self, key: Tuple[int, ...], result: MeasurementResult
    ) -> None:
        observations = np.asarray(result.runtimes)
        chosen_features = self._benchmark.features(key)
        if self._plan.aggregate_mean:
            self._model.update(chosen_features, float(np.mean(observations)))
        else:
            for observation in observations:
                self._model.update(chosen_features, float(observation))
        self._training_examples = self._iteration + 1
        evaluate_now = (
            (self._training_examples - self._n_seed) % self._config.evaluation_interval
            == 0
            or self._training_examples == self._config.max_training_examples
        )
        if evaluate_now:
            self._record_point(self._training_examples)
        self._iteration += 1

    def _finish(self) -> None:
        if (
            not self._curve.points
            or self._curve.points[-1].training_examples != self._training_examples
        ):
            self._record_point(self._training_examples)
        self._phase = DONE
        return None

    def _make_model(self, rng: np.random.Generator) -> SurrogateModel:
        if self._model_factory is not None:
            return self._model_factory(rng)
        return DynamicTreeRegressor(
            DynamicTreeConfig(
                n_particles=self._config.tree_particles,
                backend=self._config.tree_backend,
            ),
            rng=rng,
        )

    def _budget_exhausted(self) -> bool:
        budget = self._config.max_cost_seconds
        return budget is not None and self._ledger.total_seconds >= budget

    def _reference_features(self, candidate_features: np.ndarray) -> np.ndarray:
        n = candidate_features.shape[0]
        size = min(self._config.reference_size, n)
        indices = self._rng.choice(n, size=size, replace=False)
        return candidate_features[indices]

    def _record_point(self, training_examples: int) -> None:
        rmse = evaluate_rmse(self._model, self._test_set)
        self._curve.add(
            CurvePoint(
                cost_seconds=self._ledger.total_seconds,
                rmse=rmse,
                training_examples=training_examples,
                observations=self._ledger.executions,
            )
        )
