"""The inverted-control core of Algorithm 1: an ask/tell tuning session.

:class:`TuningSession` is the learning loop of the paper turned inside
out.  Instead of a closed batch loop that owns both candidate selection
*and* profiling, the session is a state machine that *proposes* — every
:meth:`TuningSession.ask` returns a
:class:`~repro.measurement.broker.MeasurementRequest` naming the next
configuration to profile together with the sampling plan's repetition
count and CI stopping rule — and *consumes* — :meth:`TuningSession.tell`
feeds the resulting observations back into the model, the candidate pool,
the cost ledger and the learning curve.  Who satisfies a request is the
caller's business: a live :class:`~repro.measurement.broker.ProfilerBroker`,
a trace-backed :class:`~repro.measurement.broker.ReplayBroker`, or any
future measurement service.

The session covers the full lifecycle of Algorithm 1 — ``seeding`` (the
``n_initial`` bootstrap configurations), ``learning`` (acquisition-driven
selection) and ``done`` — and is fully picklable mid-run: a pickled
session *is* the checkpoint (``LearnerCheckpoint`` is now a thin alias),
carrying the model, the generator, the per-configuration statistics, the
cost ledger, the candidate pool, the curve, the held-out test set and the
benchmark's stateful noise components.  Only the benchmark itself is
dropped (it holds unpicklable memoisation caches) and reattached on resume
through :meth:`TuningSession.attach_benchmark`.

Determinism contract: a session driven ask/tell against a live profiler
sharing :attr:`TuningSession.rng` reproduces the pre-refactor inline loop
bit for bit — same candidate draws, same acquisition tie-breaks, same
noise stream, same float accumulation in the ledger, same curve.  The
tests in ``tests/test_session.py`` pin this against a frozen copy of the
inline loop.

``ask(k)`` with ``k > 1`` returns a *batch* of up to ``k`` requests for N
parallel workers: the acquisition function's ``select_batch`` picks ``k``
distinct candidates in one round (greedy-ALC with fantasized updates,
a diversity penalty, or plain top-``k``), and the resulting ``tell()``\\ s
may arrive in any order — the session stores them and folds the whole
batch in *ask order* once the last one lands, so the trajectory is a
deterministic function of the requests alone, not of measurement-arrival
races.  A session pickled mid-batch checkpoints its outstanding requests;
:attr:`TuningSession.pending_requests` lists what is still owed after a
resume.  ``ask(1)`` is bit-identical to the pre-batch sequential path
(same candidate draws, tie-breaks, ledger accumulation and curve).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..measurement.broker import MeasurementRequest, MeasurementResult
from ..measurement.profiler import CostLedger
from ..measurement.stats import RunningStats
from ..models.base import SurrogateModel
from ..models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from .acquisition import AcquisitionFunction, ALCAcquisition
from .candidates import CandidatePool
from .curves import CurvePoint, LearningCurve
from .evaluation import TestSet, evaluate_rmse
from .plans import SamplingPlan, sequential_plan

__all__ = ["TuningSession", "SEEDING", "LEARNING", "DONE"]

ModelFactory = Callable[[np.random.Generator], SurrogateModel]

#: Lifecycle phases of a session.
SEEDING = "seeding"
LEARNING = "learning"
DONE = "done"


class TuningSession:
    """Ask/tell state machine for one benchmark × plan × acquisition run.

    Construct it with a benchmark and drive it to completion::

        session = TuningSession(benchmark, plan=plan, config=config,
                                rng=rng, test_set=test_set)
        broker = ProfilerBroker(Profiler(benchmark, rng=session.rng))
        while (request := session.ask()) is not None:
            session.tell(broker.measure(request))
        result = session.result()

    The session owns the random generator (candidate draws, acquisition
    tie-breaks and — through the profiler constructed over
    :attr:`rng` — the noise stream all consume from it), the cost ledger
    and the per-configuration observation statistics; brokers are
    stateless with respect to the adaptive sampling rule, which is what
    makes a mid-run pickle of the session a complete checkpoint.
    """

    def __init__(
        self,
        benchmark,
        plan: Optional[SamplingPlan] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        config=None,
        model_factory: Optional[ModelFactory] = None,
        rng: Optional[np.random.Generator] = None,
        test_set: Optional[TestSet] = None,
    ) -> None:
        from .learner import LearnerConfig  # late: learner imports this module

        if test_set is None:
            raise ValueError("a TuningSession needs a held-out test_set")
        self._benchmark = benchmark
        self._benchmark_name = benchmark.name
        self._plan = plan if plan is not None else sequential_plan()
        self._acquisition = acquisition if acquisition is not None else ALCAcquisition()
        self._config = config if config is not None else LearnerConfig()
        self._model_factory = model_factory
        self._rng = rng if rng is not None else np.random.default_rng()
        self._test_set = test_set
        self._pool = CandidatePool(
            benchmark.search_space,
            max_observations=self._plan.max_observations_per_example,
            revisit=self._plan.revisit,
        )
        self._ledger = CostLedger()
        self._stats: Dict[Tuple[int, ...], RunningStats] = {}
        self._phase = SEEDING
        self._model: Optional[SurrogateModel] = None
        self._curve: Optional[LearningCurve] = None
        self._n_seed = 0
        self._seed_configurations: List[Tuple[int, ...]] = []
        self._seed_targets: List[float] = []
        self._seed_index = 0
        self._training_examples = 0
        self._iteration = 0
        self._pending: Optional[MeasurementRequest] = None
        # Batch bookkeeping (ask(k > 1)): outstanding requests in ask
        # order, and the results that have arrived so far keyed by
        # configuration.  The batch folds only once complete, in ask order.
        self._batch_requests: List[MeasurementRequest] = []
        self._batch_results: Dict[Tuple[int, ...], MeasurementResult] = {}
        # Training-example count when the last fold began — the anchor for
        # the batch-aware checkpoint cadence.
        self._fold_start = 0
        self._noise_model = None

    # ------------------------------------------------------------ properties

    @property
    def phase(self) -> str:
        """``"seeding"``, ``"learning"`` or ``"done"``."""
        return self._phase

    @property
    def done(self) -> bool:
        return self._phase == DONE

    @property
    def rng(self) -> np.random.Generator:
        """The session's generator — build the live profiler over this, so
        candidate draws and measurement noise share one stream exactly as
        the inline loop did."""
        return self._rng

    @property
    def plan(self) -> SamplingPlan:
        return self._plan

    @property
    def plan_name(self) -> str:
        return self._plan.name

    @property
    def benchmark_name(self) -> str:
        return self._benchmark_name

    @property
    def n_seed(self) -> int:
        return self._n_seed

    @property
    def training_examples(self) -> int:
        return self._training_examples

    @property
    def next_iteration(self) -> int:
        """The next Algorithm-1 iteration index (compat with the old
        ``LearnerCheckpoint.next_iteration`` field)."""
        return self._iteration

    @property
    def model(self) -> Optional[SurrogateModel]:
        return self._model

    @property
    def pool(self) -> CandidatePool:
        return self._pool

    @property
    def curve(self) -> Optional[LearningCurve]:
        return self._curve

    @property
    def ledger(self) -> CostLedger:
        return self._ledger

    @property
    def test_set(self) -> TestSet:
        return self._test_set

    @property
    def pending_requests(self) -> List[MeasurementRequest]:
        """Outstanding requests still awaiting :meth:`tell`, in ask order.

        Empty between rounds.  After unpickling a session that was saved
        mid-batch, this is exactly the work still owed — a resuming driver
        measures these before calling :meth:`ask` again.
        """
        if self._pending is not None:
            return [self._pending]
        return [
            request
            for request in self._batch_requests
            if request.configuration not in self._batch_results
        ]

    @property
    def noise_model(self):
        """The benchmark's (stateful) noise model, for checkpoint owners
        that restore it explicitly; on a live session this reads through to
        the attached benchmark."""
        if self._benchmark is not None:
            return self._benchmark.noise_model
        return self._noise_model

    # -------------------------------------------------------- (un)pickling

    def __getstate__(self) -> dict:
        """Drop the benchmark (unpicklable memoisation caches) and the model
        factory (often a closure); capture the benchmark's stateful noise
        components so :meth:`attach_benchmark` can restore them.  The model
        factory is only consulted on the first :meth:`ask`, which always
        precedes the first checkpoint, so dropping it loses nothing."""
        state = self.__dict__.copy()
        if self._benchmark is not None:
            state["_noise_model"] = self._benchmark.noise_model
        state["_benchmark"] = None
        state["_model_factory"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        if "_plan" not in state or "_rng" not in state:
            # An old-style LearnerCheckpoint blob (the dataclass this class
            # replaced) unpickles into the aliased class with foreign
            # fields; surface it as the error the checkpoint loaders treat
            # as "corrupt/stale: restart the unit".
            raise AttributeError(
                "incompatible checkpoint: not a pickled TuningSession"
            )
        # Sessions pickled before batch acquisition landed lack the batch
        # bookkeeping; default it so they resume on the sequential path.
        state.setdefault("_batch_requests", [])
        state.setdefault("_batch_results", {})
        state.setdefault("_fold_start", 0)
        self.__dict__.update(state)

    def attach_benchmark(self, benchmark) -> None:
        """Reattach a (freshly rebuilt) benchmark to an unpickled session.

        Restores the checkpointed noise-model state into the benchmark, so
        the resumed measurement stream continues the recorded random walk
        bit for bit.  The benchmark must be the one the session was created
        for.
        """
        if benchmark.name != self._benchmark_name:
            raise ValueError(
                f"session is for benchmark {self._benchmark_name!r}, "
                f"not {benchmark.name!r}"
            )
        self._benchmark = benchmark
        if self._noise_model is not None:
            benchmark.restore_noise_model(self._noise_model)

    # -------------------------------------------------------------- ask/tell

    def ask(self, k: int = 1):
        """The next measurement order(s), or nothing when the run is done.

        ``k == 1`` (the default) returns a single
        :class:`~repro.measurement.broker.MeasurementRequest` or ``None``
        when the run is complete — the sequential path, bit-identical to
        the pre-batch inline loop.  ``k > 1`` returns a *list* of up to
        ``k`` requests (an empty list when done): one acquisition round
        selects ``k`` distinct candidates through the acquisition
        function's ``select_batch``, and the batch never crosses a phase
        boundary or the ``max_training_examples`` budget, so fewer than
        ``k`` requests come back near either edge.  The matching
        :meth:`tell`\\ s may arrive in any order.
        """
        if k < 1:
            raise ValueError("batch size k must be at least 1")
        if self._pending is not None or self._batch_requests:
            raise RuntimeError(
                "ask() called while a request is outstanding; "
                "tell() the previous result(s) first"
            )
        if self._phase == DONE:
            return None if k == 1 else []
        self._require_benchmark()
        if k == 1:
            if self._phase == SEEDING:
                return self._ask_seeding()
            return self._ask_learning()
        return self._ask_batch(k)

    def tell(self, result: MeasurementResult) -> None:
        """Feed the observations answering an outstanding request back in.

        With a batch outstanding (``ask(k > 1)``), results may arrive in
        any order: each is held until the batch is complete, then the
        whole batch folds in *ask order* — the model updates, ledger
        charges, statistics and curve points are a deterministic function
        of the requests, independent of measurement-arrival interleaving.
        """
        if self._batch_requests:
            self._tell_batch(result)
            return
        if self._pending is None:
            raise RuntimeError("tell() called without an outstanding ask()")
        request = self._pending
        if tuple(result.configuration) != request.configuration:
            raise ValueError(
                f"result is for configuration {tuple(result.configuration)}, "
                f"but the outstanding request asked for {request.configuration}"
            )
        self._require_benchmark()
        self._pending = None
        self._fold_start = self._training_examples
        self._fold_one(request, result)

    def _tell_batch(self, result: MeasurementResult) -> None:
        self._require_benchmark()
        key = tuple(result.configuration)
        outstanding = {request.configuration for request in self._batch_requests}
        if key not in outstanding:
            raise ValueError(
                f"result is for configuration {key}, which is not part of "
                f"the outstanding batch {sorted(outstanding)}"
            )
        if key in self._batch_results:
            raise ValueError(
                f"duplicate tell() for configuration {key} in this batch"
            )
        self._batch_results[key] = result
        if len(self._batch_results) < len(self._batch_requests):
            return
        requests = self._batch_requests
        results = self._batch_results
        self._batch_requests = []
        self._batch_results = {}
        self._fold_start = self._training_examples
        # Fold in ask order, not arrival order: this is the determinism
        # contract for out-of-order tells.
        for request in requests:
            self._fold_one(request, results[request.configuration])

    def abandon(self) -> None:
        """Discard every outstanding request without folding anything.

        The recovery path for a permanently failed measurement (a broker
        raising :class:`~repro.measurement.faults.MeasurementFailedError`):
        the driver abandons the round and the session is immediately
        re-askable.  Nothing was told, so the model, ledger, statistics,
        pool and curve are exactly as they were before the failed
        :meth:`ask` — no state is corrupted.  Parked results of a
        partially measured batch are dropped rather than folded, because
        folding a partial batch would make the trajectory depend on
        *which* member failed.  The generator draws the abandoned ask
        consumed (candidate sampling, acquisition) are not rewound; a
        permanently lost measurement genuinely forks the trajectory, and
        the session simply continues on a valid one.
        """
        self._pending = None
        self._batch_requests = []
        self._batch_results = {}

    def _fold_one(
        self, request: MeasurementRequest, result: MeasurementResult
    ) -> None:
        key = request.configuration
        # Replay the charges into the session ledger in measurement order;
        # compile and runtime accumulate separately, so the totals match an
        # inline profiler's ledger bit for bit.
        for seconds in result.compile_seconds:
            self._ledger.charge_compile(seconds)
        stats = self._stats.setdefault(key, RunningStats())
        for runtime in result.runtimes:
            self._ledger.charge_run(runtime)
            stats.add(runtime)
        self._pool.record(key, len(result.runtimes))
        if self._phase == SEEDING:
            self._tell_seeding(key, stats)
        else:
            self._tell_learning(key, result)

    def result(self):
        """The finished run's :class:`~repro.core.learner.LearningResult`."""
        from .learner import LearningResult  # late: learner imports this module

        if not self.done:
            raise RuntimeError(
                "result() is only available once the session is done; "
                "keep asking until ask() returns None"
            )
        return LearningResult(
            plan_name=self._plan.name,
            curve=self._curve,
            ledger=self._ledger.snapshot(),
            observation_counts=self._pool.observation_counts,
            training_examples=self._training_examples,
            model=self._model,
        )

    def should_checkpoint(self, interval: int) -> bool:
        """True when the inline loop's checkpoint cadence fires: every
        ``interval`` training examples past seeding (never during or right
        after the seeding phase itself).

        Batch-aware: a single batch fold can advance the example count by
        more than one, so the cadence fires when the count *crossed* a
        multiple of ``interval`` since the fold began.  With ``k=1`` each
        fold advances by exactly one example and the crossing rule reduces
        to the original modulo test.
        """
        if interval < 1:
            raise ValueError("interval must be positive")
        if self._training_examples <= self._n_seed:
            return False
        since_fold = max(self._fold_start, self._n_seed) - self._n_seed
        since_now = self._training_examples - self._n_seed
        return since_now // interval > since_fold // interval or (
            since_now % interval == 0 and since_now == since_fold
        )

    # ------------------------------------------------------------- internals

    def _require_benchmark(self) -> None:
        if self._benchmark is None:
            raise RuntimeError(
                "session has no benchmark attached; call attach_benchmark() "
                "after unpickling"
            )

    def _ensure_seeding_initialised(self) -> None:
        if self._model is not None:
            return
        # First ask of the run: the generator draws happen in exactly
        # the inline loop's order — model seed first, then the seed
        # configurations.
        space = self._benchmark.search_space
        self._model = self._make_model(
            np.random.default_rng(self._rng.integers(2 ** 63))
        )
        self._curve = LearningCurve(self._plan.name)
        self._n_seed = min(self._config.n_initial, space.size)
        self._seed_configurations = space.sample_distinct(
            self._n_seed, self._rng
        )

    def _ask_seeding(self) -> MeasurementRequest:
        self._ensure_seeding_initialised()
        configuration = self._seed_configurations[self._seed_index]
        self._pending = MeasurementRequest(
            benchmark=self._benchmark_name,
            configuration=configuration,
            repetitions=self._config.seed_observations,
        )
        return self._pending

    def _ask_batch(self, k: int) -> List[MeasurementRequest]:
        if self._phase == SEEDING:
            requests = self._ask_seeding_batch(k)
        else:
            requests = self._ask_learning_batch(k)
        if requests:
            self._batch_requests = list(requests)
            self._batch_results = {}
        return list(requests)

    def _ask_seeding_batch(self, k: int) -> List[MeasurementRequest]:
        """Up to ``k`` of the remaining seed configurations.

        A batch never crosses the seeding/learning phase boundary: the
        model must be fitted on the complete seed set before acquisition
        can score anything, so the last seeding batch is simply short.
        """
        self._ensure_seeding_initialised()
        remaining = self._n_seed - self._seed_index
        return [
            MeasurementRequest(
                benchmark=self._benchmark_name,
                configuration=self._seed_configurations[self._seed_index + offset],
                repetitions=self._config.seed_observations,
            )
            for offset in range(min(k, remaining))
        ]

    def _ask_learning_batch(self, k: int) -> List[MeasurementRequest]:
        """One acquisition round selecting up to ``k`` distinct candidates.

        The completion checks run once per batch (not per member), and the
        batch is truncated at the remaining example budget, so a run with
        ``max_training_examples`` examples never overshoots.  One candidate
        draw and one reference draw serve the whole batch; the acquisition
        function's ``select_batch`` owns the interaction between members
        (fantasized updates, diversity penalties, or plain top-``k``).
        """
        config = self._config
        if self._iteration >= config.max_training_examples:
            self._finish()
            return []
        if self._budget_exhausted():
            self._finish()
            return []
        if self._pool.exhausted():
            self._finish()
            return []
        candidates = self._pool.draw(config.n_candidates, self._rng)
        if not candidates:
            self._finish()
            return []
        k_eff = min(k, config.max_training_examples - self._iteration, len(candidates))
        candidate_features = self._benchmark.features_many(candidates)
        reference_features = self._reference_features(candidate_features)
        indices = self._acquisition.select_batch(
            self._model, candidate_features, reference_features, self._rng, k_eff
        )
        if len(set(indices)) != len(indices):
            raise RuntimeError(
                f"{type(self._acquisition).__name__}.select_batch returned "
                "duplicate candidate indices"
            )
        return self._plan.measurement_requests(
            self._benchmark_name,
            [candidates[index] for index in indices],
            prior_stats=self._stats,
        )

    def _tell_seeding(self, key: Tuple[int, ...], stats: RunningStats) -> None:
        self._seed_targets.append(stats.mean)
        self._seed_index += 1
        if self._seed_index < self._n_seed:
            return
        seed_features = self._benchmark.features_many(self._seed_configurations)
        self._model.fit(seed_features, np.asarray(self._seed_targets))
        self._record_point(self._n_seed)
        self._training_examples = self._n_seed
        self._iteration = self._n_seed
        self._phase = LEARNING

    def _ask_learning(self) -> Optional[MeasurementRequest]:
        config = self._config
        if self._iteration >= config.max_training_examples:
            return self._finish()
        if self._budget_exhausted():
            return self._finish()
        if self._pool.exhausted():
            return self._finish()
        candidates = self._pool.draw(config.n_candidates, self._rng)
        if not candidates:
            return self._finish()
        candidate_features = self._benchmark.features_many(candidates)
        reference_features = self._reference_features(candidate_features)
        index = self._acquisition.select(
            self._model, candidate_features, reference_features, self._rng
        )
        chosen = candidates[index]
        self._pending = self._plan.measurement_request(
            self._benchmark_name, chosen, prior_stats=self._stats.get(tuple(chosen))
        )
        return self._pending

    def _tell_learning(
        self, key: Tuple[int, ...], result: MeasurementResult
    ) -> None:
        observations = np.asarray(result.runtimes)
        chosen_features = self._benchmark.features(key)
        if self._plan.aggregate_mean:
            self._model.update(chosen_features, float(np.mean(observations)))
        else:
            for observation in observations:
                self._model.update(chosen_features, float(observation))
        self._training_examples = self._iteration + 1
        evaluate_now = (
            (self._training_examples - self._n_seed) % self._config.evaluation_interval
            == 0
            or self._training_examples == self._config.max_training_examples
        )
        if evaluate_now:
            self._record_point(self._training_examples)
        self._iteration += 1

    def _finish(self) -> None:
        if (
            not self._curve.points
            or self._curve.points[-1].training_examples != self._training_examples
        ):
            self._record_point(self._training_examples)
        self._phase = DONE
        return None

    def _make_model(self, rng: np.random.Generator) -> SurrogateModel:
        if self._model_factory is not None:
            return self._model_factory(rng)
        return DynamicTreeRegressor(
            DynamicTreeConfig(
                n_particles=self._config.tree_particles,
                backend=self._config.tree_backend,
                float_mode=self._config.tree_float_mode,
            ),
            rng=rng,
        )

    def _budget_exhausted(self) -> bool:
        budget = self._config.max_cost_seconds
        return budget is not None and self._ledger.total_seconds >= budget

    def _reference_features(self, candidate_features: np.ndarray) -> np.ndarray:
        n = candidate_features.shape[0]
        size = min(self._config.reference_size, n)
        indices = self._rng.choice(n, size=size, replace=False)
        return candidate_features[indices]

    def _record_point(self, training_examples: int) -> None:
        rmse = evaluate_rmse(self._model, self._test_set)
        self._curve.add(
            CurvePoint(
                cost_seconds=self._ledger.total_seconds,
                rmse=rmse,
                training_examples=training_examples,
                observations=self._ledger.executions,
            )
        )
