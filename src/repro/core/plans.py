"""Sampling plans: how many observations a chosen training example receives.

The paper's central argument is that the *sampling plan* — how many times
each selected configuration is compiled-and-run — should not be a constant
fixed a priori.  Three plans are compared in the evaluation (Section 4.3):

* :func:`fixed_plan` with 35 observations — the baseline of Balaprakash et
  al.: every selected example is profiled 35 times, its mean becomes one
  training point, and the example never re-enters the candidate pool.
* :func:`fixed_plan` with 1 observation — the cheapest possible plan, fast
  but vulnerable to noise.
* :func:`sequential_plan` — the paper's contribution: every selection takes
  a *single* observation, and examples remain candidates until they have
  accumulated ``max_observations_per_example`` observations, so the active
  learner itself decides which examples deserve more samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..measurement.broker import MeasurementRequest
from ..measurement.stats import RunningStats

__all__ = [
    "SamplingPlan",
    "fixed_plan",
    "sequential_plan",
    "adaptive_ci_plan",
    "standard_plans",
    "make_plan",
    "plan_names",
]


@dataclass(frozen=True)
class SamplingPlan:
    """Parameters describing one sampling strategy.

    Attributes
    ----------
    name:
        Label used in reports ("all observations", "one observation",
        "variable observations" in the paper's figures).
    observations_per_selection:
        How many profiling runs are taken each time an example is selected.
    max_observations_per_example:
        Once an example has this many observations it leaves the candidate
        pool for good.
    revisit:
        Whether previously selected examples stay in the candidate pool
        (the sequential-analysis ingredient).
    aggregate_mean:
        If true, the model receives a single training point whose target is
        the mean of the observations taken in this selection; otherwise each
        observation is fed to the model individually.
    ci_threshold:
        When set, a selected example keeps being profiled (up to
        ``max_observations_per_example`` runs) until the 95% confidence
        interval of its mean divided by the mean falls below this value —
        the "raced profiles" statistical stopping rule of Leather et al.
        discussed in the paper's related work.  ``None`` disables the rule.
    """

    name: str
    observations_per_selection: int
    max_observations_per_example: int
    revisit: bool
    aggregate_mean: bool = True
    ci_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.observations_per_selection < 1:
            raise ValueError("observations_per_selection must be at least 1")
        if self.max_observations_per_example < self.observations_per_selection:
            raise ValueError(
                "max_observations_per_example cannot be smaller than "
                "observations_per_selection"
            )
        if self.ci_threshold is not None and self.ci_threshold <= 0:
            raise ValueError("ci_threshold must be positive when given")

    @property
    def is_sequential(self) -> bool:
        """True when the plan lets the learner decide the per-example sample size."""
        return self.revisit and self.observations_per_selection < self.max_observations_per_example

    def measurement_request(
        self,
        benchmark: str,
        configuration: Sequence[int],
        prior_stats: Optional[RunningStats] = None,
    ) -> MeasurementRequest:
        """The measurement order one selection under this plan places.

        This is where the plan's per-selection rule becomes part of the
        request protocol: the request carries the initial repetition count
        and — for plans with a ``ci_threshold`` — the stopping rule and the
        per-example cap, plus a snapshot of the configuration's prior
        observation statistics so any broker can evaluate the rule without
        holding state of its own.
        """
        return MeasurementRequest(
            benchmark=benchmark,
            configuration=tuple(configuration),
            repetitions=self.observations_per_selection,
            ci_threshold=self.ci_threshold,
            max_observations=self.max_observations_per_example,
            prior_stats=prior_stats.copy() if prior_stats is not None else None,
        )

    def measurement_requests(
        self,
        benchmark: str,
        configurations: Sequence[Sequence[int]],
        prior_stats: Optional[Mapping[tuple, RunningStats]] = None,
    ) -> list:
        """The measurement orders one *batch* selection places, in batch order.

        Every request carries the plan's per-selection rule exactly as
        :meth:`measurement_request` would, with each configuration's prior
        statistics snapshot looked up in ``prior_stats``.  Batch members
        are distinct configurations (the session selects distinct candidate
        indices and the candidate pool never yields duplicates within a
        draw), so the snapshots taken here stay valid for the whole batch —
        no member's measurement changes another member's prior count.
        """
        stats = prior_stats if prior_stats is not None else {}
        return [
            self.measurement_request(
                benchmark, configuration, prior_stats=stats.get(tuple(configuration))
            )
            for configuration in configurations
        ]


def fixed_plan(observations: int, name: str | None = None) -> SamplingPlan:
    """A constant sampling plan: ``observations`` runs per selected example.

    ``fixed_plan(35)`` is the paper's baseline ("all observations");
    ``fixed_plan(1)`` is the noisy single-sample plan ("one observation").
    """
    if name is None:
        name = "all observations" if observations > 1 else "one observation"
    return SamplingPlan(
        name=name,
        observations_per_selection=observations,
        max_observations_per_example=observations,
        revisit=False,
        aggregate_mean=True,
    )


def sequential_plan(
    max_observations: int = 35, name: str = "variable observations"
) -> SamplingPlan:
    """The paper's variable plan: one observation at a time, revisits allowed.

    ``max_observations`` caps how many times a single example can be
    revisited (the paper caps at 35, matching the baseline, and notes that
    this cap limits the attainable speed-up on the noisiest benchmark).
    """
    return SamplingPlan(
        name=name,
        observations_per_selection=1,
        max_observations_per_example=max_observations,
        revisit=True,
        aggregate_mean=False,
    )


def adaptive_ci_plan(
    ci_threshold: float = 0.01,
    max_observations: int = 35,
    name: str = "adaptive CI",
) -> SamplingPlan:
    """A statistical stopping rule in the spirit of Leather et al.'s raced profiles.

    Each selected example is profiled until the 95% CI/mean ratio of its
    observations drops below ``ci_threshold`` (or ``max_observations`` runs
    have been spent).  Unlike the paper's sequential-analysis plan the
    decision uses only the example's own observations, not the model's view
    of the surrounding space, so it cannot stop after a single run unless
    the threshold is trivially loose — it is provided as an additional
    comparison point and is not one of the paper's three evaluated plans.
    """
    return SamplingPlan(
        name=name,
        observations_per_selection=2,
        max_observations_per_example=max_observations,
        revisit=False,
        aggregate_mean=True,
        ci_threshold=ci_threshold,
    )


def standard_plans(baseline_observations: int = 35) -> list[SamplingPlan]:
    """The three plans compared throughout the paper's evaluation."""
    return [
        fixed_plan(baseline_observations),
        fixed_plan(1),
        sequential_plan(baseline_observations),
    ]


#: Name → zero-argument factory for every registered sampling plan.  The
#: registry keys double as the strategy names an experiment axis can carry
#: (e.g. a registry-driven ablation spec listing plans to compare).
_PLAN_FACTORIES = {
    "all-observations": lambda: fixed_plan(35),
    "one-observation": lambda: fixed_plan(1),
    "variable-observations": lambda: sequential_plan(),
    "adaptive-ci": lambda: adaptive_ci_plan(),
}


def plan_names() -> list[str]:
    """The names :func:`make_plan` accepts, in registration order."""
    return list(_PLAN_FACTORIES)


def make_plan(name: str) -> SamplingPlan:
    """Look up a sampling plan by name.

    Accepts the registry keys (``"variable-observations"``) as well as the
    space-separated report labels the paper's figures use (``"variable
    observations"``); matching is case-insensitive.
    """
    key = name.strip().lower().replace(" ", "-").replace("_", "-")
    if key not in _PLAN_FACTORIES:
        raise KeyError(
            f"unknown sampling plan {name!r}; expected one of {plan_names()}"
        )
    return _PLAN_FACTORIES[key]()
