"""Source-to-source transformation passes over the loop-nest IR.

These are the transformations whose parameters form the SPAPT search
spaces:

* :class:`LoopUnroll` — replicate the body of a loop ``factor`` times,
  rewriting the loop variable in each replica and widening the step.  This
  is what the paper calls the *unroll factor* (``U<loop>`` parameters in
  SPAPT).
* :class:`UnrollAndJam` (register tiling) — unroll an *outer* loop and fuse
  the replicas into the inner body, exposing register reuse across outer
  iterations (``RT<loop>`` parameters).
* :class:`StripMine` and :class:`CacheTile` — split a loop into a tile loop
  and a point loop, and, for perfectly nested bands, hoist the tile loops
  outward, restructuring the iteration space for cache locality
  (``T<loop>`` parameters).

Passes never mutate the input kernel; they return a new :class:`Kernel`.
A :class:`TransformPipeline` applies a sequence of passes, which is how a
configuration vector from the search space is lowered onto the IR.

Legality note: SPAPT kernels come with transformation annotations that are
legal by construction (the suite was built for autotuning), so these passes
perform structural validity checks (the loop exists, factors are positive,
tiles do not exceed trip counts) but not dependence analysis.  That mirrors
Orio, the annotation-driven transformer used by the paper's comparison
work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .expr import Const, Var, substitute
from .loopnest import ArrayRef, Kernel, Loop, Node, Statement, loop_by_name, walk_loops

__all__ = [
    "TransformError",
    "TransformPass",
    "LoopUnroll",
    "UnrollAndJam",
    "StripMine",
    "CacheTile",
    "TransformPipeline",
]


class TransformError(ValueError):
    """Raised when a transformation cannot be applied to a kernel."""


class TransformPass(ABC):
    """Base class for IR-to-IR transformation passes."""

    @abstractmethod
    def run(self, kernel: Kernel) -> Kernel:
        """Apply the pass and return the transformed kernel."""

    def __call__(self, kernel: Kernel) -> Kernel:
        return self.run(kernel)


def _require_loop(kernel: Kernel, var: str) -> None:
    """Raise :class:`TransformError` when the kernel has no loop named ``var``."""
    try:
        loop_by_name(kernel, var)
    except KeyError as exc:
        raise TransformError(str(exc)) from exc


def _rewrite_loop(
    nodes: Sequence[Node], var: str, rewrite
) -> Tuple[List[Node], bool]:
    """Apply ``rewrite`` to the loop named ``var`` anywhere in ``nodes``.

    Returns the rewritten node list and a flag saying whether the loop was
    found.  ``rewrite`` maps a :class:`Loop` to a list of replacement nodes.
    """
    result: List[Node] = []
    found = False
    for node in nodes:
        if isinstance(node, Loop):
            if node.var == var and not found:
                result.extend(rewrite(node))
                found = True
            else:
                new_body, inner_found = _rewrite_loop(node.body, var, rewrite)
                if inner_found:
                    found = True
                    result.append(node.with_body(new_body))
                else:
                    result.append(node)
        else:
            result.append(node)
    return result, found


def _substitute_nodes(nodes: Sequence[Node], mapping: Dict[str, object]) -> List[Node]:
    """Substitute index expressions throughout a list of nodes."""
    rewritten: List[Node] = []
    for node in nodes:
        if isinstance(node, Loop):
            rewritten.append(
                replace(
                    node,
                    lower=substitute(node.lower, mapping),
                    upper=substitute(node.upper, mapping),
                    body=tuple(_substitute_nodes(node.body, mapping)),
                )
            )
        else:
            rewritten.append(
                Statement(
                    writes=tuple(
                        ArrayRef(r.array, tuple(substitute(i, mapping) for i in r.indices))
                        for r in node.writes
                    ),
                    reads=tuple(
                        ArrayRef(r.array, tuple(substitute(i, mapping) for i in r.indices))
                        for r in node.reads
                    ),
                    flops=node.flops,
                    label=node.label,
                )
            )
    return rewritten


@dataclass(frozen=True)
class LoopUnroll(TransformPass):
    """Unroll the loop named ``loop_var`` by ``factor``.

    The body is replicated ``factor`` times with the loop variable offset by
    ``k * step`` in replica ``k``, and the loop step is multiplied by
    ``factor``.  Trip counts are assumed divisible by the factor (the cost
    model charges the remainder analytically); ``unrolled_by`` accumulates so
    repeated unrolling composes.
    """

    loop_var: str
    factor: int

    def run(self, kernel: Kernel) -> Kernel:
        if self.factor < 1:
            raise TransformError(f"unroll factor must be >= 1, got {self.factor}")
        if self.factor == 1:
            # Still validate the loop exists so configuration errors surface.
            _require_loop(kernel, self.loop_var)
            return kernel

        def rewrite(loop: Loop) -> List[Node]:
            replicas: List[Node] = []
            for k in range(self.factor):
                offset = k * loop.step
                if offset == 0:
                    replicas.extend(list(loop.body))
                else:
                    mapping = {loop.var: Var(loop.var) + Const(offset)}
                    replicas.extend(_substitute_nodes(loop.body, mapping))
            return [
                replace(
                    loop,
                    body=tuple(replicas),
                    step=loop.step * self.factor,
                    unrolled_by=loop.unrolled_by * self.factor,
                )
            ]

        loops, found = _rewrite_loop(kernel.loops, self.loop_var, rewrite)
        if not found:
            raise TransformError(
                f"kernel {kernel.name!r} has no loop {self.loop_var!r} to unroll"
            )
        return kernel.with_loops([l for l in loops if isinstance(l, Loop)])


@dataclass(frozen=True)
class UnrollAndJam(TransformPass):
    """Register tiling: unroll an outer loop and jam the replicas inward.

    The outer loop's step is widened by ``factor`` and each statement nested
    anywhere below it is replicated ``factor`` times with the outer variable
    offset, keeping the inner loop structure intact.  This exposes reuse of
    values held in registers across consecutive outer iterations, which is
    exactly what SPAPT's register-tiling parameters control.
    """

    loop_var: str
    factor: int

    def run(self, kernel: Kernel) -> Kernel:
        if self.factor < 1:
            raise TransformError(f"register tile factor must be >= 1, got {self.factor}")
        if self.factor == 1:
            _require_loop(kernel, self.loop_var)
            return kernel

        def jam(nodes: Sequence[Node], var: str, step: int) -> List[Node]:
            jammed: List[Node] = []
            for node in nodes:
                if isinstance(node, Loop):
                    jammed.append(node.with_body(jam(node.body, var, step)))
                else:
                    for k in range(self.factor):
                        offset = k * step
                        if offset == 0:
                            jammed.append(node)
                        else:
                            mapping = {var: Var(var) + Const(offset)}
                            jammed.extend(_substitute_nodes([node], mapping))
            return jammed

        def rewrite(loop: Loop) -> List[Node]:
            return [
                replace(
                    loop,
                    body=tuple(jam(loop.body, loop.var, loop.step)),
                    step=loop.step * self.factor,
                    unrolled_by=loop.unrolled_by * self.factor,
                )
            ]

        loops, found = _rewrite_loop(kernel.loops, self.loop_var, rewrite)
        if not found:
            raise TransformError(
                f"kernel {kernel.name!r} has no loop {self.loop_var!r} to register-tile"
            )
        return kernel.with_loops([l for l in loops if isinstance(l, Loop)])


@dataclass(frozen=True)
class StripMine(TransformPass):
    """Split loop ``loop_var`` into a tile loop and a point loop.

    ``for i in [L, U)`` becomes::

        for i_t in [L, U) step tile:
            for i in [i_t, i_t + tile):
                ...

    Trip counts are assumed divisible by the tile size (as with unrolling,
    the remainder is charged analytically by the cost model).  The tile loop
    variable is ``loop_var + tile_suffix``.
    """

    loop_var: str
    tile: int
    tile_suffix: str = "_t"

    @property
    def tile_var(self) -> str:
        return f"{self.loop_var}{self.tile_suffix}"

    def run(self, kernel: Kernel) -> Kernel:
        if self.tile < 1:
            raise TransformError(f"tile size must be >= 1, got {self.tile}")
        if self.tile == 1:
            _require_loop(kernel, self.loop_var)
            return kernel
        existing = {loop.var for loop in walk_loops(kernel.loops)}
        if self.tile_var in existing:
            raise TransformError(
                f"tile variable {self.tile_var!r} already exists in kernel {kernel.name!r}"
            )

        def rewrite(loop: Loop) -> List[Node]:
            point_loop = Loop(
                var=loop.var,
                lower=Var(self.tile_var),
                upper=Var(self.tile_var) + Const(self.tile * loop.step),
                body=loop.body,
                step=loop.step,
                unrolled_by=loop.unrolled_by,
            )
            tile_loop = Loop(
                var=self.tile_var,
                lower=loop.lower,
                upper=loop.upper,
                body=(point_loop,),
                step=self.tile * loop.step,
            )
            return [tile_loop]

        loops, found = _rewrite_loop(kernel.loops, self.loop_var, rewrite)
        if not found:
            raise TransformError(
                f"kernel {kernel.name!r} has no loop {self.loop_var!r} to strip-mine"
            )
        return kernel.with_loops([l for l in loops if isinstance(l, Loop)])


@dataclass(frozen=True)
class CacheTile(TransformPass):
    """Cache tiling of a perfectly nested band of loops.

    Each named loop is strip-mined by its tile size; when the named loops
    form a prefix of a perfectly nested band the tile loops are hoisted so
    that all tile loops are outermost (the classic loop-tiling shape).  When
    the nest is not perfect the pass degrades gracefully to in-place
    strip-mining, which still reduces the per-tile working set.
    """

    loop_vars: Tuple[str, ...]
    tiles: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "loop_vars", tuple(self.loop_vars))
        object.__setattr__(self, "tiles", tuple(self.tiles))
        if len(self.loop_vars) != len(self.tiles):
            raise TransformError("loop_vars and tiles must have the same length")

    def run(self, kernel: Kernel) -> Kernel:
        result = kernel
        for var, tile in zip(self.loop_vars, self.tiles):
            result = StripMine(var, tile).run(result)
        result = self._hoist_tile_loops(result)
        return result

    def _hoist_tile_loops(self, kernel: Kernel) -> Kernel:
        """Move tile loops outward within each perfectly nested band."""
        tile_vars = {f"{var}_t" for var, tile in zip(self.loop_vars, self.tiles) if tile > 1}
        if not tile_vars:
            return kernel

        def hoist(loop: Loop) -> Loop:
            band: List[Loop] = []
            current = loop
            while True:
                band.append(current)
                if len(current.body) == 1 and isinstance(current.body[0], Loop):
                    current = current.body[0]
                else:
                    break
            innermost_body = band[-1].body
            tile_loops = [l for l in band if l.var in tile_vars]
            point_loops = [l for l in band if l.var not in tile_vars]
            ordered = tile_loops + point_loops
            rebuilt_body: Tuple[Node, ...] = innermost_body
            rebuilt: Optional[Loop] = None
            for level in reversed(ordered):
                rebuilt = level.with_body(rebuilt_body)
                rebuilt_body = (rebuilt,)
            assert rebuilt is not None
            return rebuilt

        new_top: List[Loop] = []
        for loop in kernel.loops:
            new_top.append(hoist(loop))
        return kernel.with_loops(new_top)


class TransformPipeline:
    """Apply a sequence of transformation passes in order."""

    def __init__(self, passes: Sequence[TransformPass]) -> None:
        self._passes: Tuple[TransformPass, ...] = tuple(passes)

    @property
    def passes(self) -> Tuple[TransformPass, ...]:
        return self._passes

    def run(self, kernel: Kernel) -> Kernel:
        result = kernel
        for pipeline_pass in self._passes:
            result = pipeline_pass.run(result)
        return result

    def __call__(self, kernel: Kernel) -> Kernel:
        return self.run(kernel)
