"""Loop-nest IR, analyses and transformation passes.

This package is the "compiler" half of the substrate: SPAPT kernels are
expressed as loop nests over dense arrays, and the tunable parameters of the
paper's search spaces (unroll factors, cache tiles, register tiles) are
lowered onto the IR as source-to-source transformation passes.
"""

from .expr import Add, Const, Expr, Mul, Var, affine_coefficients, substitute, to_expr
from .loopnest import (
    ArrayDecl,
    ArrayRef,
    Kernel,
    Loop,
    Statement,
    loop_by_name,
    render,
    walk_loops,
    walk_statements,
)
from .analysis import (
    InnermostBodyStats,
    LoopContext,
    dynamic_flop_count,
    dynamic_memory_refs,
    dynamic_statement_count,
    innermost_bodies,
    loop_footprint_bytes,
    max_loop_depth,
    reference_stride,
)
from .transforms import (
    CacheTile,
    LoopUnroll,
    StripMine,
    TransformError,
    TransformPass,
    TransformPipeline,
    UnrollAndJam,
)

__all__ = [
    "Add",
    "Const",
    "Expr",
    "Mul",
    "Var",
    "affine_coefficients",
    "substitute",
    "to_expr",
    "ArrayDecl",
    "ArrayRef",
    "Kernel",
    "Loop",
    "Statement",
    "loop_by_name",
    "render",
    "walk_loops",
    "walk_statements",
    "InnermostBodyStats",
    "LoopContext",
    "dynamic_flop_count",
    "dynamic_memory_refs",
    "dynamic_statement_count",
    "innermost_bodies",
    "loop_footprint_bytes",
    "max_loop_depth",
    "reference_stride",
    "CacheTile",
    "LoopUnroll",
    "StripMine",
    "TransformError",
    "TransformPass",
    "TransformPipeline",
    "UnrollAndJam",
]
