"""Affine index expressions for the loop-nest IR.

SPAPT kernels are dense stencil and linear-algebra codes, so every array
subscript is an affine expression over loop index variables and symbolic
problem sizes (``i``, ``j``, ``i + 1``, ``i * N + j`` ...).  The expression
language here is deliberately small — constants, variables, addition and
multiplication — which is all those kernels need, and it keeps every
analysis (stride extraction, free variables, evaluation) exact.

Expressions are immutable; transformation passes build new expressions via
:func:`substitute` rather than mutating in place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Union

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Add",
    "Mul",
    "to_expr",
    "substitute",
    "affine_coefficients",
]

ExprLike = Union["Expr", int, str]


class Expr(ABC):
    """Base class of all index expressions."""

    @abstractmethod
    def evaluate(self, bindings: Mapping[str, int]) -> int:
        """Evaluate the expression with concrete values for every variable."""

    @abstractmethod
    def free_vars(self) -> FrozenSet[str]:
        """Names of all variables appearing in the expression."""

    @abstractmethod
    def __str__(self) -> str:  # pragma: no cover - trivial
        ...

    # Operator sugar keeps kernel definitions readable.
    def __add__(self, other: ExprLike) -> "Expr":
        return Add(self, to_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add(to_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul(self, to_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul(to_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Add(self, Mul(Const(-1), to_expr(other)))


@dataclass(frozen=True)
class Const(Expr):
    """An integer constant."""

    value: int

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return self.value

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A loop index variable or a symbolic problem-size parameter."""

    name: str

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        if self.name not in bindings:
            raise KeyError(f"unbound variable {self.name!r}")
        return int(bindings[self.name])

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Add(Expr):
    """Sum of two expressions."""

    left: Expr
    right: Expr

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return self.left.evaluate(bindings) + self.right.evaluate(bindings)

    def free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars() | self.right.free_vars()

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Mul(Expr):
    """Product of two expressions."""

    left: Expr
    right: Expr

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return self.left.evaluate(bindings) * self.right.evaluate(bindings)

    def free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars() | self.right.free_vars()

    def __str__(self) -> str:
        return f"({self.left} * {self.right})"


def to_expr(value: ExprLike) -> Expr:
    """Coerce an ``int``, ``str`` or :class:`Expr` into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid index expressions")
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot convert {value!r} to an index expression")


def substitute(expr: Expr, mapping: Mapping[str, ExprLike]) -> Expr:
    """Return ``expr`` with every variable in ``mapping`` replaced.

    Used by transformation passes, e.g. unrolling replaces the loop variable
    ``i`` with ``i + k`` for each replica ``k`` of the body.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        if expr.name in mapping:
            return to_expr(mapping[expr.name])
        return expr
    if isinstance(expr, Add):
        return Add(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Mul):
        return Mul(substitute(expr.left, mapping), substitute(expr.right, mapping))
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def affine_coefficients(expr: Expr) -> Dict[str, int]:
    """Extract the affine coefficients of an expression.

    Returns a mapping from variable name to its integer coefficient, with the
    constant term stored under the empty-string key ``""``.  Raises
    ``ValueError`` for non-affine expressions (a product of two variables).

    The cache model uses the coefficient of the innermost loop variable in an
    array subscript as the access stride.
    """
    if isinstance(expr, Const):
        return {"": expr.value}
    if isinstance(expr, Var):
        return {expr.name: 1}
    if isinstance(expr, Add):
        left = affine_coefficients(expr.left)
        right = affine_coefficients(expr.right)
        merged = dict(left)
        for name, coeff in right.items():
            merged[name] = merged.get(name, 0) + coeff
        return merged
    if isinstance(expr, Mul):
        left = affine_coefficients(expr.left)
        right = affine_coefficients(expr.right)
        left_vars = [name for name in left if name]
        right_vars = [name for name in right if name]
        if left_vars and right_vars:
            raise ValueError(f"expression {expr} is not affine")
        if not left_vars:
            scale = left.get("", 0)
            return {name: coeff * scale for name, coeff in right.items()}
        scale = right.get("", 0)
        return {name: coeff * scale for name, coeff in left.items()}
    raise TypeError(f"unknown expression node {type(expr).__name__}")
