"""Loop-nest intermediate representation for the SPAPT kernel substrate.

The paper tunes source-to-source transformations (loop unrolling, cache
tiling, register tiling) applied by Orio to C kernels.  We reproduce that
pipeline over a compact loop-nest IR:

* :class:`ArrayDecl` — a named dense array with symbolic dimensions.
* :class:`ArrayRef` — a read or write of an array at affine subscripts.
* :class:`Statement` — one assignment with its reads, writes and flop count.
* :class:`Loop` — a counted loop (lower/upper bound, step) over a body of
  statements and/or nested loops.
* :class:`Kernel` — a named program: problem-size parameters, array
  declarations and a list of top-level loops.

The IR is deliberately structural (no arbitrary control flow, no pointers)
because the SPAPT kernels are all perfectly or near-perfectly nested dense
loops; that is also what makes the tuning parameters well-defined.

Transformation passes (:mod:`repro.ir.transforms`) consume and produce this
IR; analyses (:mod:`repro.ir.analysis`) and the machine model
(:mod:`repro.machine`) walk it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from .expr import Const, Expr, ExprLike, Var, to_expr

__all__ = [
    "ArrayDecl",
    "ArrayRef",
    "Statement",
    "Loop",
    "Kernel",
    "Node",
    "walk_loops",
    "walk_statements",
    "loop_by_name",
    "render",
]

Node = Union["Loop", "Statement"]


@dataclass(frozen=True)
class ArrayDecl:
    """A dense array: name, symbolic dimension sizes and element width."""

    name: str
    dims: Tuple[ExprLike, ...]
    element_bytes: int = 8

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", tuple(to_expr(d) for d in self.dims))
        if self.element_bytes <= 0:
            raise ValueError("element_bytes must be positive")

    def element_count(self, sizes: Mapping[str, int]) -> int:
        """Total number of elements for concrete problem sizes."""
        count = 1
        for dim in self.dims:
            count *= dim.evaluate(sizes)
        return count

    def footprint_bytes(self, sizes: Mapping[str, int]) -> int:
        """Total array size in bytes for concrete problem sizes."""
        return self.element_count(sizes) * self.element_bytes


@dataclass(frozen=True)
class ArrayRef:
    """A subscripted access ``array[index_0, index_1, ...]``."""

    array: str
    indices: Tuple[ExprLike, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(to_expr(i) for i in self.indices))

    def free_vars(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for index in self.indices:
            names |= index.free_vars()
        return names

    def __str__(self) -> str:
        subscript = "][".join(str(i) for i in self.indices)
        return f"{self.array}[{subscript}]"


@dataclass(frozen=True)
class Statement:
    """One assignment statement.

    ``flops`` counts the floating-point operations executed per dynamic
    instance (e.g. a fused multiply-add in a dense kernel counts as 2).
    ``label`` is kept through transformations so replicated statements can be
    traced back to their origin.
    """

    writes: Tuple[ArrayRef, ...]
    reads: Tuple[ArrayRef, ...]
    flops: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "writes", tuple(self.writes))
        object.__setattr__(self, "reads", tuple(self.reads))
        if self.flops < 0:
            raise ValueError("flops cannot be negative")
        if not self.writes and not self.reads:
            raise ValueError("a statement must reference at least one array")

    def refs(self) -> Tuple[ArrayRef, ...]:
        """All array references, writes first."""
        return self.writes + self.reads

    def free_vars(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for ref in self.refs():
            names |= ref.free_vars()
        return names

    def __str__(self) -> str:
        lhs = ", ".join(str(w) for w in self.writes) if self.writes else "(none)"
        rhs = ", ".join(str(r) for r in self.reads) if self.reads else "(none)"
        return f"{lhs} := f({rhs})  // {self.flops} flops"


@dataclass(frozen=True)
class Loop:
    """A counted loop ``for var in [lower, upper) step step``.

    Bounds are affine expressions; ``upper`` is exclusive.  ``unrolled_by``
    records the accumulated unroll factor applied to this loop by
    transformation passes (1 means not unrolled) so downstream analyses know
    how much the body was replicated even when the replication was done
    symbolically.
    """

    var: str
    lower: ExprLike
    upper: ExprLike
    body: Tuple[Node, ...]
    step: int = 1
    unrolled_by: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "lower", to_expr(self.lower))
        object.__setattr__(self, "upper", to_expr(self.upper))
        object.__setattr__(self, "body", tuple(self.body))
        if self.step < 1:
            raise ValueError("loop step must be at least 1")
        if self.unrolled_by < 1:
            raise ValueError("unroll factor must be at least 1")
        if not self.body:
            raise ValueError(f"loop {self.var!r} has an empty body")

    def trip_count(self, bindings: Mapping[str, int]) -> int:
        """Number of iterations for concrete bounds (zero if empty)."""
        lower = self.lower.evaluate(bindings)
        upper = self.upper.evaluate(bindings)
        if upper <= lower:
            return 0
        return (upper - lower + self.step - 1) // self.step

    def with_body(self, body: Sequence[Node]) -> "Loop":
        """A copy of this loop with a different body."""
        return replace(self, body=tuple(body))

    def __str__(self) -> str:
        return f"for {self.var} in [{self.lower}, {self.upper}) step {self.step}"


@dataclass(frozen=True)
class Kernel:
    """A complete tunable kernel.

    Attributes
    ----------
    name:
        Kernel name (matches the SPAPT benchmark name).
    sizes:
        Concrete problem sizes for each symbolic dimension parameter
        (e.g. ``{"N": 2048}``).  SPAPT fixes the input size per search
        problem, so sizes are part of the kernel rather than the
        configuration.
    arrays:
        Array declarations by name.
    loops:
        Top-level loops, executed in sequence.
    """

    name: str
    sizes: Mapping[str, int]
    arrays: Tuple[ArrayDecl, ...]
    loops: Tuple[Loop, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", dict(self.sizes))
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "loops", tuple(self.loops))
        names = [a.name for a in self.arrays]
        if len(names) != len(set(names)):
            raise ValueError(f"kernel {self.name!r} declares duplicate arrays")
        if not self.loops:
            raise ValueError(f"kernel {self.name!r} has no loops")
        self._validate_references()

    def _validate_references(self) -> None:
        declared = {a.name for a in self.arrays}
        size_names = set(self.sizes)
        loop_vars = {loop.var for loop in walk_loops(self.loops)}
        for stmt in walk_statements(self.loops):
            for ref in stmt.refs():
                if ref.array not in declared:
                    raise ValueError(
                        f"kernel {self.name!r}: reference to undeclared array "
                        f"{ref.array!r}"
                    )
                unknown = ref.free_vars() - size_names - loop_vars
                if unknown:
                    raise ValueError(
                        f"kernel {self.name!r}: subscript uses unbound names {sorted(unknown)}"
                    )

    def array(self, name: str) -> ArrayDecl:
        """Look up an array declaration by name."""
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(f"kernel {self.name!r} has no array {name!r}")

    def with_loops(self, loops: Sequence[Loop]) -> "Kernel":
        """A copy of this kernel with different top-level loops."""
        return replace(self, loops=tuple(loops))

    def total_footprint_bytes(self) -> int:
        """Sum of all array footprints for this kernel's problem sizes."""
        return sum(a.footprint_bytes(self.sizes) for a in self.arrays)

    def loop_names(self) -> List[str]:
        """Names of every loop variable, outermost-first, depth-first."""
        return [loop.var for loop in walk_loops(self.loops)]


def walk_loops(nodes: Sequence[Node]) -> Iterator[Loop]:
    """Yield every loop in ``nodes`` depth-first, pre-order."""
    for node in nodes:
        if isinstance(node, Loop):
            yield node
            yield from walk_loops(node.body)


def walk_statements(nodes: Sequence[Node]) -> Iterator[Statement]:
    """Yield every statement in ``nodes`` depth-first."""
    for node in nodes:
        if isinstance(node, Loop):
            yield from walk_statements(node.body)
        else:
            yield node


def loop_by_name(kernel: Kernel, var: str) -> Loop:
    """Find the loop with index variable ``var`` in ``kernel``."""
    for loop in walk_loops(kernel.loops):
        if loop.var == var:
            return loop
    raise KeyError(f"kernel {kernel.name!r} has no loop named {var!r}")


def render(kernel: Kernel) -> str:
    """Render a kernel as pseudo-C for inspection and golden tests."""
    lines: List[str] = [f"// kernel {kernel.name}"]
    for name, value in sorted(kernel.sizes.items()):
        lines.append(f"#define {name} {value}")
    for decl in kernel.arrays:
        dims = "".join(f"[{d}]" for d in decl.dims)
        lines.append(f"double {decl.name}{dims};")
    lines.append("")

    def emit(nodes: Sequence[Node], indent: int) -> None:
        pad = "  " * indent
        for node in nodes:
            if isinstance(node, Loop):
                step = f"; {node.var} += {node.step}" if node.step != 1 else f"; {node.var}++"
                lines.append(
                    f"{pad}for ({node.var} = {node.lower}; {node.var} < {node.upper}{step}) {{"
                )
                emit(node.body, indent + 1)
                lines.append(f"{pad}}}")
            else:
                lines.append(f"{pad}{node};")

    emit(kernel.loops, 0)
    return "\n".join(lines)
