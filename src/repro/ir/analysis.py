"""Static analyses over the loop-nest IR.

The machine cost model (:mod:`repro.machine`) does not execute kernels; it
derives runtime estimates from structural properties of the (transformed)
IR.  This module computes those properties:

* dynamic statement / flop / memory-reference counts,
* innermost-body statistics (statements, refs, flops per iteration) which
  drive the loop-overhead, register-pressure and instruction-cache models,
* per-reference access strides with respect to a chosen loop variable, which
  drive the spatial-locality part of the cache model,
* approximate per-loop-level data footprints, which drive the capacity part
  of the cache model and the tiling benefit.

Loops whose bounds depend on outer loop variables (triangular nests in
``lu`` and ``correlation``) are handled by evaluating bounds with outer
variables bound to the midpoint of their range, giving the exact *average*
trip count for affine bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .expr import Expr, affine_coefficients
from .loopnest import ArrayRef, Kernel, Loop, Node, Statement, walk_loops

__all__ = [
    "LoopContext",
    "InnermostBodyStats",
    "dynamic_statement_count",
    "dynamic_flop_count",
    "dynamic_memory_refs",
    "innermost_bodies",
    "reference_stride",
    "loop_footprint_bytes",
    "max_loop_depth",
]


@dataclass(frozen=True)
class LoopContext:
    """The chain of loops enclosing a body, outermost first."""

    loops: Tuple[Loop, ...]

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def innermost(self) -> Loop:
        if not self.loops:
            raise ValueError("empty loop context")
        return self.loops[-1]

    def variables(self) -> Tuple[str, ...]:
        return tuple(loop.var for loop in self.loops)


@dataclass(frozen=True)
class InnermostBodyStats:
    """Per-iteration statistics of one innermost loop body.

    ``iterations`` is the total number of dynamic iterations of the innermost
    loop (product of trip counts along the enclosing chain).  ``unroll_product``
    is the product of accumulated unroll factors along the chain, which tells
    the register/instruction-cache model how much larger the generated body is
    than the source body.
    """

    context: LoopContext
    statements: int
    flops: int
    loads: int
    stores: int
    iterations: int
    unroll_product: int

    @property
    def memory_refs(self) -> int:
        return self.loads + self.stores


def _midpoint_bindings(
    loops: Sequence[Loop], sizes: Mapping[str, int]
) -> Dict[str, int]:
    """Bind each loop variable to the midpoint of its (average) range."""
    bindings: Dict[str, int] = dict(sizes)
    for loop in loops:
        lower = loop.lower.evaluate(bindings)
        upper = loop.upper.evaluate(bindings)
        bindings[loop.var] = (lower + max(upper - 1, lower)) // 2
    return bindings


def _average_trip_count(loop: Loop, outer: Sequence[Loop], sizes: Mapping[str, int]) -> float:
    """Average trip count of ``loop`` with outer variables at their midpoints."""
    bindings = _midpoint_bindings(outer, sizes)
    lower = loop.lower.evaluate(bindings)
    upper = loop.upper.evaluate(bindings)
    if upper <= lower:
        return 0.0
    return (upper - lower) / loop.step


def innermost_bodies(kernel: Kernel) -> List[InnermostBodyStats]:
    """Statistics for every innermost body in the kernel.

    An "innermost body" is the statement list of a loop that contains at
    least one statement directly (it may also contain nested loops; only the
    direct statements are attributed to it).
    """
    results: List[InnermostBodyStats] = []

    def visit(nodes: Sequence[Node], chain: List[Loop]) -> None:
        direct_statements = [n for n in nodes if isinstance(n, Statement)]
        if direct_statements and chain:
            iterations = 1.0
            for depth, loop in enumerate(chain):
                iterations *= _average_trip_count(loop, chain[:depth], kernel.sizes)
            unroll_product = 1
            for loop in chain:
                unroll_product *= loop.unrolled_by
            flops = sum(s.flops for s in direct_statements)
            loads = sum(len(s.reads) for s in direct_statements)
            stores = sum(len(s.writes) for s in direct_statements)
            results.append(
                InnermostBodyStats(
                    context=LoopContext(tuple(chain)),
                    statements=len(direct_statements),
                    flops=flops,
                    loads=loads,
                    stores=stores,
                    iterations=int(round(iterations)),
                    unroll_product=unroll_product,
                )
            )
        for node in nodes:
            if isinstance(node, Loop):
                visit(node.body, chain + [node])

    visit(kernel.loops, [])
    return results


def dynamic_statement_count(kernel: Kernel) -> int:
    """Total dynamic statement instances executed by the kernel."""
    return sum(body.statements * body.iterations for body in innermost_bodies(kernel))


def dynamic_flop_count(kernel: Kernel) -> int:
    """Total floating-point operations executed by the kernel."""
    return sum(body.flops * body.iterations for body in innermost_bodies(kernel))


def dynamic_memory_refs(kernel: Kernel) -> Tuple[int, int]:
    """Total (loads, stores) executed by the kernel."""
    loads = sum(body.loads * body.iterations for body in innermost_bodies(kernel))
    stores = sum(body.stores * body.iterations for body in innermost_bodies(kernel))
    return loads, stores


def reference_stride(
    ref: ArrayRef, loop_var: str, kernel: Kernel, array_dims: Optional[Sequence[int]] = None
) -> int:
    """Stride in *elements* of ``ref`` per unit step of ``loop_var``.

    Arrays are stored row-major; the stride contributed by subscript ``d`` is
    the coefficient of ``loop_var`` in that subscript multiplied by the
    product of the trailing dimension sizes.  A stride of zero means the
    reference is invariant to the loop (perfect temporal reuse), a stride of
    one means unit-stride streaming, larger strides progressively waste
    spatial locality.
    """
    decl = kernel.array(ref.array)
    if array_dims is None:
        array_dims = [d.evaluate(kernel.sizes) for d in decl.dims]
    if len(array_dims) != len(ref.indices):
        raise ValueError(
            f"reference {ref} has {len(ref.indices)} subscripts but array "
            f"{ref.array!r} has {len(array_dims)} dimensions"
        )
    stride = 0
    trailing = 1
    for dim_size, index in zip(reversed(array_dims), reversed(tuple(ref.indices))):
        coeffs = affine_coefficients(index)
        stride += coeffs.get(loop_var, 0) * trailing
        trailing *= dim_size
    return stride


def loop_footprint_bytes(kernel: Kernel, context: LoopContext) -> Dict[str, int]:
    """Approximate data footprint (bytes) touched by one iteration of each loop.

    For every loop in ``context`` (outermost first) this estimates how many
    bytes of each referenced array are touched by a single iteration of that
    loop, assuming the inner loops run to completion.  The estimate is the
    product, over each array dimension, of the extent of the subscript over
    the inner loop variables — the standard rectangular-footprint
    approximation used by analytical cache models for dense codes.
    """
    footprints: Dict[str, int] = {}
    chain = context.loops
    statements = [n for n in chain[-1].body if isinstance(n, Statement)]
    for level, loop in enumerate(chain):
        inner_loops = chain[level + 1 :]
        inner_vars = {l.var for l in inner_loops}
        total = 0
        seen: set[Tuple[str, Tuple[str, ...]]] = set()
        for stmt in statements:
            for ref in stmt.refs():
                key = (ref.array, tuple(str(i) for i in ref.indices))
                if key in seen:
                    continue
                seen.add(key)
                decl = kernel.array(ref.array)
                dims = [d.evaluate(kernel.sizes) for d in decl.dims]
                elements = 1
                for dim_size, index in zip(dims, ref.indices):
                    coeffs = affine_coefficients(index)
                    extent = 1
                    for var, coeff in coeffs.items():
                        if var in inner_vars and coeff != 0:
                            trip = _average_trip_count(
                                next(l for l in inner_loops if l.var == var),
                                chain[:level + 1],
                                kernel.sizes,
                            )
                            extent *= max(int(abs(coeff) * trip), 1)
                    elements *= min(extent, dim_size)
                total += elements * decl.element_bytes
        footprints[loop.var] = total
    return footprints


def max_loop_depth(kernel: Kernel) -> int:
    """Depth of the deepest loop nest in the kernel."""
    depth = 0

    def visit(nodes: Sequence[Node], current: int) -> None:
        nonlocal depth
        for node in nodes:
            if isinstance(node, Loop):
                depth = max(depth, current + 1)
                visit(node.body, current + 1)

    visit(kernel.loops, 0)
    return depth
