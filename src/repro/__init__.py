"""repro: reproduction of "Minimizing the Cost of Iterative Compilation with
Active Learning" (Ogilvie, Petoumenos, Wang & Leather, CGO 2017).

The package is organised in layers:

* :mod:`repro.ir` and :mod:`repro.machine` — the compiler/hardware
  substrate: a loop-nest IR, the unroll / cache-tile / register-tile
  transformation passes, and an analytical machine model that turns a
  transformed kernel into a deterministic runtime and compile time.
* :mod:`repro.spapt` — the 11 SPAPT search problems built on that substrate
  (kernels, tunable search spaces, dataset generation).
* :mod:`repro.measurement` — the simulated profiler: noise models, cost
  accounting and summary statistics.
* :mod:`repro.models` — the surrogate models: a from-scratch dynamic tree
  (particle learning), a Gaussian process and simple baselines.
* :mod:`repro.core` — the paper's contribution: the active-learning loop
  with sequential analysis, the sampling plans it is compared against,
  acquisition functions, learning curves and the comparison driver.
* :mod:`repro.experiments` — one driver per table/figure of the paper.

Quickstart::

    from repro.spapt import get_benchmark
    from repro.core import ActiveLearner, build_test_set, sequential_plan
    import numpy as np

    benchmark = get_benchmark("mm")
    rng = np.random.default_rng(0)
    test_set = build_test_set(benchmark, size=200, rng=rng)
    learner = ActiveLearner(benchmark, plan=sequential_plan(), rng=rng)
    result = learner.run(test_set)
    print(result.curve.best_error, result.total_cost_seconds)
"""

__version__ = "1.0.0"

__all__ = ["core", "models", "spapt", "measurement", "machine", "ir", "experiments"]
