"""Conjugate Gaussian leaf model for the dynamic tree.

Each leaf of a (dynamic) regression tree summarises the responses that fall
into its region with a Normal-Inverse-Gamma (NIG) posterior over the leaf
mean and variance.  The conjugacy gives three things in closed form, all of
which the dynamic tree needs at every sequential update:

* the **posterior** after absorbing any number of observations (kept as
  O(1) sufficient statistics: count, sum, sum of squares),
* the **marginal likelihood** of the observations in the leaf, which scores
  the stay/grow/prune moves, and
* the **posterior predictive** distribution (a Student-t), whose mean and
  variance are what the model reports and what the ALM/ALC acquisition
  functions consume.

The maths follows Murphy's "Conjugate Bayesian analysis of the Gaussian
distribution" notes and matches what the ``dynaTree`` R package's constant
leaves compute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "NIGPrior",
    "GaussianLeafModel",
    "LeafCacheArrays",
    "LeafTermTables",
    "LMLCache",
    "log_marginal_likelihood_from_stats",
]

_LOG_2PI = math.log(2.0 * math.pi)


@dataclass(frozen=True)
class NIGPrior:
    """Normal-Inverse-Gamma prior hyper-parameters.

    ``mean`` is the prior guess of the leaf mean, ``kappa`` the strength of
    that guess in pseudo-observations, ``alpha``/``beta`` the Inverse-Gamma
    shape/scale of the noise variance.  ``alpha`` must exceed 1 for the
    predictive variance to be finite.
    """

    mean: float = 0.0
    kappa: float = 0.1
    alpha: float = 2.0
    beta: float = 0.5
    #: Memoized count-only pieces of the predictive-log-pdf terms
    #: (``dof``, ``coef``, ``lgamma(coef) - lgamma(dof/2)``) keyed by
    #: observation count — they depend only on ``alpha`` and the count, and
    #: every leaf sharing this prior reuses them.  Excluded from equality
    #: and repr; mutating the dict does not violate the frozen contract.
    _logpdf_count_terms: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kappa <= 0:
            raise ValueError("kappa must be positive")
        if self.alpha <= 1.0:
            raise ValueError("alpha must be greater than 1 for finite predictive variance")
        if self.beta <= 0:
            raise ValueError("beta must be positive")

    @classmethod
    def from_observations(
        cls, values: Iterable[float], kappa: float = 0.1, alpha: float = 2.0
    ) -> "NIGPrior":
        """A weakly informative prior centred on observed data.

        Used by the dynamic tree when it is first seeded: the prior mean is
        the seed mean and ``beta`` is matched to the seed variance, so the
        model is scale-appropriate for runtimes regardless of whether the
        benchmark runs for milliseconds or minutes.
        """
        data = [float(v) for v in values]
        if not data:
            raise ValueError("cannot build a prior from no observations")
        mean = sum(data) / len(data)
        if len(data) > 1:
            variance = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
        else:
            variance = abs(mean) * 0.1 + 1e-6
        variance = max(variance, 1e-12)
        # E[sigma^2] = beta / (alpha - 1); match it to the observed variance.
        beta = variance * (alpha - 1.0)
        return cls(mean=mean, kappa=kappa, alpha=alpha, beta=beta)


class GaussianLeafModel:
    """Sufficient statistics and posterior quantities of one leaf.

    The posterior parameters and the log marginal likelihood are memoized:
    the dynamic tree asks for them many times between updates (every
    prediction, every ALC score, every stay/grow/prune proposal touching the
    leaf), while the sufficient statistics only change on ``add``/``remove``.
    """

    __slots__ = (
        "prior",
        "_count",
        "_sum",
        "_sum_sq",
        "_posterior_cache",
        "_lml_cache",
        "_logpdf_terms_cache",
    )

    def __init__(self, prior: NIGPrior) -> None:
        self.prior = prior
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._posterior_cache: Optional[Tuple[float, float, float, float]] = None
        self._lml_cache: Optional[float] = None
        self._logpdf_terms_cache: Optional[Tuple[float, float, float, float]] = None

    # ------------------------------------------------------------- updates

    def _invalidate(self) -> None:
        self._posterior_cache = None
        self._lml_cache = None
        self._logpdf_terms_cache = None

    def copy(self) -> "GaussianLeafModel":
        clone = GaussianLeafModel(self.prior)
        clone._count = self._count
        clone._sum = self._sum
        clone._sum_sq = self._sum_sq
        clone._posterior_cache = self._posterior_cache
        clone._lml_cache = self._lml_cache
        clone._logpdf_terms_cache = self._logpdf_terms_cache
        return clone

    def add(self, value: float) -> None:
        """Absorb one observation."""
        value = float(value)
        self._count += 1
        self._sum += value
        self._sum_sq += value * value
        self._invalidate()

    def remove(self, value: float) -> None:
        """Remove one previously absorbed observation (used by prune proposals)."""
        if self._count <= 0:
            raise ValueError("cannot remove from an empty leaf")
        value = float(value)
        self._count -= 1
        self._sum -= value
        self._sum_sq -= value * value
        self._invalidate()

    def merge(self, other: "GaussianLeafModel") -> "GaussianLeafModel":
        """A new leaf model containing this leaf's and ``other``'s observations."""
        merged = self.copy()
        merged._count += other._count
        merged._sum += other._sum
        merged._sum_sq += other._sum_sq
        merged._invalidate()
        return merged

    @classmethod
    def from_values(cls, prior: NIGPrior, values: Iterable[float]) -> "GaussianLeafModel":
        leaf = cls(prior)
        for value in values:
            leaf.add(value)
        return leaf

    @classmethod
    def from_sufficient_stats(
        cls, prior: NIGPrior, count: int, total: float, total_sq: float
    ) -> "GaussianLeafModel":
        """Build a leaf directly from ``(count, sum, sum of squares)``.

        Used by the vectorized grow-proposal scan, which computes partition
        sufficient statistics with array reductions rather than feeding
        values through :meth:`add` one at a time.
        """
        if count < 0:
            raise ValueError("count cannot be negative")
        leaf = cls(prior)
        leaf._count = int(count)
        leaf._sum = float(total)
        leaf._sum_sq = float(total_sq)
        return leaf

    # ---------------------------------------------------------- posteriors

    @property
    def count(self) -> int:
        return self._count

    @property
    def sample_mean(self) -> float:
        if self._count == 0:
            return self.prior.mean
        return self._sum / self._count

    def sufficient_stats(self) -> Tuple[int, float, float]:
        """``(count, sum, sum of squares)`` — the leaf's full mutable state.

        The batched update path scores hypothetical leaves (stay adds the
        new observation, prune merges the sibling) by arithmetic on these
        statistics instead of mutating throwaway leaf copies.
        """
        return self._count, self._sum, self._sum_sq

    def posterior(self) -> Tuple[float, float, float, float]:
        """Posterior NIG parameters ``(mean, kappa, alpha, beta)`` (memoized)."""
        if self._posterior_cache is not None:
            return self._posterior_cache
        prior = self.prior
        n = self._count
        if n == 0:
            result = (prior.mean, prior.kappa, prior.alpha, prior.beta)
        else:
            mean = self._sum / n
            kappa_n = prior.kappa + n
            mean_n = (prior.kappa * prior.mean + self._sum) / kappa_n
            alpha_n = prior.alpha + n / 2.0
            sum_sq_dev = max(self._sum_sq - n * mean * mean, 0.0)
            beta_n = (
                prior.beta
                + 0.5 * sum_sq_dev
                + 0.5 * (prior.kappa * n * (mean - prior.mean) ** 2) / kappa_n
            )
            result = (mean_n, kappa_n, alpha_n, beta_n)
        self._posterior_cache = result
        return result

    def predictive_mean(self) -> float:
        """Mean of the posterior predictive distribution."""
        mean_n, _, _, _ = self.posterior()
        return mean_n

    def predictive_variance(self) -> float:
        """Variance of the posterior predictive Student-t distribution."""
        _, kappa_n, alpha_n, beta_n = self.posterior()
        scale_sq = beta_n * (kappa_n + 1.0) / (alpha_n * kappa_n)
        dof = 2.0 * alpha_n
        if dof <= 2.0:
            # Infinite-variance regime; report the scale as a conservative proxy.
            return scale_sq * 10.0
        return scale_sq * dof / (dof - 2.0)

    def predictive_logpdf_terms(self) -> Tuple[float, float, float, float]:
        """``(mean, dof * scale_sq, coefficient, constant)`` of the predictive log-pdf.

        The Student-t log density at ``v`` decomposes into a value-independent
        part and a single ``log1p`` term::

            logpdf(v) = const - coef * log1p((v - mean)**2 / dof_scale)

        The four terms only change when the sufficient statistics do, so the
        batched reweight step caches them in flat arrays (one entry per leaf)
        and evaluates the whole particle set with one gather plus a scalar
        ``math.log1p`` per particle.  The grouping of every operation here
        mirrors the original single-expression implementation exactly, so the
        decomposed evaluation is bit-identical to it.
        """
        if self._logpdf_terms_cache is not None:
            return self._logpdf_terms_cache
        mean_n, kappa_n, alpha_n, beta_n = self.posterior()
        dof, coef, lgamma_part = _predictive_count_terms(self.prior, self._count)
        scale_sq = beta_n * (kappa_n + 1.0) / (alpha_n * kappa_n)
        const = lgamma_part - 0.5 * math.log(dof * math.pi * scale_sq)
        result = (mean_n, dof * scale_sq, coef, const)
        self._logpdf_terms_cache = result
        return result

    def predictive_logpdf(self, value: float) -> float:
        """Log density of ``value`` under the posterior predictive Student-t."""
        mean_n, dof_scale, coef, const = self.predictive_logpdf_terms()
        z_sq = (float(value) - mean_n) ** 2 / dof_scale
        return const - coef * math.log1p(z_sq)

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of all observations currently in the leaf.

        This is the quantity the stay/grow/prune scores compare: it rewards
        partitions whose leaves are internally consistent and penalises
        fragmentation through the prior terms.
        """
        if self._lml_cache is not None:
            return self._lml_cache
        n = self._count
        if n == 0:
            result = 0.0
        else:
            prior = self.prior
            _, kappa_n, alpha_n, beta_n = self.posterior()
            result = (
                math.lgamma(alpha_n)
                - math.lgamma(prior.alpha)
                + prior.alpha * math.log(prior.beta)
                - alpha_n * math.log(beta_n)
                + 0.5 * (math.log(prior.kappa) - math.log(kappa_n))
                - (n / 2.0) * _LOG_2PI
            )
        self._lml_cache = result
        return result


def _predictive_count_terms(prior: NIGPrior, count: int) -> Tuple[float, float, float]:
    """``(dof, coef, lgamma(coef) - lgamma(dof / 2))`` of the predictive log-pdf.

    These depend only on the prior's ``alpha`` and the observation count, so
    they are memoized on the prior (see ``NIGPrior._logpdf_count_terms``) and
    shared by every leaf and by the vectorized term tables
    (:class:`LeafTermTables`).  ``alpha_n`` is recomputed here exactly as
    :meth:`GaussianLeafModel.posterior` groups it, keeping the cached values
    bit-identical to the inline computation they replaced.
    """
    count_terms = prior._logpdf_count_terms.get(count)
    if count_terms is None:
        alpha_n = prior.alpha if count == 0 else prior.alpha + count / 2.0
        dof = 2.0 * alpha_n
        coef = (dof + 1.0) / 2.0
        count_terms = (
            dof,
            coef,
            math.lgamma((dof + 1.0) / 2.0) - math.lgamma(dof / 2.0),
        )
        prior._logpdf_count_terms[count] = count_terms
    return count_terms


def log_marginal_likelihood_from_stats(
    prior: NIGPrior, count: float, total: float, total_sq: float
) -> float:
    """Log marginal likelihood of a leaf summarised by ``(count, sum, sum_sq)``.

    Scalar twin of :meth:`GaussianLeafModel.log_marginal_likelihood` used by
    the vectorized grow-proposal scan: the partition scan reduces each side
    of a candidate split to sufficient statistics with array ops and scores
    it here without materialising leaf objects.
    """
    n = count
    if n == 0:
        return 0.0
    mean = total / n
    kappa_n = prior.kappa + n
    mean_n = (prior.kappa * prior.mean + total) / kappa_n
    alpha_n = prior.alpha + n / 2.0
    sum_sq_dev = max(total_sq - n * mean * mean, 0.0)
    beta_n = (
        prior.beta
        + 0.5 * sum_sq_dev
        + 0.5 * (prior.kappa * n * (mean - prior.mean) ** 2) / kappa_n
    )
    return (
        math.lgamma(alpha_n)
        - math.lgamma(prior.alpha)
        + prior.alpha * math.log(prior.beta)
        - alpha_n * math.log(beta_n)
        + 0.5 * (math.log(prior.kappa) - math.log(kappa_n))
        - (n / 2.0) * _LOG_2PI
    )


class LMLCache:
    """Memoized log-marginal-likelihood evaluation for one prior.

    Of the terms in :func:`log_marginal_likelihood_from_stats`, everything
    except ``alpha_n * log(beta_n)`` depends only on the observation *count*
    — and the dynamic tree evaluates the marginal likelihood thousands of
    times per update (two per candidate split, one per stay score) at a
    handful of distinct counts.  This cache stores the count-only terms
    (including both ``lgamma`` calls, the dominant cost) keyed by count, so
    a cached evaluation reduces to the ``beta_n`` arithmetic plus one
    ``math.log``.

    Bit-compatibility: the cached terms are contiguous left-associated
    prefixes of the original expression, computed with the same scalar
    ``math`` calls, so :meth:`log_marginal_likelihood` returns bit-identical
    values to :func:`log_marginal_likelihood_from_stats` (and to
    :meth:`GaussianLeafModel.log_marginal_likelihood` on equal statistics).
    This matters because the particle moves are *sampled* from these scores.
    """

    __slots__ = ("prior", "_terms_by_count")

    def __init__(self, prior: NIGPrior) -> None:
        self.prior = prior
        self._terms_by_count: dict = {}

    def _terms(self, n: int) -> Tuple[float, float, float, float, float]:
        terms = self._terms_by_count.get(n)
        if terms is None:
            prior = self.prior
            kappa_n = prior.kappa + n
            alpha_n = prior.alpha + n / 2.0
            head = (
                math.lgamma(alpha_n)
                - math.lgamma(prior.alpha)
                + prior.alpha * math.log(prior.beta)
            )
            mid = 0.5 * (math.log(prior.kappa) - math.log(kappa_n))
            tail = (n / 2.0) * _LOG_2PI
            terms = (kappa_n, alpha_n, head, mid, tail)
            self._terms_by_count[n] = terms
        return terms

    def log_marginal_likelihood(self, count: int, total: float, total_sq: float) -> float:
        """Bit-identical twin of :func:`log_marginal_likelihood_from_stats`."""
        n = int(count)
        if n == 0:
            return 0.0
        prior = self.prior
        kappa_n, alpha_n, head, mid, tail = self._terms(n)
        mean = total / n
        sum_sq_dev = max(total_sq - n * mean * mean, 0.0)
        beta_n = (
            prior.beta
            + 0.5 * sum_sq_dev
            + 0.5 * (prior.kappa * n * (mean - prior.mean) ** 2) / kappa_n
        )
        return ((head - alpha_n * math.log(beta_n)) + mid) - tail


class LeafTermTables:
    """Count-indexed arrays of the NIG terms the vectorized kernels gather.

    The batched stay/prune/grow scoring replaces thousands of scalar
    :class:`LMLCache` / :func:`_predictive_count_terms` lookups per update
    with array gathers ``table[counts]``.  Each table entry ``n`` holds the
    exact values the scalar caches produce for count ``n`` — the entries are
    *filled from* those caches, so every gathered term is bit-identical to
    the per-leaf path by construction.

    ``ensure(max_count)`` grows the tables geometrically; the model calls it
    once per update with the largest count any hypothetical leaf can reach,
    so amortised table maintenance is O(1) per update.
    """

    __slots__ = (
        "lml",
        "prior",
        "size",
        "kappa_n",
        "alpha_n",
        "head",
        "mid",
        "tail",
        "dof",
        "coef",
        "lgamma_part",
        "dof_pi",
    )

    def __init__(self, lml: "LMLCache") -> None:
        self.lml = lml
        self.prior = lml.prior
        self.size = 0
        self.kappa_n = np.empty(0)
        self.alpha_n = np.empty(0)
        self.head = np.empty(0)
        self.mid = np.empty(0)
        self.tail = np.empty(0)
        self.dof = np.empty(0)
        self.coef = np.empty(0)
        self.lgamma_part = np.empty(0)
        self.dof_pi = np.empty(0)

    def ensure(self, max_count: int) -> None:
        """Make every count in ``0..max_count`` gatherable."""
        if max_count < self.size:
            return
        new_size = max(2 * self.size, max_count + 1, 64)
        names = (
            "kappa_n",
            "alpha_n",
            "head",
            "mid",
            "tail",
            "dof",
            "coef",
            "lgamma_part",
            "dof_pi",
        )
        grown = {name: np.empty(new_size) for name in names}
        for name in names:
            grown[name][: self.size] = getattr(self, name)
        prior = self.prior
        for n in range(self.size, new_size):
            kappa_n, alpha_n, head, mid, tail = self.lml._terms(n)
            dof, coef, lgamma_part = _predictive_count_terms(prior, n)
            grown["kappa_n"][n] = kappa_n
            grown["alpha_n"][n] = alpha_n
            grown["head"][n] = head
            grown["mid"][n] = mid
            grown["tail"][n] = tail
            grown["dof"][n] = dof
            grown["coef"][n] = coef
            grown["lgamma_part"][n] = lgamma_part
            grown["dof_pi"][n] = dof * math.pi
        for name in names:
            setattr(self, name, grown[name])
        self.size = new_size


class LeafCacheArrays:
    """Array-backed cached statistics for a *set* of leaves.

    One row per leaf id, packed into a single ``(n_leaves, 9)`` matrix —
    the posterior-predictive mean and variance, the observation count, the
    three value-independent terms of the predictive log-pdf (see
    :meth:`GaussianLeafModel.predictive_logpdf_terms`), the raw sufficient
    statistics (sum and sum of squares) and the memoized log marginal
    likelihood.  This is the leaf store behind
    :class:`~repro.models.flat_tree.FlatTree` /
    :class:`~repro.models.flat_tree.FlatForest`: prediction and the ALC
    score gather ``mean``/``variance`` (column views), the batched reweight
    step reads whole rows via :meth:`logpdf_row`, the batched propagate
    step gathers the sufficient-statistics and LML columns instead of
    calling per-leaf Python methods, and a "stay" move refreshes the one
    affected row via :meth:`patch`.  The single backing matrix is
    deliberate: copy-on-write resample copies, forest concatenation and
    row patches each touch one array instead of nine, which is what keeps
    those paths off the per-particle numpy-dispatch floor at paper-scale
    particle counts.

    The per-row values are produced by the leaf models' memoized scalar
    methods rather than by numpy transcendentals: ``np.log``/``np.log1p``
    are *not* bit-identical to their ``math`` counterparts (SIMD
    implementations round differently on ~1e-4 of inputs), and the particle
    moves are sampled from scores built on these values, so a single
    mismatched bit would silently fork seeded trajectories.
    """

    __slots__ = ("data",)

    #: Column layout of :attr:`data`.
    (
        MEAN,
        VARIANCE,
        COUNT,
        LOGPDF_SCALE,
        LOGPDF_COEF,
        LOGPDF_CONST,
        SUM,
        SUM_SQ,
        LML,
    ) = range(9)

    #: Row width; every cache-matrix allocation sizes against this.
    N_COLUMNS = 9

    def __init__(self, data: np.ndarray) -> None:
        self.data = data

    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def mean(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.MEAN]

    @property
    def variance(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.VARIANCE]

    @property
    def count(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.COUNT]

    @property
    def logpdf_scale(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.LOGPDF_SCALE]

    @property
    def logpdf_coef(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.LOGPDF_COEF]

    @property
    def logpdf_const(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.LOGPDF_CONST]

    @property
    def leaf_sum(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.SUM]

    @property
    def leaf_sum_sq(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.SUM_SQ]

    @property
    def leaf_lml(self) -> np.ndarray:
        return self.data[:, LeafCacheArrays.LML]

    @classmethod
    def from_leaves(cls, leaves: Sequence[GaussianLeafModel]) -> "LeafCacheArrays":
        arrays = cls(np.empty((len(leaves), cls.N_COLUMNS)))
        for slot, leaf in enumerate(leaves):
            arrays.patch(slot, leaf)
        return arrays

    @classmethod
    def concatenate(cls, parts: Sequence["LeafCacheArrays"]) -> "LeafCacheArrays":
        return cls(np.concatenate([part.data for part in parts], axis=0))

    def copy(self) -> "LeafCacheArrays":
        return LeafCacheArrays(self.data.copy())

    def logpdf_row(self, slot: int) -> Tuple[float, float, float, float]:
        """``(mean, dof_scale, coef, const)`` of one leaf, as Python floats."""
        row = self.data[slot].tolist()
        return row[0], row[3], row[4], row[5]

    def patch(self, slot: int, leaf: GaussianLeafModel) -> Tuple[float, ...]:
        """Refresh one row from a leaf model's (memoized) posterior.

        Returns the written row as a tuple so callers tracking patches (the
        incremental forest's stale-row records) get the values without
        re-reading the array.
        """
        mean, dof_scale, coef, const = leaf.predictive_logpdf_terms()
        count, total, total_sq = leaf.sufficient_stats()
        row = (
            mean,
            leaf.predictive_variance(),
            float(count),
            dof_scale,
            coef,
            const,
            total,
            total_sq,
            leaf.log_marginal_likelihood(),
        )
        self.data[slot] = row
        return row
