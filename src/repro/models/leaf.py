"""Conjugate Gaussian leaf model for the dynamic tree.

Each leaf of a (dynamic) regression tree summarises the responses that fall
into its region with a Normal-Inverse-Gamma (NIG) posterior over the leaf
mean and variance.  The conjugacy gives three things in closed form, all of
which the dynamic tree needs at every sequential update:

* the **posterior** after absorbing any number of observations (kept as
  O(1) sufficient statistics: count, sum, sum of squares),
* the **marginal likelihood** of the observations in the leaf, which scores
  the stay/grow/prune moves, and
* the **posterior predictive** distribution (a Student-t), whose mean and
  variance are what the model reports and what the ALM/ALC acquisition
  functions consume.

The maths follows Murphy's "Conjugate Bayesian analysis of the Gaussian
distribution" notes and matches what the ``dynaTree`` R package's constant
leaves compute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

__all__ = ["NIGPrior", "GaussianLeafModel", "log_marginal_likelihood_from_stats"]

_LOG_2PI = math.log(2.0 * math.pi)


@dataclass(frozen=True)
class NIGPrior:
    """Normal-Inverse-Gamma prior hyper-parameters.

    ``mean`` is the prior guess of the leaf mean, ``kappa`` the strength of
    that guess in pseudo-observations, ``alpha``/``beta`` the Inverse-Gamma
    shape/scale of the noise variance.  ``alpha`` must exceed 1 for the
    predictive variance to be finite.
    """

    mean: float = 0.0
    kappa: float = 0.1
    alpha: float = 2.0
    beta: float = 0.5

    def __post_init__(self) -> None:
        if self.kappa <= 0:
            raise ValueError("kappa must be positive")
        if self.alpha <= 1.0:
            raise ValueError("alpha must be greater than 1 for finite predictive variance")
        if self.beta <= 0:
            raise ValueError("beta must be positive")

    @classmethod
    def from_observations(
        cls, values: Iterable[float], kappa: float = 0.1, alpha: float = 2.0
    ) -> "NIGPrior":
        """A weakly informative prior centred on observed data.

        Used by the dynamic tree when it is first seeded: the prior mean is
        the seed mean and ``beta`` is matched to the seed variance, so the
        model is scale-appropriate for runtimes regardless of whether the
        benchmark runs for milliseconds or minutes.
        """
        data = [float(v) for v in values]
        if not data:
            raise ValueError("cannot build a prior from no observations")
        mean = sum(data) / len(data)
        if len(data) > 1:
            variance = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
        else:
            variance = abs(mean) * 0.1 + 1e-6
        variance = max(variance, 1e-12)
        # E[sigma^2] = beta / (alpha - 1); match it to the observed variance.
        beta = variance * (alpha - 1.0)
        return cls(mean=mean, kappa=kappa, alpha=alpha, beta=beta)


class GaussianLeafModel:
    """Sufficient statistics and posterior quantities of one leaf.

    The posterior parameters and the log marginal likelihood are memoized:
    the dynamic tree asks for them many times between updates (every
    prediction, every ALC score, every stay/grow/prune proposal touching the
    leaf), while the sufficient statistics only change on ``add``/``remove``.
    """

    __slots__ = ("prior", "_count", "_sum", "_sum_sq", "_posterior_cache", "_lml_cache")

    def __init__(self, prior: NIGPrior) -> None:
        self.prior = prior
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._posterior_cache: Optional[Tuple[float, float, float, float]] = None
        self._lml_cache: Optional[float] = None

    # ------------------------------------------------------------- updates

    def _invalidate(self) -> None:
        self._posterior_cache = None
        self._lml_cache = None

    def copy(self) -> "GaussianLeafModel":
        clone = GaussianLeafModel(self.prior)
        clone._count = self._count
        clone._sum = self._sum
        clone._sum_sq = self._sum_sq
        clone._posterior_cache = self._posterior_cache
        clone._lml_cache = self._lml_cache
        return clone

    def add(self, value: float) -> None:
        """Absorb one observation."""
        value = float(value)
        self._count += 1
        self._sum += value
        self._sum_sq += value * value
        self._invalidate()

    def remove(self, value: float) -> None:
        """Remove one previously absorbed observation (used by prune proposals)."""
        if self._count <= 0:
            raise ValueError("cannot remove from an empty leaf")
        value = float(value)
        self._count -= 1
        self._sum -= value
        self._sum_sq -= value * value
        self._invalidate()

    def merge(self, other: "GaussianLeafModel") -> "GaussianLeafModel":
        """A new leaf model containing this leaf's and ``other``'s observations."""
        merged = self.copy()
        merged._count += other._count
        merged._sum += other._sum
        merged._sum_sq += other._sum_sq
        merged._invalidate()
        return merged

    @classmethod
    def from_values(cls, prior: NIGPrior, values: Iterable[float]) -> "GaussianLeafModel":
        leaf = cls(prior)
        for value in values:
            leaf.add(value)
        return leaf

    @classmethod
    def from_sufficient_stats(
        cls, prior: NIGPrior, count: int, total: float, total_sq: float
    ) -> "GaussianLeafModel":
        """Build a leaf directly from ``(count, sum, sum of squares)``.

        Used by the vectorized grow-proposal scan, which computes partition
        sufficient statistics with array reductions rather than feeding
        values through :meth:`add` one at a time.
        """
        if count < 0:
            raise ValueError("count cannot be negative")
        leaf = cls(prior)
        leaf._count = int(count)
        leaf._sum = float(total)
        leaf._sum_sq = float(total_sq)
        return leaf

    # ---------------------------------------------------------- posteriors

    @property
    def count(self) -> int:
        return self._count

    @property
    def sample_mean(self) -> float:
        if self._count == 0:
            return self.prior.mean
        return self._sum / self._count

    def posterior(self) -> Tuple[float, float, float, float]:
        """Posterior NIG parameters ``(mean, kappa, alpha, beta)`` (memoized)."""
        if self._posterior_cache is not None:
            return self._posterior_cache
        prior = self.prior
        n = self._count
        if n == 0:
            result = (prior.mean, prior.kappa, prior.alpha, prior.beta)
        else:
            mean = self._sum / n
            kappa_n = prior.kappa + n
            mean_n = (prior.kappa * prior.mean + self._sum) / kappa_n
            alpha_n = prior.alpha + n / 2.0
            sum_sq_dev = max(self._sum_sq - n * mean * mean, 0.0)
            beta_n = (
                prior.beta
                + 0.5 * sum_sq_dev
                + 0.5 * (prior.kappa * n * (mean - prior.mean) ** 2) / kappa_n
            )
            result = (mean_n, kappa_n, alpha_n, beta_n)
        self._posterior_cache = result
        return result

    def predictive_mean(self) -> float:
        """Mean of the posterior predictive distribution."""
        mean_n, _, _, _ = self.posterior()
        return mean_n

    def predictive_variance(self) -> float:
        """Variance of the posterior predictive Student-t distribution."""
        _, kappa_n, alpha_n, beta_n = self.posterior()
        scale_sq = beta_n * (kappa_n + 1.0) / (alpha_n * kappa_n)
        dof = 2.0 * alpha_n
        if dof <= 2.0:
            # Infinite-variance regime; report the scale as a conservative proxy.
            return scale_sq * 10.0
        return scale_sq * dof / (dof - 2.0)

    def predictive_logpdf(self, value: float) -> float:
        """Log density of ``value`` under the posterior predictive Student-t."""
        mean_n, kappa_n, alpha_n, beta_n = self.posterior()
        dof = 2.0 * alpha_n
        scale_sq = beta_n * (kappa_n + 1.0) / (alpha_n * kappa_n)
        z_sq = (float(value) - mean_n) ** 2 / (dof * scale_sq)
        return (
            math.lgamma((dof + 1.0) / 2.0)
            - math.lgamma(dof / 2.0)
            - 0.5 * math.log(dof * math.pi * scale_sq)
            - (dof + 1.0) / 2.0 * math.log1p(z_sq)
        )

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of all observations currently in the leaf.

        This is the quantity the stay/grow/prune scores compare: it rewards
        partitions whose leaves are internally consistent and penalises
        fragmentation through the prior terms.
        """
        if self._lml_cache is not None:
            return self._lml_cache
        n = self._count
        if n == 0:
            result = 0.0
        else:
            prior = self.prior
            _, kappa_n, alpha_n, beta_n = self.posterior()
            result = (
                math.lgamma(alpha_n)
                - math.lgamma(prior.alpha)
                + prior.alpha * math.log(prior.beta)
                - alpha_n * math.log(beta_n)
                + 0.5 * (math.log(prior.kappa) - math.log(kappa_n))
                - (n / 2.0) * _LOG_2PI
            )
        self._lml_cache = result
        return result


def log_marginal_likelihood_from_stats(
    prior: NIGPrior, count: float, total: float, total_sq: float
) -> float:
    """Log marginal likelihood of a leaf summarised by ``(count, sum, sum_sq)``.

    Scalar twin of :meth:`GaussianLeafModel.log_marginal_likelihood` used by
    the vectorized grow-proposal scan: the partition scan reduces each side
    of a candidate split to sufficient statistics with array ops and scores
    it here without materialising leaf objects.
    """
    n = count
    if n == 0:
        return 0.0
    mean = total / n
    kappa_n = prior.kappa + n
    mean_n = (prior.kappa * prior.mean + total) / kappa_n
    alpha_n = prior.alpha + n / 2.0
    sum_sq_dev = max(total_sq - n * mean * mean, 0.0)
    beta_n = (
        prior.beta
        + 0.5 * sum_sq_dev
        + 0.5 * (prior.kappa * n * (mean - prior.mean) ** 2) / kappa_n
    )
    return (
        math.lgamma(alpha_n)
        - math.lgamma(prior.alpha)
        + prior.alpha * math.log(prior.beta)
        - alpha_n * math.log(beta_n)
        + 0.5 * (math.log(prior.kappa) - math.log(kappa_n))
        - (n / 2.0) * _LOG_2PI
    )
