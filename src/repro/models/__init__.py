"""Surrogate regression models: dynamic trees, Gaussian processes, baselines."""

from .base import Prediction, SurrogateModel
from .baselines import ConstantMeanModel, KNNRegressor
from .dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from .gp import GaussianProcessRegressor
from .leaf import GaussianLeafModel, NIGPrior

__all__ = [
    "Prediction",
    "SurrogateModel",
    "ConstantMeanModel",
    "KNNRegressor",
    "DynamicTreeConfig",
    "DynamicTreeRegressor",
    "GaussianProcessRegressor",
    "GaussianLeafModel",
    "NIGPrior",
]
