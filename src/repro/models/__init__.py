"""Surrogate regression models: dynamic trees, Gaussian processes, baselines."""

from .base import Prediction, SurrogateModel
from .baselines import ConstantMeanModel, KNNRegressor
from .dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from .flat_tree import FlatTree
from .gp import GaussianProcessRegressor
from .leaf import GaussianLeafModel, NIGPrior

__all__ = [
    "Prediction",
    "SurrogateModel",
    "ConstantMeanModel",
    "KNNRegressor",
    "DynamicTreeConfig",
    "DynamicTreeRegressor",
    "FlatTree",
    "GaussianProcessRegressor",
    "GaussianLeafModel",
    "NIGPrior",
]
