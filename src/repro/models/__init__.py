"""Surrogate regression models: dynamic trees, Gaussian processes, baselines.

Besides the classes themselves the package exposes a name-based factory
(:func:`make_model`) so an experiment axis can be a list of model names —
the registry-driven ablation specs compare ``"dynamic-tree"`` against
``"gp"``/``"knn"``/``"constant-mean"`` by handing these names to the
sharded experiment runner as ordinary work-unit parameters.
"""

from typing import Callable, List, Optional

import numpy as np

from .base import Prediction, SurrogateModel
from .baselines import ConstantMeanModel, KNNRegressor
from .dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from .flat_tree import FlatTree
from .gp import GaussianProcessRegressor
from .leaf import GaussianLeafModel, NIGPrior

__all__ = [
    "Prediction",
    "SurrogateModel",
    "ConstantMeanModel",
    "KNNRegressor",
    "DynamicTreeConfig",
    "DynamicTreeRegressor",
    "FlatTree",
    "GaussianProcessRegressor",
    "GaussianLeafModel",
    "NIGPrior",
    "make_model",
    "model_factory",
    "model_names",
]


def _make_dynamic_tree(
    rng: Optional[np.random.Generator], tree_particles: int, tree_backend: str
) -> SurrogateModel:
    return DynamicTreeRegressor(
        DynamicTreeConfig(n_particles=tree_particles, backend=tree_backend),
        rng=rng if rng is not None else np.random.default_rng(),
    )


_MODEL_REGISTRY: dict = {
    "dynamic-tree": _make_dynamic_tree,
    "gp": lambda rng, tree_particles, tree_backend: GaussianProcessRegressor(),
    # Sliding-window GP: forgets the oldest observation past 100 training
    # examples through the rank-1 Cholesky downdate — the drift-tracking
    # surrogate with bounded per-update cost.
    "gp-window": lambda rng, tree_particles, tree_backend: GaussianProcessRegressor(
        window_size=100
    ),
    "knn": lambda rng, tree_particles, tree_backend: KNNRegressor(k=5),
    "constant-mean": lambda rng, tree_particles, tree_backend: ConstantMeanModel(),
}


def model_names() -> List[str]:
    """The names :func:`make_model` accepts, in registration order."""
    return list(_MODEL_REGISTRY)


def _resolve_model_name(name: str) -> str:
    key = name.strip().lower().replace(" ", "-").replace("_", "-")
    if key not in _MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; expected one of {model_names()}")
    return key


def make_model(
    name: str,
    rng: Optional[np.random.Generator] = None,
    tree_particles: int = 30,
    tree_backend: str = "numpy",
) -> SurrogateModel:
    """Construct a surrogate model by name.

    ``rng``, ``tree_particles`` and ``tree_backend`` only affect the dynamic
    tree (the other models are deterministic given their training data and
    have no compiled kernels); they are accepted for every name so callers
    can treat the model choice as a pure string axis.
    """
    return _MODEL_REGISTRY[_resolve_model_name(name)](rng, tree_particles, tree_backend)


def model_factory(
    name: str, tree_particles: int = 30, tree_backend: str = "numpy"
) -> Callable[[np.random.Generator], SurrogateModel]:
    """An :class:`~repro.core.learner.ActiveLearner`-compatible factory for ``name``."""
    key = _resolve_model_name(name)
    return lambda rng: _MODEL_REGISTRY[key](rng, tree_particles, tree_backend)
