"""Simple baseline surrogate models.

These are not part of the paper's method; they exist to sanity-check the
learning pipeline (a model that cannot learn anything should lose to the
dynamic tree) and to provide cheap stand-ins in tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.spatial.distance import cdist

from .base import Prediction, SurrogateModel

__all__ = ["ConstantMeanModel", "KNNRegressor"]


class ConstantMeanModel(SurrogateModel):
    """Predicts the global mean of everything seen so far.

    The predictive variance is the global sample variance, so the model is
    maximally uncertain everywhere in the same way — active learning gains
    nothing from it, which makes it a useful control.
    """

    def __init__(self) -> None:
        self._values: List[float] = []

    @property
    def training_size(self) -> int:
        return len(self._values)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        y = np.asarray(targets, dtype=float).ravel()
        if y.size == 0:
            raise ValueError("fit() needs at least one observation")
        self._values = [float(v) for v in y]

    def update(self, features: np.ndarray, target: float) -> None:
        self._values.append(float(target))

    def predict(self, features: np.ndarray) -> Prediction:
        if not self._values:
            raise RuntimeError("the model has no training data yet")
        X = np.atleast_2d(np.asarray(features, dtype=float))
        values = np.asarray(self._values)
        mean = float(values.mean())
        variance = float(values.var(ddof=1)) if values.size > 1 else 1.0
        return Prediction(
            mean=np.full(X.shape[0], mean), variance=np.full(X.shape[0], max(variance, 1e-18))
        )


class KNNRegressor(SurrogateModel):
    """k-nearest-neighbour regression with neighbourhood variance.

    Prediction is the mean of the ``k`` nearest training targets; the
    variance is the neighbourhood sample variance plus a distance-dependent
    term so that far-away queries are reported as uncertain.
    """

    def __init__(self, k: int = 5, distance_weight: float = 1.0) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self._k = k
        self._distance_weight = distance_weight
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    @property
    def training_size(self) -> int:
        return 0 if self._y is None else int(self._y.shape[0])

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        X = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and targets disagree on the number of rows")
        if X.shape[0] == 0:
            raise ValueError("fit() needs at least one observation")
        self._X = X.copy()
        self._y = y.copy()

    def update(self, features: np.ndarray, target: float) -> None:
        x = np.atleast_2d(np.asarray(features, dtype=float))
        if self._X is None or self._y is None:
            self._X = x.copy()
            self._y = np.array([float(target)])
        else:
            self._X = np.vstack([self._X, x])
            self._y = np.append(self._y, float(target))

    def predict(self, features: np.ndarray) -> Prediction:
        if self._X is None or self._y is None:
            raise RuntimeError("the model has no training data yet")
        Xs = np.atleast_2d(np.asarray(features, dtype=float))
        distances = cdist(Xs, self._X)
        k = min(self._k, self._X.shape[0])
        order = np.argsort(distances, axis=1)[:, :k]
        neighbour_targets = self._y[order]
        mean = neighbour_targets.mean(axis=1)
        if k > 1:
            variance = neighbour_targets.var(axis=1, ddof=1)
        else:
            variance = np.zeros(Xs.shape[0])
        nearest = np.take_along_axis(distances, order[:, :1], axis=1).ravel()
        variance = variance + self._distance_weight * nearest ** 2 + 1e-18
        return Prediction(mean=mean, variance=variance)
