"""Backend-dispatched kernels for the batched SMC update.

The batched update path of :class:`~repro.models.dynamic_tree.DynamicTreeRegressor`
funnels its per-particle inner loops through three kernels:

* **route_all** — route one feature vector through every particle at once
  over the concatenated :class:`~repro.models.flat_tree.FlatForest`
  segment arrays (the reweight/resample front-end and the stay-patch id
  lookup);
* **reweight_log_weights** — the fused gather + Student-t log-pdf
  accumulation over :class:`~repro.models.leaf.LeafCacheArrays` rows;
* **grow_scores** — the fused candidate scan: given the padded
  partition sums and per-count NIG term tables, score every candidate
  split of every particle and pick each particle's best.

Each kernel exists in up to three flavours, selected by
``DynamicTreeConfig(backend=...)`` through :func:`get_kernels`:

``"numpy"``
    Pure NumPy with *scalar* ``math`` transcendentals (a ``math.log`` /
    ``math.log1p`` map over the array): bit-identical to the
    ``vectorized=False`` reference path.  IEEE basic operations (add,
    subtract, multiply, divide) are correctly rounded, so vectorizing
    them is exact; only the transcendentals differ between ``np`` and
    ``math`` (SIMD implementations round ~1e-4 of inputs differently),
    hence the scalar map.
``"numba"``
    ``@njit(cache=True)`` loops using ``math`` transcendentals (libm,
    the same functions CPython's ``math`` module calls) — expected
    bit-identical to ``"numpy"``.  When numba is not installed this
    backend silently falls back to the ``"numpy"`` kernels, so every
    entry point works without the optional dependency.
``"numba-fast"``
    The tolerance-tested mode: with numba present it reuses the jitted
    exact kernels; without numba it substitutes ``np.log``/``np.log1p``
    for the scalar maps.  Scores may differ from the reference in the
    last ulp, which can fork sampled trajectories — callers opting in
    accept statistical rather than bitwise equivalence (see
    ``docs/architecture.md``).

Every helper here is import-safe without numba: the jit decorators are
only applied when the import succeeds, and any failure during kernel
definition degrades to the NumPy implementations.
"""

from __future__ import annotations

import math
from typing import Callable, NamedTuple, Tuple

import numpy as np

__all__ = [
    "BACKENDS",
    "NUMBA_AVAILABLE",
    "Kernels",
    "get_kernels",
    "nig_beta_n",
    "route_all_numpy",
    "route_update_numpy",
]

BACKENDS = ("numpy", "numba", "numba-fast")

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:
    njit = None
    NUMBA_AVAILABLE = False


# --------------------------------------------------------------- exact maps


def log_map_exact(values: np.ndarray) -> np.ndarray:
    """``math.log`` over a 1-D array, bit-identical to a scalar loop."""
    return np.fromiter(
        map(math.log, values.tolist()), dtype=float, count=values.shape[0]
    )


def log1p_map_exact(values: np.ndarray) -> np.ndarray:
    """``math.log1p`` over a 1-D array, bit-identical to a scalar loop."""
    return np.fromiter(
        map(math.log1p, values.tolist()), dtype=float, count=values.shape[0]
    )


def _log_fast(values: np.ndarray) -> np.ndarray:
    return np.log(values)


def _log1p_fast(values: np.ndarray) -> np.ndarray:
    return np.log1p(values)


# ----------------------------------------------------------------- routing


def route_all_numpy(
    split_dim: np.ndarray,
    split_value: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    leaf_slot: np.ndarray,
    roots: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """Global leaf ids of one row routed through every tree of a forest.

    Level-synchronous descent over the concatenated segment arrays: all
    particles still sitting on an internal node are advanced together,
    so the loop count is the deepest particle's depth instead of
    ``n_particles`` Python descents.
    """
    nodes = roots.copy()
    active = np.flatnonzero(split_dim[nodes] >= 0)
    while active.size:
        current = nodes[active]
        dims = split_dim[current]
        go_left = x[dims] <= split_value[current]
        nodes[active] = np.where(go_left, left[current], right[current])
        still_internal = split_dim[nodes[active]] >= 0
        active = active[still_internal]
    return leaf_slot[nodes]


def route_update_numpy(
    split_dim: np.ndarray,
    split_value: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    leaf_slot: np.ndarray,
    roots: np.ndarray,
    x: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`route_all_numpy` plus the update path's structural context.

    Returns ``(leaf_ids, leaf_nodes, parent_nodes, depths)``: the global
    leaf id and *node* index each particle lands on, the node index of
    that leaf's parent (``-1`` for root-leaves) and the descent depth.
    The propagate phase derives the prune sibling and the tree-prior
    depth terms from these instead of re-walking ``_Node`` objects.
    """
    nodes = roots.copy()
    parents = np.full(roots.shape[0], -1, dtype=np.intp)
    depths = np.zeros(roots.shape[0], dtype=np.intp)
    active = np.flatnonzero(split_dim[nodes] >= 0)
    while active.size:
        current = nodes[active]
        dims = split_dim[current]
        go_left = x[dims] <= split_value[current]
        parents[active] = current
        nodes[active] = np.where(go_left, left[current], right[current])
        depths[active] += 1
        still_internal = split_dim[nodes[active]] >= 0
        active = active[still_internal]
    return leaf_slot[nodes], nodes, parents, depths


# ---------------------------------------------------------------- reweight


def _make_reweight_numpy(log1p_array: Callable[[np.ndarray], np.ndarray]):
    def reweight_log_weights(
        cache_data: np.ndarray, leaf_ids: np.ndarray, y: float
    ) -> np.ndarray:
        """Student-t log-pdf of ``y`` under every particle's located leaf.

        ``cache_data`` rows follow the :class:`~repro.models.leaf.LeafCacheArrays`
        layout; the arithmetic mirrors
        ``GaussianLeafModel.predictive_logpdf`` exactly (basic ops are
        correctly rounded, the ``log1p`` flavour is the backend's).
        """
        rows = cache_data[leaf_ids]
        z_sq = (y - rows[:, 0]) ** 2 / rows[:, 3]
        return rows[:, 5] - rows[:, 4] * log1p_array(z_sq)

    return reweight_log_weights


# --------------------------------------------------------------- NIG terms


def nig_beta_n(
    counts: np.ndarray,
    totals: np.ndarray,
    total_sqs: np.ndarray,
    kappa_n: np.ndarray,
    prior_beta: float,
    prior_kappa: float,
    prior_mean: float,
) -> np.ndarray:
    """Vectorized posterior ``beta_n``, grouped exactly like the scalar path.

    Mirrors ``LMLCache.log_marginal_likelihood`` /
    ``GaussianLeafModel.posterior``::

        mean = total / n
        sum_sq_dev = max(total_sq - n * mean * mean, 0.0)
        beta_n = prior.beta + 0.5 * sum_sq_dev
                 + 0.5 * (prior.kappa * n * (mean - prior.mean) ** 2) / kappa_n

    Only IEEE basic operations appear, so the array evaluation is
    bit-identical to the scalar one for every element (``np.maximum``'s
    signed-zero choice cannot surface: the value is only ever *added*).
    """
    mean = totals / counts
    sum_sq_dev = np.maximum(total_sqs - counts * mean * mean, 0.0)
    return (prior_beta + 0.5 * sum_sq_dev) + (
        0.5 * ((prior_kappa * counts) * ((mean - prior_mean) ** 2))
    ) / kappa_n


# -------------------------------------------------------------- grow scores


def _make_grow_scores_numpy(log_array: Callable[[np.ndarray], np.ndarray]):
    def grow_scores(
        n_left: np.ndarray,
        n_points: np.ndarray,
        sums: np.ndarray,
        min_leaf: int,
        n_candidates: int,
        kappa_tab: np.ndarray,
        alpha_tab: np.ndarray,
        head_tab: np.ndarray,
        mid_tab: np.ndarray,
        tail_tab: np.ndarray,
        prior_beta: float,
        prior_kappa: float,
        prior_mean: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Best candidate split per particle from padded partition sums.

        ``n_left`` is ``(P, K)`` left-side counts (0 on padding slots, so
        they are invalid whenever ``min_leaf >= 1``), ``n_points`` the
        ``(P,)`` per-particle totals, ``sums`` the ``(P, 2, 2K)`` padded
        sum/sum-of-squares block (left slots ``0..K-1``, right slots
        ``K..2K-1``).  Returns ``(best_slot, left_lml, right_lml)`` with
        ``best_slot[p] == -1`` when particle ``p`` has no valid candidate.
        Ties keep the first maximum, like the scalar ``score > best`` scan.
        """
        count = n_points.shape[0]
        best_slot = np.full(count, -1, dtype=np.intp)
        best_left = np.zeros(count)
        best_right = np.zeros(count)
        n_right = n_points[:, None] - n_left
        valid = (n_left >= min_leaf) & (n_right >= min_leaf)
        pi, ci = np.nonzero(valid)
        if not pi.size:
            return best_slot, best_left, best_right
        counts2 = np.concatenate([n_left[pi, ci], n_right[pi, ci]])
        totals2 = np.concatenate([sums[pi, 0, ci], sums[pi, 0, ci + n_candidates]])
        sqs2 = np.concatenate([sums[pi, 1, ci], sums[pi, 1, ci + n_candidates]])
        kappa2 = kappa_tab[counts2]
        alpha2 = alpha_tab[counts2]
        beta2 = nig_beta_n(
            counts2, totals2, sqs2, kappa2, prior_beta, prior_kappa, prior_mean
        )
        lml2 = ((head_tab[counts2] - alpha2 * log_array(beta2)) + mid_tab[counts2]) - (
            tail_tab[counts2]
        )
        left_lml = lml2[: pi.size]
        right_lml = lml2[pi.size :]
        score_matrix = np.full(n_left.shape, -np.inf)
        score_matrix[pi, ci] = left_lml + right_lml
        left_matrix = np.zeros(n_left.shape)
        right_matrix = np.zeros(n_left.shape)
        left_matrix[pi, ci] = left_lml
        right_matrix[pi, ci] = right_lml
        rows = np.arange(count)
        best_c = np.argmax(score_matrix, axis=1)
        has_best = score_matrix[rows, best_c] > -np.inf
        best_slot[has_best] = best_c[has_best]
        best_left[has_best] = left_matrix[rows, best_c][has_best]
        best_right[has_best] = right_matrix[rows, best_c][has_best]
        return best_slot, best_left, best_right

    return grow_scores


# ------------------------------------------------------------ numba kernels

_NUMBA_KERNELS = None
if NUMBA_AVAILABLE:  # pragma: no cover - requires the optional extra
    try:

        @njit(cache=True)
        def _route_all_nb(split_dim, split_value, left, right, leaf_slot, roots, x):
            count = roots.shape[0]
            out = np.empty(count, dtype=np.intp)
            for p in range(count):
                node = roots[p]
                dim = split_dim[node]
                while dim >= 0:
                    if x[dim] <= split_value[node]:
                        node = left[node]
                    else:
                        node = right[node]
                    dim = split_dim[node]
                out[p] = leaf_slot[node]
            return out

        @njit(cache=True)
        def _route_update_nb(
            split_dim, split_value, left, right, leaf_slot, roots, x
        ):
            count = roots.shape[0]
            gids = np.empty(count, dtype=np.intp)
            nodes = np.empty(count, dtype=np.intp)
            parents = np.empty(count, dtype=np.intp)
            depths = np.empty(count, dtype=np.intp)
            for p in range(count):
                node = roots[p]
                parent = -1
                depth = 0
                dim = split_dim[node]
                while dim >= 0:
                    parent = node
                    if x[dim] <= split_value[node]:
                        node = left[node]
                    else:
                        node = right[node]
                    depth += 1
                    dim = split_dim[node]
                gids[p] = leaf_slot[node]
                nodes[p] = node
                parents[p] = parent
                depths[p] = depth
            return gids, nodes, parents, depths

        @njit(cache=True)
        def _log_map_nb(values):
            out = np.empty(values.shape[0])
            for i in range(values.shape[0]):
                out[i] = math.log(values[i])
            return out

        @njit(cache=True)
        def _log1p_map_nb(values):
            out = np.empty(values.shape[0])
            for i in range(values.shape[0]):
                out[i] = math.log1p(values[i])
            return out

        @njit(cache=True)
        def _reweight_nb(cache_data, leaf_ids, y):
            count = leaf_ids.shape[0]
            out = np.empty(count)
            for i in range(count):
                row = leaf_ids[i]
                z = y - cache_data[row, 0]
                z_sq = z ** 2 / cache_data[row, 3]
                out[i] = cache_data[row, 5] - cache_data[row, 4] * math.log1p(z_sq)
            return out

        @njit(cache=True)
        def _grow_scores_nb(
            n_left,
            n_points,
            sums,
            min_leaf,
            n_candidates,
            kappa_tab,
            alpha_tab,
            head_tab,
            mid_tab,
            tail_tab,
            prior_beta,
            prior_kappa,
            prior_mean,
        ):
            count = n_points.shape[0]
            best_slot = np.full(count, -1, dtype=np.intp)
            best_left = np.zeros(count)
            best_right = np.zeros(count)
            for p in range(count):
                total_points = n_points[p]
                best_score = -np.inf
                found = False
                for c in range(n_left.shape[1]):
                    count_left = n_left[p, c]
                    count_right = total_points - count_left
                    if count_left < min_leaf or count_right < min_leaf:
                        continue
                    kappa_n = kappa_tab[count_left]
                    mean = sums[p, 0, c] / count_left
                    sum_sq_dev = max(
                        sums[p, 1, c] - count_left * mean * mean, 0.0
                    )
                    beta_n = (
                        prior_beta
                        + 0.5 * sum_sq_dev
                        + 0.5
                        * (prior_kappa * count_left * (mean - prior_mean) ** 2)
                        / kappa_n
                    )
                    left_lml = (
                        (head_tab[count_left] - alpha_tab[count_left] * math.log(beta_n))
                        + mid_tab[count_left]
                    ) - tail_tab[count_left]
                    slot = n_candidates + c
                    kappa_n = kappa_tab[count_right]
                    mean = sums[p, 0, slot] / count_right
                    sum_sq_dev = max(
                        sums[p, 1, slot] - count_right * mean * mean, 0.0
                    )
                    beta_n = (
                        prior_beta
                        + 0.5 * sum_sq_dev
                        + 0.5
                        * (prior_kappa * count_right * (mean - prior_mean) ** 2)
                        / kappa_n
                    )
                    right_lml = (
                        (head_tab[count_right] - alpha_tab[count_right] * math.log(beta_n))
                        + mid_tab[count_right]
                    ) - tail_tab[count_right]
                    score = left_lml + right_lml
                    if not found or score > best_score:
                        found = True
                        best_score = score
                        best_slot[p] = c
                        best_left[p] = left_lml
                        best_right[p] = right_lml
            return best_slot, best_left, best_right

        _NUMBA_KERNELS = {
            "route_all": _route_all_nb,
            "route_update": _route_update_nb,
            "log_array": _log_map_nb,
            "log1p_array": _log1p_map_nb,
            "reweight_log_weights": _reweight_nb,
            "grow_scores": _grow_scores_nb,
        }
    except Exception:  # pragma: no cover - defensive: degrade to NumPy
        _NUMBA_KERNELS = None


# ---------------------------------------------------------------- dispatch


class Kernels(NamedTuple):
    """The kernel set one backend resolves to.

    ``jitted`` reports whether numba dispatchers back the kernels;
    ``exact`` whether the transcendentals follow the bit-identity
    contract (only ``numba-fast`` without numba gives it up).
    """

    backend: str
    jitted: bool
    exact: bool
    route_all: Callable[..., np.ndarray]
    route_update: Callable[
        ..., Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ]
    log_array: Callable[[np.ndarray], np.ndarray]
    log1p_array: Callable[[np.ndarray], np.ndarray]
    reweight_log_weights: Callable[..., np.ndarray]
    grow_scores: Callable[..., Tuple[np.ndarray, np.ndarray, np.ndarray]]


def _numpy_kernels(backend: str, exact: bool) -> Kernels:
    log_array = log_map_exact if exact else _log_fast
    log1p_array = log1p_map_exact if exact else _log1p_fast
    return Kernels(
        backend=backend,
        jitted=False,
        exact=exact,
        route_all=route_all_numpy,
        route_update=route_update_numpy,
        log_array=log_array,
        log1p_array=log1p_array,
        reweight_log_weights=_make_reweight_numpy(log1p_array),
        grow_scores=_make_grow_scores_numpy(log_array),
    )


def _numba_kernels(backend: str) -> Kernels:  # pragma: no cover - optional extra
    assert _NUMBA_KERNELS is not None
    return Kernels(
        backend=backend,
        jitted=True,
        exact=True,
        route_all=_NUMBA_KERNELS["route_all"],
        route_update=_NUMBA_KERNELS["route_update"],
        log_array=_NUMBA_KERNELS["log_array"],
        log1p_array=_NUMBA_KERNELS["log1p_array"],
        reweight_log_weights=_NUMBA_KERNELS["reweight_log_weights"],
        grow_scores=_NUMBA_KERNELS["grow_scores"],
    )


_KERNEL_CACHE: dict = {}


def get_kernels(backend: str, fast: bool = False) -> Kernels:
    """Resolve a ``DynamicTreeConfig.backend`` name to its kernel set.

    ``"numba"`` and ``"numba-fast"`` fall back to NumPy implementations
    (exact and fast flavours respectively) when numba is unavailable, so
    the choice is a performance knob, never an import-time requirement.

    ``fast=True`` (``DynamicTreeConfig(float_mode="fast")``) drops the
    bit-identity contract on the non-jitted kernels: the scalar ``math``
    transcendental maps are replaced with ``np.log``/``np.log1p``, which
    round ~1e-4 of inputs differently (tolerance-tested rather than
    bit-exact).  Jitted kernels already use libm at full speed, so
    ``fast`` leaves them unchanged.
    """
    key = (backend, fast)
    kernels = _KERNEL_CACHE.get(key)
    if kernels is not None:
        return kernels
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if _NUMBA_KERNELS is not None and backend != "numpy":  # pragma: no cover
        kernels = _numba_kernels(backend)
    else:
        exact = not fast and backend != "numba-fast"
        kernels = _numpy_kernels(backend, exact=exact)
    _KERNEL_CACHE[key] = kernels
    return kernels
