"""Gaussian-process regression baseline.

Section 3.2 of the paper notes that the "collective wisdom" for regression
with uncertainty estimates would be a Gaussian process, but rejects it for
the active-learning loop because exact inference is O(n³) per rebuild.  We
implement the GP anyway: it serves as an ablation surrogate (dynamic tree
vs. GP), as a reference implementation for the ALC acquisition (the GP has
the textbook closed form), and as a demonstration of the cost argument (the
model-update benchmark shows the cubic blow-up).

The kernel is a squared-exponential (RBF) with a constant signal variance
and observation noise; hyper-parameters are set by simple, robust heuristics
(median-distance lengthscale, data-variance amplitude) rather than marginal
likelihood optimisation — adequate for the normalised, low-dimensional SPAPT
feature spaces and entirely deterministic.

Sequential updates use a rank-1 Cholesky extension: between (periodic) full
refits the hyper-parameters are frozen and absorbing one observation only
appends a row to the existing factor — O(n²) instead of the O(n³)
``cho_factor`` plus hyper-parameter re-estimation the naive implementation
pays per observation.  This makes the Section-3.2 cost comparison against
the dynamic tree a measured quantity rather than an asserted one: the GP's
per-update cost still grows quadratically (and each refit cubically) where
the tree's stays near-constant, but the comparison is no longer inflated by
gratuitous refits.  ``refit_interval`` controls the trade-off;
``refit_interval=1`` restores the always-refit behaviour exactly.

The mirror image, a rank-1 Cholesky *downdate*, removes the oldest
observation in O(n²): deleting the first row/column of ``K = L Lᵀ`` with
``L = [[l₁₁, 0], [l₂₁, L₂₂]]`` leaves ``K₂₂ = L₂₂ L₂₂ᵀ + l₂₁ l₂₁ᵀ``, so the
new factor is the classic rank-1 *update* of the trailing submatrix by the
pivot column — a sequence of Givens-style rotations that, unlike a true
downdate, can never go indefinite.  ``window_size`` combines the two into a
sliding-window GP: each :meth:`update` extends the factor with the new
observation and forgets the oldest one, so the model tracks drift-noise
benchmarks with bounded memory and O(w²) per step instead of O(w³).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular
from scipy.spatial.distance import cdist

from .base import Prediction, SurrogateModel

__all__ = ["GaussianProcessRegressor"]


class GaussianProcessRegressor(SurrogateModel):
    """Exact GP regression with an RBF kernel and heuristic hyper-parameters.

    ``refit_interval`` is the number of sequential :meth:`update` calls
    absorbed by the rank-1 Cholesky extension (with hyper-parameters frozen
    at their last-refit values) before the next full refit re-estimates the
    heuristics and refactors from scratch.

    ``window_size`` turns the model into a sliding-window GP: whenever the
    training set exceeds the window, the oldest observations are forgotten
    through the rank-1 downdate (:meth:`forget_oldest`), keeping per-update
    cost bounded and letting the posterior track a drifting target.
    """

    def __init__(
        self,
        lengthscale: Optional[float] = None,
        signal_variance: Optional[float] = None,
        noise_variance: Optional[float] = None,
        jitter: float = 1e-8,
        refit_interval: int = 25,
        window_size: Optional[int] = None,
    ) -> None:
        if refit_interval < 1:
            raise ValueError("refit_interval must be at least 1")
        if window_size is not None and window_size < 2:
            raise ValueError("window_size must be at least 2 when given")
        self._lengthscale_override = lengthscale
        self._signal_override = signal_variance
        self._noise_override = noise_variance
        self._jitter = jitter
        self._refit_interval = refit_interval
        self._window_size = window_size
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean_y = 0.0
        self._lengthscale = 1.0
        self._signal = 1.0
        self._noise = 0.1
        # Lower-triangular Cholesky factor of K + (noise + jitter) I, kept
        # as a plain array so the rank-1 extension can append rows.
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._stale = True
        self._updates_since_refit = 0

    # ------------------------------------------------------------- training

    @property
    def training_size(self) -> int:
        return 0 if self._y is None else int(self._y.shape[0])

    @property
    def window_size(self) -> Optional[int]:
        return self._window_size

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        X = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and targets disagree on the number of rows")
        if X.shape[0] == 0:
            raise ValueError("fit() needs at least one observation")
        if self._window_size is not None and X.shape[0] > self._window_size:
            # A sliding-window model only ever holds the freshest window.
            X = X[-self._window_size :]
            y = y[-self._window_size :]
        self._X = X.copy()
        self._y = y.copy()
        self._stale = True

    def update(self, features: np.ndarray, target: float) -> None:
        """Absorb one observation.

        While a current factor exists and the refit interval has not
        elapsed, the factor is extended in place (O(n²)); otherwise the
        model is marked stale and the next prediction pays a full refit.
        """
        x = np.atleast_2d(np.asarray(features, dtype=float))
        if self._X is None or self._y is None:
            self._X = x.copy()
            self._y = np.array([float(target)])
            self._stale = True
            return
        if x.shape[1] != self._X.shape[1]:
            raise ValueError("feature dimension mismatch")
        if (
            not self._stale
            and self._chol is not None
            # interval - 1 extensions, then one full refit: every
            # refit_interval-th observation pays the O(n³) refresh, and
            # refit_interval=1 restores always-refit behaviour exactly.
            and self._updates_since_refit < self._refit_interval - 1
            and self._extend_factor(x, float(target))
        ):
            self._updates_since_refit += 1
            self._enforce_window()
            return
        self._X = np.vstack([self._X, x])
        self._y = np.append(self._y, float(target))
        self._stale = True
        self._enforce_window()

    def _enforce_window(self) -> None:
        if self._window_size is None:
            return
        while self.training_size > self._window_size:
            self.forget_oldest()

    def forget_oldest(self) -> None:
        """Remove the oldest observation from the training set.

        With a current factor this is the rank-1 Cholesky downdate
        (O(n²), hyper-parameters stay frozen, exactly mirroring
        :meth:`_extend_factor`); a stale model simply drops the row and
        lets the next prediction refit.  Sliding-window updates call this
        automatically; it is public so drift-aware callers can also shed
        stale history explicitly.
        """
        if self._X is None or self._y is None or self.training_size == 0:
            raise RuntimeError("the model has no observations to forget")
        if self.training_size == 1:
            self._X = None
            self._y = None
            self._chol = None
            self._alpha = None
            self._stale = True
            return
        if not self._stale and self._chol is not None and self._downdate_factor():
            return
        self._X = self._X[1:]
        self._y = self._y[1:]
        self._stale = True

    # ------------------------------------------------------------ internals

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        sq = cdist(A, B, metric="sqeuclidean")
        return self._signal * np.exp(-0.5 * sq / (self._lengthscale ** 2))

    def _extend_factor(self, x: np.ndarray, target: float) -> bool:
        """Rank-1 extension of the Cholesky factor with one new row.

        For ``K' = [[K, k], [kᵀ, κ]]`` with ``L Lᵀ = K``, the extended
        factor is ``[[L, 0], [lᵀ, d]]`` where ``L l = k`` and
        ``d² = κ - l·l`` — one triangular solve, O(n²).  Returns ``False``
        (leaving the model stale for a full refit) if the Schur complement
        ``d²`` is numerically non-positive, which can only happen when the
        new point nearly duplicates an existing one.
        """
        assert self._X is not None and self._y is not None and self._chol is not None
        L = self._chol
        n = L.shape[0]
        k = self._kernel(self._X, x)[:, 0]
        kappa = self._signal + self._noise + self._jitter
        ell = solve_triangular(L, k, lower=True, check_finite=False)
        d_sq = kappa - float(ell @ ell)
        if d_sq <= self._jitter * 1e-3:
            return False
        extended = np.zeros((n + 1, n + 1))
        extended[:n, :n] = L
        extended[n, :n] = ell
        extended[n, n] = np.sqrt(d_sq)
        self._chol = extended
        self._X = np.vstack([self._X, x])
        self._y = np.append(self._y, float(target))
        # The factor depends only on the kernel, not on the centring, so the
        # data mean is re-estimated every update even while the kernel
        # hyper-parameters stay frozen; the posterior weights are two O(n²)
        # triangular solves against the extended factor.
        self._mean_y = float(self._y.mean())
        centred = self._y - self._mean_y
        self._alpha = cho_solve((self._chol, True), centred)
        return True

    def _downdate_factor(self) -> bool:
        """Rank-1 downdate: drop the factor's first row/column in O(n²).

        Partition ``L = [[l₁₁, 0], [l₂₁, L₂₂]]``.  Deleting observation 0
        from ``K = L Lᵀ`` leaves ``K₂₂ = L₂₂ L₂₂ᵀ + l₂₁ l₂₁ᵀ``, so the new
        factor is the rank-1 *update* of ``L₂₂`` by the pivot column
        ``l₂₁`` — computed with the classic hyperbolic-free rotation
        recurrence.  Because it is an update (adding ``l₂₁ l₂₁ᵀ``, never
        subtracting), the recurrence cannot drive the matrix indefinite;
        ``False`` is returned only if the incoming factor's diagonal is
        already degenerate (then the caller falls back to a full refit).
        Like the extension, the posterior mean and weights are recomputed
        against the new factor while the kernel hyper-parameters stay
        frozen until the next refit.
        """
        assert self._X is not None and self._y is not None and self._chol is not None
        L = self._chol
        n = L.shape[0]
        # cho_factor leaves garbage above the diagonal; the rotation
        # recurrence reads whole columns, so take the clean lower triangle.
        trailing = np.tril(L[1:, 1:]).copy()
        pivot = L[1:, 0].astype(float).copy()
        m = n - 1
        for k in range(m):
            diag = trailing[k, k]
            if not np.isfinite(diag) or diag <= 0.0:
                return False
            r = float(np.hypot(diag, pivot[k]))
            c = r / diag
            s = pivot[k] / diag
            trailing[k, k] = r
            if k + 1 < m:
                trailing[k + 1 :, k] = (trailing[k + 1 :, k] + s * pivot[k + 1 :]) / c
                pivot[k + 1 :] = c * pivot[k + 1 :] - s * trailing[k + 1 :, k]
        if not np.all(np.isfinite(trailing)):
            return False
        self._chol = trailing
        self._X = self._X[1:]
        self._y = self._y[1:]
        self._mean_y = float(self._y.mean())
        centred = self._y - self._mean_y
        self._alpha = cho_solve((self._chol, True), centred)
        return True

    def _refresh(self) -> None:
        if not self._stale:
            return
        if self._X is None or self._y is None:
            raise RuntimeError("the model has no training data yet")
        X, y = self._X, self._y
        n = X.shape[0]
        self._mean_y = float(y.mean())
        centred = y - self._mean_y
        if self._lengthscale_override is not None:
            self._lengthscale = float(self._lengthscale_override)
        else:
            if n > 1:
                distances = cdist(X, X)
                positive = distances[distances > 0]
                self._lengthscale = float(np.median(positive)) if positive.size else 1.0
            else:
                self._lengthscale = 1.0
        data_variance = float(centred.var()) if n > 1 else max(abs(self._mean_y), 1.0)
        data_variance = max(data_variance, 1e-12)
        self._signal = (
            float(self._signal_override)
            if self._signal_override is not None
            else data_variance
        )
        self._noise = (
            float(self._noise_override)
            if self._noise_override is not None
            else max(0.05 * data_variance, 1e-10)
        )
        K = self._kernel(X, X) + (self._noise + self._jitter) * np.eye(n)
        factor, _ = cho_factor(K, lower=True)
        # cho_factor leaves unspecified values above the diagonal.  That is
        # fine: every consumer (cho_solve/solve_triangular with lower=True,
        # and the rank-1 extension, which only reads rows into another
        # lower-triangle-consumed matrix) ignores the upper triangle.
        self._chol = factor
        self._alpha = cho_solve((self._chol, True), centred)
        self._stale = False
        self._updates_since_refit = 0

    # ----------------------------------------------------------- prediction

    def predict(self, features: np.ndarray) -> Prediction:
        self._refresh()
        assert self._X is not None and self._alpha is not None and self._chol is not None
        Xs = np.atleast_2d(np.asarray(features, dtype=float))
        K_star = self._kernel(Xs, self._X)
        mean = self._mean_y + K_star @ self._alpha
        v = cho_solve((self._chol, True), K_star.T)
        prior_var = self._signal
        variance = prior_var - np.einsum("ij,ji->i", K_star, v) + self._noise
        variance = np.maximum(variance, 1e-18)
        return Prediction(mean=mean, variance=variance)

    def expected_average_variance(
        self, candidates: np.ndarray, reference: np.ndarray
    ) -> np.ndarray:
        """Closed-form ALC for a GP.

        Adding an observation at candidate ``c`` reduces the posterior
        variance at a reference point ``r`` by
        ``cov(r, c)^2 / (var(c) + noise)`` where ``cov`` and ``var`` are the
        *posterior* covariance and variance.  The returned score is the
        average variance remaining over the reference set for each
        candidate — the quantity Algorithm 1 minimises.
        """
        self._refresh()
        assert self._X is not None and self._chol is not None
        C = np.atleast_2d(np.asarray(candidates, dtype=float))
        R = np.atleast_2d(np.asarray(reference, dtype=float))
        K_rc = self._kernel(R, C)
        K_rx = self._kernel(R, self._X)
        K_cx = self._kernel(C, self._X)
        v_c = cho_solve((self._chol, True), K_cx.T)
        # Posterior covariance between every reference and candidate point.
        post_cov = K_rc - K_rx @ v_c
        post_var_c = self._signal - np.einsum("ij,ji->i", K_cx, v_c)
        post_var_c = np.maximum(post_var_c, 1e-18)
        post_var_r = self._signal - np.einsum(
            "ij,ji->i", K_rx, cho_solve((self._chol, True), K_rx.T)
        )
        post_var_r = np.maximum(post_var_r, 1e-18)
        reductions = post_cov ** 2 / (post_var_c + self._noise)[None, :]
        remaining = post_var_r[:, None] - reductions
        remaining = np.maximum(remaining, 0.0)
        return remaining.mean(axis=0) + self._noise
