"""Dynamic trees for sequential regression with uncertainty.

This is a from-scratch implementation of the model the paper uses (via the
R ``dynaTree`` package): the *dynamic tree* of Taddy, Gramacy & Polson
(2011).  A dynamic tree is a Bayesian regression tree whose posterior is
tracked by a set of particles; when a new observation ``(x, y)`` arrives,
each particle applies one of three *local* moves to the leaf containing
``x`` — **stay** (leave the structure unchanged), **grow** (split the leaf
in two) or **prune** (collapse the leaf's parent back into a leaf) — chosen
stochastically according to its posterior weight (Figure 4 of the paper).
Particles are reweighted by how well they predicted ``y`` and resampled when
the effective sample size degrades.

The properties the paper relies on are all preserved here:

* **sequential updates** — absorbing one observation costs O(depth) plus a
  constant amount of sufficient-statistics work per particle, so there is no
  model rebuild inside the active-learning loop;
* **predictive uncertainty** — every prediction is a mixture (over
  particles) of Student-t posterior predictive distributions, giving a
  calibrated variance for the ALM/ALC acquisition functions;
* **noise robustness** — leaves carry full conjugate posteriors rather than
  point estimates, and structural moves are scored by marginal likelihood,
  so a single noisy observation cannot commit the model to a bad split.

Leaves use the constant (Gaussian) model of :mod:`repro.models.leaf`; the
tree prior is the standard Chipman-George-McCulloch
``p_split(depth) = alpha * (1 + depth)^-beta``.

Prediction and the ALC score are served from per-particle
:class:`~repro.models.flat_tree.FlatTree` compilations — flat NumPy arrays
descended level-by-level for a whole batch of rows at once — rather than
per-row Python ``descend()`` loops.

The sequential **update** path (Algorithm 1's per-observation model update)
is batched across particles as well, which is what makes paper-scale
particle counts (5 000) tractable:

* **reweight** — the incoming ``x`` is routed through every particle's
  flat compilation (a scalar descent over plain-list navigation mirrors —
  cheaper than assembling the concatenated forest, which the update path
  never needs), and the predictive log-pdfs come from cached per-leaf
  log-pdf terms (one row read plus one scalar ``math.log1p`` per particle)
  instead of ``n_particles`` per-node Python descents;
* **resample** — the systematic resampler duplicates particles
  *copy-on-write*: duplicates share the original tree and its flat
  compilation, and nodes are cloned lazily, path-by-path, the first time a
  subsequent move actually mutates them (``_Node.shared`` marks
  possibly-shared nodes; cloning a node flags its children), so a resample
  costs O(1) per duplicate instead of a deep tree copy;
* **propagate** — the stay/grow/prune scores are computed from sufficient
  statistics through a per-prior :class:`~repro.models.leaf.LMLCache`
  (count-dependent ``lgamma``/``log`` terms memoized), the grow proposal
  scores all candidate splits with one batched masked-cumsum scan, and the
  stay moves — the overwhelming majority — are applied as a single batched
  leaf-statistics patch over the affected flat arrays; only grow/prune
  particles fall back to per-node Python mutation and recompilation.

Every floating-point operation and every RNG draw in the batched path
replays the per-particle reference implementation exactly (sequential
``cumsum`` sums, scalar ``math`` transcendentals, identical draw order), so
seeded learning curves are bit-identical between the two.  The reference
implementations are kept (``predict_reference``,
``expected_average_variance_reference`` and the per-particle update path,
all selected by ``DynamicTreeConfig(vectorized=False)``) both as executable
documentation and as the oracle for the equivalence tests.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .base import Prediction, SurrogateModel
from .compiled_kernels import BACKENDS, get_kernels, nig_beta_n
from .flat_tree import FlatForest, FlatTree, IncrementalForest
from .leaf import (
    GaussianLeafModel,
    LeafCacheArrays,
    LeafTermTables,
    LMLCache,
    NIGPrior,
    log_marginal_likelihood_from_stats,
)
from .rng_replay import GeneratorDraws, ReplayDraws

__all__ = ["DynamicTreeConfig", "DynamicTreeRegressor"]


def _sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float sum, bit-identical to a Python accumulation loop.

    ``np.sum`` uses pairwise summation, which rounds differently from the
    sequential ``+=`` loops this module's scalar reference paths (and the
    original implementation) use.  ``np.cumsum`` *is* sequential, so its last
    element reproduces the scalar accumulation exactly — keeping vectorized
    and reference trajectories bitwise identical, which matters because the
    particle moves are sampled from scores built on these sums.
    """
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


@dataclass(frozen=True)
class DynamicTreeConfig:
    """Hyper-parameters of the dynamic tree model.

    The paper uses the ``dynaTree`` defaults with 5 000 particles; the
    decision spaces are low-dimensional and the acquisition only needs
    well-ranked variances, so a few dozen particles behave almost
    identically (this is exercised by an ablation benchmark), but with the
    batched update kernel the paper's particle count is affordable too.

    ``vectorized`` selects the flat-array kernels for ``predict``,
    ``expected_average_variance`` *and* the sequential ``update`` path;
    disabling it falls back to the per-node, per-particle reference
    implementations (slow — only useful for equivalence testing).  The two
    modes produce bit-identical seeded trajectories.

    ``incremental_forest`` keeps the concatenated
    :class:`~repro.models.flat_tree.FlatForest` alive across updates and
    repairs only the particles that changed (see
    :class:`~repro.models.flat_tree.IncrementalForest`) instead of
    rebuilding it from every tree on the first predict/ALC batch after an
    update.  Both settings produce bit-identical predictions and ALC
    scores; disabling it restores the always-rebuild path (the oracle the
    incremental maintenance is equivalence-tested against).

    ``backend`` selects the kernel set the batched update dispatches to
    (see :mod:`repro.models.compiled_kernels`): ``"numpy"`` (the default,
    bit-exact), ``"numba"`` (jitted when numba is installed, silently
    falling back to the exact NumPy kernels otherwise) or ``"numba-fast"``
    (tolerance-tested: may differ from the reference in the last ulp of
    the transcendentals, which can fork sampled trajectories).

    ``float_mode`` selects between the bit-exact float contract
    (``"exact"``, the default: sequential-cumsum reductions and scalar
    ``math`` transcendental maps, bit-identical to the reference path)
    and ``"fast"`` (``np.sum``/matmul reductions and numpy SIMD
    transcendentals where bit-identity is what blocks fusion).  Fast-mode
    scores can differ from the reference in the last ulp, which may fork
    sampled trajectories at knife-edge draws; the tolerance suite pins
    the agreement (see ``docs/architecture.md``).
    """

    n_particles: int = 40
    split_alpha: float = 0.95
    split_beta: float = 2.0
    min_leaf: int = 2
    n_split_candidates: int = 12
    resample_threshold: float = 0.5
    prior_kappa: float = 0.1
    prior_alpha: float = 3.0
    vectorized: bool = True
    incremental_forest: bool = True
    backend: str = "numpy"
    float_mode: str = "exact"

    def __post_init__(self) -> None:
        if self.n_particles < 1:
            raise ValueError("n_particles must be at least 1")
        if not 0.0 < self.split_alpha < 1.0:
            raise ValueError("split_alpha must be in (0, 1)")
        if self.split_beta < 0:
            raise ValueError("split_beta cannot be negative")
        if self.min_leaf < 1:
            raise ValueError("min_leaf must be at least 1")
        if self.n_split_candidates < 1:
            raise ValueError("n_split_candidates must be at least 1")
        if not 0.0 < self.resample_threshold <= 1.0:
            raise ValueError("resample_threshold must be in (0, 1]")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.float_mode not in ("exact", "fast"):
            raise ValueError('float_mode must be "exact" or "fast"')

    def split_probability(self, depth: int) -> float:
        """CGM tree prior: probability that a node at ``depth`` is split."""
        return self.split_alpha * (1.0 + depth) ** (-self.split_beta)


class _Node:
    """One node of a particle's tree.

    A node is either internal (``split_dim``/``split_value`` set, ``left``
    and ``right`` children) or a leaf (``leaf`` model plus the indices of the
    observations it contains).

    ``shared`` marks a node that *may* be referenced by more than one
    particle (set when a resample duplicates a tree, and propagated to the
    children of any node cloned off a shared path).  Shared nodes are never
    mutated in place: the update path clones them copy-on-write the first
    time a move needs to touch them.  The flag is conservative — a node can
    stay flagged after its other referents have cloned their own paths —
    which costs at most one redundant clone, never a correctness bug.
    """

    __slots__ = (
        "depth",
        "split_dim",
        "split_value",
        "left",
        "right",
        "leaf",
        "indices",
        "shared",
    )

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.split_dim: Optional[int] = None
        self.split_value: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.leaf: Optional[GaussianLeafModel] = None
        self.indices: List[int] = []
        self.shared = False

    @property
    def is_leaf(self) -> bool:
        return self.leaf is not None

    def copy(self) -> "_Node":
        clone = _Node(self.depth)
        clone.split_dim = self.split_dim
        clone.split_value = self.split_value
        if self.leaf is not None:
            clone.leaf = self.leaf.copy()
            clone.indices = list(self.indices)
        if self.left is not None:
            clone.left = self.left.copy()
        if self.right is not None:
            clone.right = self.right.copy()
        return clone

    def clone_shallow(self) -> "_Node":
        """A private one-node clone for copy-on-write path copying.

        The clone owns its leaf state (model and index list) but keeps
        references to the original children, which become ``shared``: both
        the clone and the original node now point at them, so whichever
        particle descends into them next must clone again.
        """
        clone = _Node(self.depth)
        clone.split_dim = self.split_dim
        clone.split_value = self.split_value
        clone.left = self.left
        clone.right = self.right
        if self.leaf is not None:
            clone.leaf = self.leaf.copy()
            clone.indices = list(self.indices)
        if clone.left is not None:
            clone.left.shared = True
        if clone.right is not None:
            clone.right.shared = True
        return clone

    def descend(self, x: np.ndarray) -> "_Node":
        """The leaf whose region contains ``x``."""
        node = self
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            if x[node.split_dim] <= node.split_value:
                node = node.left
            else:
                node = node.right
        return node

    def descend_with_parent(
        self, x: np.ndarray
    ) -> Tuple["_Node", Optional["_Node"]]:
        """The leaf containing ``x`` together with its parent (``None`` at the root)."""
        parent: Optional[_Node] = None
        node = self
        while not node.is_leaf:
            parent = node
            assert node.left is not None and node.right is not None
            if x[node.split_dim] <= node.split_value:
                node = node.left
            else:
                node = node.right
        return node, parent

    def leaves(self) -> List["_Node"]:
        if self.is_leaf:
            return [self]
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()


class _GrowProposal(NamedTuple):
    """The winning candidate split of a batched grow-proposal scan.

    Carries everything :meth:`DynamicTreeRegressor._apply_grow_batched`
    needs to build the two children without re-scanning: the split itself,
    both sides' sufficient statistics and marginal likelihoods (already
    consumed by the grow score), and the boolean membership mask over the
    leaf's observations with the incoming point in the last position.
    """

    dim: int
    threshold: float
    n_left: int
    sum_left: float
    sum_sq_left: float
    left_lml: float
    n_right: int
    sum_right: float
    sum_sq_right: float
    right_lml: float
    mask: np.ndarray


class _UpdateRouting(NamedTuple):
    """Per-particle routing context of one update's reweight descent.

    Produced by the ``route_update`` kernel over the (pre-update) forest
    and threaded from :meth:`DynamicTreeRegressor._resample` into
    :meth:`DynamicTreeRegressor._propagate_all`, whose gather phase reads
    each particle's leaf and prune-sibling statistics straight from the
    forest's packed cache columns instead of re-walking ``_Node``
    objects.  After a resample the per-particle arrays are permuted to
    the post-resample particle order; ``forest`` keeps the *pre-resample*
    segment layout (the global ids index into it correctly either way).
    """

    forest: FlatForest
    local_ids: np.ndarray
    gids: np.ndarray
    nodes: np.ndarray
    parents: np.ndarray
    depths: np.ndarray


class DynamicTreeRegressor(SurrogateModel):
    """Particle-learning dynamic tree regression."""

    #: Update phases instrumented by :attr:`phase_timings`.
    _PHASES = ("reweight", "resample", "propagate-score", "propagate-apply")

    def __init__(
        self,
        config: Optional[DynamicTreeConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._config = config if config is not None else DynamicTreeConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        # Training data lives in growing arrays so partition scans and grow
        # proposals can slice it without materialising Python tuples.
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._n = 0
        self._prior: Optional[NIGPrior] = None
        self._lml: Optional[LMLCache] = None
        self._particles: List[_Node] = []
        # Lazily compiled FlatTree per particle; ``None`` marks "needs
        # recompilation" (fresh particle, or structure changed by grow/prune).
        # ``_flat_shared[i]`` marks a compilation shared copy-on-write with
        # another particle after a resample: it must be copied before the
        # next leaf patch lands on it.
        self._flat: List[Optional[FlatTree]] = []
        self._flat_shared: List[bool] = []
        # Concatenation of every particle's FlatTree.  With
        # ``incremental_forest`` the padded arrays persist across updates
        # and ``_ensure_forest`` repairs only the changed particles
        # (``_forest_stale`` records the in-place leaf patches it must
        # mirror); otherwise the concatenation is rebuilt lazily after any
        # update (the concatenated arrays snapshot the per-tree arrays, so
        # in-place leaf patches do not carry over).
        self._forest: Optional[FlatForest] = None
        self._forest_cache: Optional[IncrementalForest] = None
        # ``(slot, local leaf id) -> cache row values`` patched since the
        # last sync (latest patch wins), plus a dirty bit so predict/ALC
        # calls between updates skip the per-particle sync scan entirely.
        self._forest_stale: Dict[Tuple[int, int], Tuple[float, ...]] = {}
        self._forest_dirty = False
        # Per-depth tree-prior log terms (split probabilities only depend on
        # the frozen config, and every particle's scores reuse them).
        self._depth_cache: Dict[int, Tuple[float, float, float]] = {}
        # Count-indexed NIG term tables (see LeafTermTables) and the
        # depth-indexed tree-prior table the vectorized scoring gathers
        # from.  Accessed through getattr-guarded helpers so checkpoints
        # pickled before these attributes existed keep loading.
        self._term_tables: Optional[LeafTermTables] = None
        self._depth_arrays: Optional[np.ndarray] = None
        # Scalar-draw frontend for the batched update: a bulk RNG replay
        # when the bit generator supports it, plain Generator calls
        # otherwise.  Either way the stream is bit-identical to the
        # reference path's per-call draws.
        self._replay = ReplayDraws(self._rng)
        self._generator_draws = GeneratorDraws(self._rng)
        self._draws = self._generator_draws
        # Wall-clock accumulated per batched-update phase (see
        # ``phase_timings``); plain floats, negligible next to the work
        # they measure.
        self._phase_timings = dict.fromkeys(self._PHASES, 0.0)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Checkpoints written before the cache rows carried sufficient
        # statistics, or before compilations recorded their leaf-node
        # mapping, hold flat state the batched gather phase cannot use:
        # drop it and let the next update recompile lazily.
        flats = self.__dict__.get("_flat") or []
        stale = any(
            flat is not None
            and (
                flat.caches.data.shape[1] != LeafCacheArrays.N_COLUMNS
                or getattr(flat, "leaf_nodes", None) is None
            )
            for flat in flats
        )
        if stale:
            self._flat = [None] * len(flats)
            self._flat_shared = [False] * len(flats)
            self._forest = None
            self._forest_cache = None
            self._forest_stale = {}
            self._forest_dirty = True

    # ----------------------------------------------------------- properties

    @property
    def config(self) -> DynamicTreeConfig:
        return self._config

    def _timings(self) -> Dict[str, float]:
        """The per-phase accumulator (created on demand for old pickles)."""
        timings = getattr(self, "_phase_timings", None)
        if timings is None:
            timings = dict.fromkeys(self._PHASES, 0.0)
            self._phase_timings = timings
        return timings

    @property
    def phase_timings(self) -> Dict[str, float]:
        """Cumulative wall-clock seconds spent in each batched-update phase.

        Keys: ``"reweight"`` (forest sync + routing + predictive
        log-weights), ``"resample"`` (ESS decision + systematic
        permutation), ``"propagate-score"`` (stat gathers, grow-candidate
        tables, move scoring and the draw inversion) and
        ``"propagate-apply"`` (tree mutation + flat/forest patches).
        Only the batched update path records; :meth:`reset_phase_timings`
        zeroes the counters.
        """
        return dict(self._timings())

    def reset_phase_timings(self) -> None:
        """Zero the :attr:`phase_timings` accumulators."""
        self._phase_timings = dict.fromkeys(self._PHASES, 0.0)

    @property
    def training_size(self) -> int:
        return self._n

    @property
    def n_particles(self) -> int:
        return len(self._particles)

    def leaf_counts(self) -> List[int]:
        """Number of leaves in each particle (useful for diagnostics/tests)."""
        return [len(root.leaves()) for root in self._particles]

    def fantasy_copy(self) -> "DynamicTreeRegressor":
        """A cheap copy-on-write copy safe to ``update`` with fantasies.

        Batch acquisition (kriging believer) needs a throwaway model to
        absorb believed observations.  A deep copy clones every particle
        tree, compilation and forest — almost all of which the few fantasy
        updates never touch.  Instead the copy *shares* the particle trees
        and flat compilations copy-on-write: every node is flagged
        ``shared`` (the same authoritative invariant a resample
        establishes) and every compilation marked shared, so whichever
        model mutates a path or patches a leaf row first clones just that
        piece.  The training buffers are copied (updates append to them
        in place), the RNG is deep-copied so fantasy draws do not consume
        the real model's stream, and the memoized pure caches (LML,
        count-term tables, depth terms) stay shared — both sides only
        ever add deterministically recomputable entries.  The copy builds
        its own incremental forest lazily on first use.
        """
        clone = type(self).__new__(type(self))
        clone._config = self._config
        clone._rng = copy.deepcopy(self._rng)
        clone._X = None if self._X is None else self._X.copy()
        clone._y = None if self._y is None else self._y.copy()
        clone._n = self._n
        clone._prior = self._prior
        clone._lml = self._lml
        for root in self._particles:
            stack = [root]
            while stack:
                node = stack.pop()
                node.shared = True
                if node.left is not None:
                    stack.append(node.left)
                    stack.append(node.right)
        clone._particles = list(self._particles)
        clone._flat = list(self._flat)
        count = len(self._flat)
        self._flat_shared = [True] * count
        clone._flat_shared = [True] * count
        clone._forest = None
        clone._forest_cache = None
        clone._forest_stale = {}
        clone._forest_dirty = True
        clone._depth_cache = self._depth_cache
        clone._term_tables = getattr(self, "_term_tables", None)
        clone._depth_arrays = getattr(self, "_depth_arrays", None)
        clone._replay = ReplayDraws(clone._rng)
        clone._generator_draws = GeneratorDraws(clone._rng)
        clone._draws = clone._generator_draws
        clone._phase_timings = dict.fromkeys(self._PHASES, 0.0)
        return clone

    # ------------------------------------------------------- data management

    def _append_observation(self, x: np.ndarray, y: float) -> int:
        """Store one observation, growing the buffers geometrically."""
        if self._X is None or self._y is None:
            capacity = 64
            self._X = np.empty((capacity, x.shape[0]), dtype=float)
            self._y = np.empty(capacity, dtype=float)
        elif self._n == self._X.shape[0]:
            self._X = np.concatenate([self._X, np.empty_like(self._X)], axis=0)
            self._y = np.concatenate([self._y, np.empty_like(self._y)])
        index = self._n
        self._X[index] = x
        self._y[index] = y
        self._n = index + 1
        return index

    # ------------------------------------------------------------- training

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Seed the model, then absorb the seed observations sequentially."""
        X = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and targets disagree on the number of rows")
        if X.shape[0] == 0:
            raise ValueError("fit() needs at least one observation")
        self._X = None
        self._y = None
        self._n = 0
        self._prior = NIGPrior.from_observations(
            y, kappa=self._config.prior_kappa, alpha=self._config.prior_alpha
        )
        self._lml = LMLCache(self._prior)
        self._depth_cache = {}
        self._particles = []
        self._flat = []
        self._flat_shared = []
        self._forest = None
        self._forest_cache = None
        self._forest_stale.clear()
        self._forest_dirty = True
        for _ in range(self._config.n_particles):
            root = _Node(depth=0)
            root.leaf = GaussianLeafModel(self._prior)
            self._particles.append(root)
            self._flat.append(None)
            self._flat_shared.append(False)
        order = self._rng.permutation(X.shape[0])
        for index in order:
            self.update(X[index], float(y[index]))

    def update(self, features: np.ndarray, target: float) -> None:
        """Absorb one observation: reweight, resample, propagate every particle."""
        if self._prior is None or not self._particles:
            raise RuntimeError("the model must be seeded with fit() before update()")
        x = np.asarray(features, dtype=float).ravel()
        y = float(target)
        if self._n and self._X is not None:
            expected_dim = self._X.shape[1]
            if x.shape[0] != expected_dim:
                raise ValueError(
                    f"feature dimension mismatch: got {x.shape[0]}, expected {expected_dim}"
                )
        if self._config.vectorized:
            self._update_batched(x, y)
        else:
            self._update_reference(x, y)

    # ------------------------------------------------- batched update kernel

    def _update_batched(self, x: np.ndarray, y: float) -> None:
        """One SMC update with all cross-particle work batched.

        The reweight routes the incoming point through every particle's flat
        compilation and the propagate step runs as a three-phase pipeline
        (see :meth:`_propagate_all`) whose cross-particle work — candidate
        partition sums, split thresholds, move probabilities, the move draw
        inversion and the stay-move leaf patch — runs as a handful of array
        operations over all particles instead of per-particle numpy calls.
        The RNG replay (see :mod:`repro.models.rng_replay`) is what makes
        the phase split possible: draw *values* are determined by stream
        position alone, so the sequential draw loop can run before the
        batched scoring that interprets them, while consuming the stream in
        exactly the reference order.
        """
        expected_raws = (
            len(self._particles) * (2 * self._config.n_split_candidates + 1) + 8
        )
        replaying = self._replay.begin(expected_raws)
        self._draws = self._replay if replaying else self._generator_draws
        try:
            routing: Optional[_UpdateRouting] = None
            if self._n >= 1:
                routing = self._resample(x, y)
            index = self._append_observation(x, y)
            self._forest = None
            self._forest_dirty = True
            self._propagate_all(x, y, index, routing)
        finally:
            if replaying:
                self._replay.end()
            self._draws = self._generator_draws

    def _patch_stays(
        self,
        slots: np.ndarray,
        leaf_ids: np.ndarray,
        rows: np.ndarray,
        forest: FlatForest,
    ) -> None:
        """Apply every stay move's leaf-statistics patch in one pass.

        ``rows`` holds the already-computed cache rows, one per slot in
        ``slots`` — produced by the batched term-table arithmetic, bit-
        identical to what :meth:`~repro.models.leaf.LeafCacheArrays.patch`
        would recompute from each leaf's memoized scalar posterior.  The
        per-particle compilations are already privately owned (the apply
        loop copies any still-shared one before recording its stay), so
        each patch is a single row assignment.  The same rows are then
        scattered straight into the live incremental forest's segments:
        a row whose particle was permuted by the resample (or whose
        compilation object changed) lands in a segment the next sync
        rewrites wholesale anyway, and rows in identity-kept segments
        make them current — so no per-row stale bookkeeping is needed
        (the ``_forest_stale`` dict remains only for the reference path).
        """
        flats = self._flat
        lids = leaf_ids.tolist()
        for j, slot in enumerate(slots.tolist()):
            flats[slot].caches.data[lids[j]] = rows[j]
        cache = self._forest_cache
        if cache is not None and forest is cache.forest:
            forest.caches.data[forest.leaf_offsets[slots] + leaf_ids] = rows

    def _update_reference(self, x: np.ndarray, y: float) -> None:
        """Per-particle reference implementation of one SMC update.

        Python descents and eager tree copies throughout; kept as the
        oracle the batched kernel's trajectories are tested against.
        """
        if self._n >= 1:
            self._resample_reference(x, y)
        index = self._append_observation(x, y)
        self._forest = None
        self._forest_dirty = True
        for particle_index, root in enumerate(self._particles):
            new_root, structural, leaf = self._propagate(root, x, y, index)
            self._particles[particle_index] = new_root
            flat = self._flat[particle_index]
            if structural:
                self._flat[particle_index] = None
            elif flat is not None:
                # Stay move: the structure is intact, only the statistics of
                # the leaf containing ``x`` changed — patch them in place.
                assert leaf.leaf is not None
                leaf_id = flat.route_one(x)
                row = flat.patch_leaf(leaf_id, leaf.leaf)
                if self._forest_cache is not None:
                    self._forest_stale[(particle_index, leaf_id)] = row

    # ----------------------------------------------------------- prediction

    def _flat_tree(self, particle_index: int) -> FlatTree:
        """The (lazily compiled) flat representation of one particle."""
        flat = self._flat[particle_index]
        if flat is None:
            flat = FlatTree.compile(self._particles[particle_index])
            self._flat[particle_index] = flat
        return flat

    def _ensure_forest(self) -> FlatForest:
        """The concatenated forest, repaired or rebuilt as needed.

        With ``incremental_forest`` the padded forest persists across
        updates: particles whose :class:`FlatTree` object is unchanged keep
        their segments (stay-move leaf patches are mirrored row-by-row from
        ``_forest_stale``), recompiled/resampled particles get their
        segments rewritten in place, and only a capacity overflow or a
        particle-count change triggers a full rebuild.  Without the flag
        every call after an update rebuilds via ``FlatForest.from_trees``
        — the equivalence oracle for the incremental path.
        """
        if self._config.incremental_forest:
            cache = self._forest_cache
            if cache is not None and not self._forest_dirty:
                return cache.forest
            flats = [self._flat_tree(i) for i in range(len(self._particles))]
            if cache is None or not cache.sync(flats, self._forest_stale):
                cache = IncrementalForest(flats)
                self._forest_cache = cache
            self._forest_stale.clear()
            self._forest_dirty = False
            return cache.forest
        self._forest_stale.clear()
        if self._forest is None:
            self._forest = FlatForest.from_trees(
                [self._flat_tree(i) for i in range(len(self._particles))]
            )
        return self._forest

    def predict(self, features: np.ndarray) -> Prediction:
        if not self._particles or not self._n:
            raise RuntimeError("the model has no training data yet")
        if not self._config.vectorized:
            return self.predict_reference(features)
        X = np.atleast_2d(np.asarray(features, dtype=float))
        count = float(len(self._particles))
        mean, variance = self._ensure_forest().predict_components(X)
        if getattr(self._config, "float_mode", "exact") == "fast":
            # Pairwise reductions: tolerance-tested against the sequential
            # accumulation, not bit-identical to it.
            means = np.add.reduce(mean, axis=0) / count
            second_moments = np.add.reduce(variance + mean * mean, axis=0)
        else:
            # cumsum(axis=0)[-1] accumulates over particles in the same
            # sequential order as the reference loop, keeping the result
            # bit-identical.
            means = np.cumsum(mean, axis=0)[-1] / count
            second_moments = np.cumsum(variance + mean * mean, axis=0)[-1]
        variances = np.maximum(second_moments / count - means ** 2, 1e-18)
        return Prediction(mean=means, variance=variances)

    def predict_reference(self, features: np.ndarray) -> Prediction:
        """Per-node reference implementation of :meth:`predict`.

        Descends every row through every particle with Python loops; kept as
        the oracle the vectorized kernel is tested against.
        """
        if not self._particles or not self._n:
            raise RuntimeError("the model has no training data yet")
        X = np.atleast_2d(np.asarray(features, dtype=float))
        n = X.shape[0]
        means = np.zeros(n)
        second_moments = np.zeros(n)
        count = float(len(self._particles))
        for root in self._particles:
            for i in range(n):
                leaf = root.descend(X[i])
                assert leaf.leaf is not None
                mean = leaf.leaf.predictive_mean()
                var = leaf.leaf.predictive_variance()
                means[i] += mean
                second_moments[i] += var + mean * mean
        means /= count
        variances = np.maximum(second_moments / count - means ** 2, 1e-18)
        return Prediction(mean=means, variance=variances)

    def expected_average_variance(
        self, candidates: np.ndarray, reference: np.ndarray
    ) -> np.ndarray:
        """ALC-style score: average reference variance left after observing each candidate.

        For a constant-leaf tree, one extra observation at a candidate only
        sharpens the leaf that contains it.  The posterior predictive
        variance of a leaf with ``n`` observations and prior strength
        ``kappa`` shrinks by roughly a factor ``(n + kappa) / (n + kappa + 1)``
        when one more observation arrives, so the expected reduction at a
        reference point in the same leaf is ``variance / (n + kappa + 1)``.
        Averaging the remaining variance over the reference set and over
        particles gives the quantity Algorithm 1 minimises.

        Vectorized: per particle, the reference and candidate batches are
        routed to integer leaf ids in one pass each; the per-leaf reference
        variance mass is a ``bincount`` and the candidate reductions are
        gathers — no Python-level descent and no ``id(node)`` dictionaries.
        """
        if not self._particles or not self._n:
            raise RuntimeError("the model has no training data yet")
        if not self._config.vectorized:
            return self.expected_average_variance_reference(candidates, reference)
        C = np.atleast_2d(np.asarray(candidates, dtype=float))
        R = np.atleast_2d(np.asarray(reference, dtype=float))
        n_reference = R.shape[0]
        kappa = self._prior.kappa if self._prior is not None else 0.1
        forest = self._ensure_forest()
        # (n_particles, n_reference) global leaf ids; leaf ids never collide
        # across particles, so one bincount aggregates the per-leaf
        # reference-variance mass of the entire forest.
        reference_leaf_ids = forest.route(R)
        reference_variance = forest.leaf_variance[reference_leaf_ids]
        fast = getattr(self._config, "float_mode", "exact") == "fast"
        # Sequential (cumsum) accumulation keeps every score bit-identical to
        # the reference loop; bincount also adds weights in input order.  In
        # fast mode the pairwise np.add.reduce stands in (tolerance-tested).
        if fast:
            base_total = np.add.reduce(reference_variance, axis=1)
        else:
            base_total = np.cumsum(reference_variance, axis=1)[:, -1]
        variance_by_leaf = np.bincount(
            reference_leaf_ids.ravel(),
            weights=reference_variance.ravel(),
            minlength=forest.n_leaves,
        )
        candidate_leaf_ids = forest.route(C)
        shrink = 1.0 / (forest.leaf_count[candidate_leaf_ids] + kappa + 1.0)
        reduction = variance_by_leaf[candidate_leaf_ids] * shrink
        spread = (base_total[:, None] - reduction) / n_reference
        if fast:
            scores = np.add.reduce(spread, axis=0)
        else:
            scores = np.cumsum(spread, axis=0)[-1]
        return scores / len(self._particles)

    def expected_average_variance_reference(
        self, candidates: np.ndarray, reference: np.ndarray
    ) -> np.ndarray:
        """Per-node reference implementation of :meth:`expected_average_variance`."""
        if not self._particles or not self._n:
            raise RuntimeError("the model has no training data yet")
        C = np.atleast_2d(np.asarray(candidates, dtype=float))
        R = np.atleast_2d(np.asarray(reference, dtype=float))
        n_candidates = C.shape[0]
        n_reference = R.shape[0]
        scores = np.zeros(n_candidates)
        kappa = self._prior.kappa if self._prior is not None else 0.1
        for root in self._particles:
            # Group the reference points by the leaf that contains them so
            # the per-candidate reduction is an array lookup rather than a
            # scan over the whole reference set.  Leaves are identified by
            # their position in the particle's leaf list.
            leaves = root.leaves()
            variance_by_leaf = np.zeros(len(leaves))
            base_total = 0.0
            for j in range(n_reference):
                leaf = root.descend(R[j])
                assert leaf.leaf is not None
                variance = leaf.leaf.predictive_variance()
                base_total += variance
                variance_by_leaf[leaves.index(leaf)] += variance
            for i in range(n_candidates):
                candidate_leaf = root.descend(C[i])
                assert candidate_leaf.leaf is not None
                n_leaf = candidate_leaf.leaf.count
                shrink = 1.0 / (n_leaf + kappa + 1.0)
                reduction = variance_by_leaf[leaves.index(candidate_leaf)] * shrink
                scores[i] += (base_total - reduction) / n_reference
        return scores / len(self._particles)

    # --------------------------------------------------- reweight + resample

    def _predictive_logpdf(self, root: _Node, x: np.ndarray, y: float) -> float:
        leaf = root.descend(x)
        assert leaf.leaf is not None
        return leaf.leaf.predictive_logpdf(y)

    def _systematic_indices(self, weights: np.ndarray, uniform: float) -> List[int]:
        """Systematic (stratified) resampling indices for normalized weights.

        The ``uniform`` draw places ``n`` equally spaced positions on [0, 1);
        each position selects the first particle whose cumulative weight
        reaches it.  Two hardening measures guard the scan against
        floating-point drift (``cumsum`` of normalized weights lands a few
        ulps off 1): the bound check runs *before* the cumulative
        comparison, so once the scan reaches the last particle it stops
        there — a position beyond the drifted total belongs to the final
        stratum and can neither read past the array nor keep advancing —
        and the cumulative array's final entry is pinned to exactly 1.0, so
        the array itself states the correct invariant (total mass 1, every
        position < 1 owned) for anything that inspects it.

        The scan itself is one ``searchsorted``: with the final entry
        pinned, "first index whose cumulative weight reaches the position"
        is exactly the ``side="left"`` insertion point, and every position
        is strictly below 1.0, so the result can never exceed the last
        index.  The entries before the pin are a true non-decreasing
        cumsum, so the predicate ``cumulative[j] >= position`` is monotone
        in ``j`` even when drift pushed the penultimate entry above 1.0 —
        the stateful reference scan and the binary search agree on every
        input (pinned by the adversarial resampler tests).
        """
        count = len(weights)
        positions = (uniform + np.arange(count)) / count
        cumulative = np.cumsum(weights)
        cumulative[-1] = 1.0
        return np.searchsorted(cumulative, positions, side="left").tolist()

    def _resample(self, x: np.ndarray, y: float) -> _UpdateRouting:
        """Batched reweight-and-resample; returns the update's routing context.

        The reweight is three kernel calls over the concatenated segment
        arrays: one all-particles ``route_update`` descent — recording
        each particle's leaf node, parent node and descent depth alongside
        the leaf id, the structural context the propagate gather phase
        reads instead of re-walking ``_Node`` objects — one fused
        gather-and-log-pdf pass over the leaf cache rows, and the offset
        subtraction that localises the global ids.  With the incremental
        forest (the default) the forest is synced here, at the *top* of
        the update, which also keeps it incrementally repaired across
        back-to-back updates instead of being recompiled per predict;
        without it the same calls run over a fresh ``from_trees``
        snapshot.  Either way the arithmetic is the cached-log-pdf-terms
        evaluation with the backend's ``log1p`` flavour (scalar-rounded
        in exact mode — numpy's rounds differently and the resample
        decision is sampled from these weights).  When the effective
        sample size calls for a resample, duplicated particles *share*
        the original tree and flat compilation copy-on-write instead of
        deep-copying them, and the routing arrays are permuted to the
        post-resample particle order.
        """
        timings = self._timings()
        tic = perf_counter()
        particles = self._particles
        count = len(particles)
        config = self._config
        kernels = get_kernels(
            getattr(config, "backend", "numpy"),
            getattr(config, "float_mode", "exact") == "fast",
        )
        forest = self._ensure_forest()
        gids, nodes, parents, depths = kernels.route_update(
            forest.split_dim,
            forest.split_value,
            forest.left,
            forest.right,
            forest.leaf_slot,
            forest.roots,
            x,
        )
        log_weights = kernels.reweight_log_weights(forest.caches.data, gids, y)
        local_ids = gids - forest.leaf_offsets
        routing = _UpdateRouting(forest, local_ids, gids, nodes, parents, depths)
        toc = perf_counter()
        timings["reweight"] += toc - tic
        tic = toc
        log_weights -= log_weights.max()
        weights = np.exp(log_weights)
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            timings["resample"] += perf_counter() - tic
            return routing
        weights /= total
        effective = 1.0 / float(np.sum(weights ** 2))
        if effective >= config.resample_threshold * count:
            timings["resample"] += perf_counter() - tic
            return routing
        chosen_indices = self._systematic_indices(weights, self._draws.random())
        chosen = np.asarray(chosen_indices, dtype=np.intp)
        occurrences = np.bincount(chosen, minlength=count)
        duplicated = occurrences > 1
        for j in np.flatnonzero(duplicated).tolist():
            # Copy-on-write: every occurrence shares the tree and its
            # compilation; the first move that mutates either clones just
            # what it touches.  The *whole* tree is flagged, not just the
            # root, so ``shared`` stays authoritative — a False flag
            # guarantees single ownership, which is what lets the apply
            # phase mutate leaves straight out of the compilation's leaf
            # map without re-walking the tree (``clone_shallow`` upholds
            # the invariant when it hands its children a second owner).
            stack = [particles[j]]
            while stack:
                node = stack.pop()
                node.shared = True
                if node.left is not None:
                    stack.append(node.left)
                    stack.append(node.right)
        flats = self._flat
        shared = np.fromiter(self._flat_shared, dtype=bool, count=count)
        self._particles = [particles[j] for j in chosen_indices]
        self._flat = [flats[j] for j in chosen_indices]
        self._flat_shared = (shared[chosen] | duplicated[chosen]).tolist()
        routing = _UpdateRouting(
            forest,
            local_ids[chosen],
            gids[chosen],
            nodes[chosen],
            parents[chosen],
            depths[chosen],
        )
        timings["resample"] += perf_counter() - tic
        return routing

    def _resample_reference(self, x: np.ndarray, y: float) -> None:
        """Per-particle reference reweight/resample (eager tree copies)."""
        log_weights = np.array(
            [self._predictive_logpdf(root, x, y) for root in self._particles]
        )
        log_weights -= log_weights.max()
        weights = np.exp(log_weights)
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            return
        weights /= total
        effective = 1.0 / float(np.sum(weights ** 2))
        if effective >= self._config.resample_threshold * len(self._particles):
            return
        chosen_indices = self._systematic_indices(weights, self._rng.random())
        # Deduplicate by particle *index*: the first occurrence keeps the
        # original tree (and its flat compilation), later occurrences get
        # independent copies.
        new_particles: List[_Node] = []
        new_flat: List[Optional[FlatTree]] = []
        used_original: set[int] = set()
        for j in chosen_indices:
            flat = self._flat[j]
            if j not in used_original:
                new_particles.append(self._particles[j])
                new_flat.append(flat)
                used_original.add(j)
            else:
                new_particles.append(self._particles[j].copy())
                copied = flat.copy() if flat is not None else None
                if copied is not None:
                    # The eager tree copy made fresh ``_Node`` objects the
                    # compilation's leaf map knows nothing about.
                    copied.leaf_nodes = None
                new_flat.append(copied)
        self._particles = new_particles
        self._flat = new_flat
        self._flat_shared = [False] * len(new_particles)

    # ----------------------------------------------------- batched propagate

    def _leaf_term_tables(self) -> LeafTermTables:
        """The count-indexed NIG term tables for the current prior.

        Rebuilt whenever :meth:`fit` installs a fresh :class:`LMLCache`
        (identity check), and lazily created on models unpickled from
        checkpoints that predate the attribute.
        """
        assert self._lml is not None
        tables = getattr(self, "_term_tables", None)
        if tables is None or tables.lml is not self._lml:
            tables = LeafTermTables(self._lml)
            self._term_tables = tables
        return tables

    def _depth_table(self, max_depth: int) -> np.ndarray:
        """``(depth, 3)`` array of :meth:`_depth_terms`, grown on demand.

        Column layout matches the scalar tuple: ``log1p(-p)``, the grow
        head ``log(p) + 2*log1p(-p_child)``, and ``log(p)``.  The values
        depend only on the frozen config, so the table never goes stale.
        """
        table = getattr(self, "_depth_arrays", None)
        if table is None or table.shape[0] <= max_depth:
            size = max(16, 2 * (max_depth + 1))
            table = np.empty((size, 3))
            for depth in range(size):
                table[depth] = self._depth_terms(depth)
            self._depth_arrays = table
        return table

    def _depth_terms(self, depth: int) -> Tuple[float, float, float]:
        """``(log1p(-p), log(p) + 2*log1p(-p_child), log(p))`` at ``depth``.

        These are the tree-prior factors of the stay/grow/prune scores; they
        depend only on the depth and the frozen config, so every particle's
        score computation shares one memoized scalar evaluation (grouped
        exactly as the reference expressions group them).
        """
        terms = self._depth_cache.get(depth)
        if terms is None:
            config = self._config
            p_here = config.split_probability(depth)
            p_child = config.split_probability(depth + 1)
            log1m = math.log1p(-p_here)
            log_p = math.log(p_here)
            grow_head = log_p + 2.0 * math.log1p(-p_child)
            terms = (log1m, grow_head, log_p)
            self._depth_cache[depth] = terms
        return terms

    def _descend_cow(
        self, root: _Node, x: np.ndarray
    ) -> Tuple[_Node, Optional[_Node], _Node]:
        """Descend to the leaf containing ``x``, cloning shared path nodes.

        Returns ``(leaf, parent, root)`` — ``root`` is a new object when the
        old one was shared.  After this walk the whole root-to-leaf path is
        privately owned, so the caller may mutate the leaf (stay/grow) or
        the parent (prune) without leaking state into particles that share
        off-path subtrees.
        """
        if root.shared:
            root = root.clone_shallow()
        parent: Optional[_Node] = None
        node = root
        while not node.is_leaf:
            parent = node
            assert node.left is not None and node.right is not None
            go_left = x[node.split_dim] <= node.split_value
            child = node.left if go_left else node.right
            if child.shared:
                child = child.clone_shallow()
                if go_left:
                    node.left = child
                else:
                    node.right = child
            node = child
        return node, parent, root

    def _propagate_all(
        self,
        x: np.ndarray,
        y: float,
        index: int,
        routing: Optional[_UpdateRouting],
    ) -> None:
        """Propagate every particle through one stay/grow/prune move.

        Three phases, all bit-identical to running :meth:`_propagate` per
        particle:

        1. **score** — the leaf, sibling and depth context comes from the
           reweight's ``route_update`` descent (see :class:`_UpdateRouting`):
           leaf and prune-sibling sufficient statistics are fused array
           gathers over the forest's packed cache columns, the prune
           siblings and tree-prior depth terms follow from the recorded
           parent nodes, and the only remaining per-particle loop collects
           each leaf's training-row indices through the compilations'
           ``leaf_nodes`` maps.  The grow proposals' RNG draws run in
           exactly the reference order (the replayed stream makes the draw
           *values* independent of when they are interpreted); the
           stay/prune scores are then one vectorized pass over
           :class:`~repro.models.leaf.LeafTermTables` gathers, dispatched
           through the configured :mod:`~repro.models.compiled_kernels`
           backend.  Scoring reads only pre-update state, so particles
           sharing copy-on-write subtrees see identical values to the
           reference's private copies.
        2. **batch** — every particle's candidate splits are scored
           together: padded ``(n_particles, max_leaf_size, …)`` arrays
           carry one fused masked sequential-cumsum for all partition sums,
           the split thresholds come from one gather over a batched
           unique-value table, and the move probabilities and
           ``Generator.choice`` cdf inversions for all particles run as a
           handful of rowwise array ops.  Padding rows hold ``+inf``
           features (never selected by a mask) and ``0.0`` targets (exact
           no-ops in the sequential sums), so the batch reproduces each
           particle's reference arithmetic bit-for-bit.
        3. **apply** — moves mutate the trees through one copy-on-write
           descent per particle (a pure pointer walk on private paths);
           grow/prune moves splice the particle's flat compilation in
           place (:meth:`FlatTree.grow_at` / :meth:`FlatTree.prune_at`)
           instead of invalidating it, and the stay moves land on the flat
           compilations as one batched leaf-statistics patch.
        """
        assert self._prior is not None and self._lml is not None
        assert self._X is not None and self._y is not None
        timings = self._timings()
        tic = perf_counter()
        particles = self._particles
        count = len(particles)
        config = self._config
        min_leaf = config.min_leaf
        n_candidates = config.n_split_candidates
        fast = getattr(config, "float_mode", "exact") == "fast"
        dims = x.shape[0]
        neg_inf = -math.inf
        flats = self._flat

        # --------------------- phase 1a: routed state gathers
        # Leaf sufficient statistics, descent depths, prune siblings and
        # the memoized sibling marginal likelihoods all come from the
        # reweight routing as fused gathers over the forest's packed
        # cache columns (the forest was synced at the top of the update,
        # so every row is pre-update truth).  The per-particle loop that
        # remains only collects each leaf's training-row index list.
        all_rows: List[int] = []
        extend_rows = all_rows.extend
        if routing is None:
            # First update (``fit`` reset the model): every particle is a
            # single-leaf root holding no observations, so the structural
            # context is trivial and there are no indices to gather.
            leaf_ns = np.zeros(count, dtype=np.intp)
            leaf_totals = np.zeros(count)
            leaf_sqs = np.zeros(count)
            depths_arr = np.zeros(count, dtype=np.intp)
            prunable = np.zeros(count, dtype=bool)
            pr = np.flatnonzero(prunable)
            sib_ns_pr = np.empty(0, dtype=np.intp)
            sib_totals_pr = np.empty(0)
            sib_sqs_pr = np.empty(0)
            sib_lmls_pr = np.empty(0)
            ids_list: Optional[List[int]] = None
        else:
            forest = routing.forest
            data = forest.caches.data
            leaf_rows = data[routing.gids]
            leaf_ns = leaf_rows[:, LeafCacheArrays.COUNT].astype(np.intp)
            leaf_totals = leaf_rows[:, LeafCacheArrays.SUM]
            leaf_sqs = leaf_rows[:, LeafCacheArrays.SUM_SQ]
            depths_arr = routing.depths
            parents_arr = routing.parents
            # The prune sibling is the parent's *other* child; a particle
            # is prunable when it has a parent and that sibling is a leaf.
            # Root-leaves carry parent ``-1`` — the in-bounds negative
            # index reads garbage that the ``parents >= 0`` guard masks.
            left_of_parent = forest.left[parents_arr]
            sib_nodes = np.where(
                left_of_parent == routing.nodes,
                forest.right[parents_arr],
                left_of_parent,
            )
            prunable = (parents_arr >= 0) & (forest.split_dim[sib_nodes] == -1)
            pr = np.flatnonzero(prunable)
            sib_rows = data[forest.leaf_slot[sib_nodes[pr]]]
            sib_ns_pr = sib_rows[:, LeafCacheArrays.COUNT].astype(np.intp)
            sib_totals_pr = sib_rows[:, LeafCacheArrays.SUM]
            sib_sqs_pr = sib_rows[:, LeafCacheArrays.SUM_SQ]
            sib_lmls_pr = sib_rows[:, LeafCacheArrays.LML]
            ids_list = routing.local_ids.tolist()
            for i in range(count):
                nodes_map = flats[i].leaf_nodes
                extend_rows(nodes_map[ids_list[i]].indices)
        sizes_list = leaf_ns.tolist()

        # ------------------------- phase 1b: batched grow-proposal tables
        # Pad every leaf's observations (plus the incoming point in the
        # last real row) into one (bucket, n_max_b, dims) block per leaf-
        # size bucket.  Sorting the particles by leaf size and padding
        # each bucket only to its own widest leaf keeps the padded work
        # proportional to the mean leaf size rather than the max; every
        # per-particle row is computed exactly as in the single-block
        # layout, so bit-identity is untouched (padding features are +inf
        # so no threshold ever selects them; padding targets are 0.0, an
        # exact no-op for the sequential sums).
        sizes = leaf_ns
        n_points_arr = sizes + 1
        n_max = int(sizes.max()) + 1
        starts = np.cumsum(sizes) - sizes
        rows_arr = np.asarray(all_rows, dtype=np.intp)
        order = np.argsort(sizes, kind="stable")
        n_buckets = 4 if count >= 256 else 1
        n_unique_arr = np.empty((count, dims), dtype=np.int32)
        bucket_of = np.empty(count, dtype=np.intp)
        bucket_pos = np.empty(count, dtype=np.intp)
        buckets = []
        for bidx in np.array_split(order, n_buckets):
            nb = bidx.shape[0]
            if nb == 0:
                continue
            bucket_of[bidx] = len(buckets)
            bucket_pos[bidx] = np.arange(nb, dtype=np.intp)
            sizes_b = sizes[bidx]
            n_max_b = int(sizes_b.max()) + 1
            padded_features = np.full((nb, n_max_b, dims), np.inf)
            padded_targets = np.zeros((nb, n_max_b))
            row_owner = np.repeat(np.arange(nb, dtype=np.intp), sizes_b)
            col_pos = (
                np.arange(row_owner.shape[0], dtype=np.intp)
                - np.repeat(np.cumsum(sizes_b) - sizes_b, sizes_b)
            )
            src = rows_arr[np.repeat(starts[bidx], sizes_b) + col_pos]
            padded_features[row_owner, col_pos] = self._X[src]
            padded_targets[row_owner, col_pos] = self._y[src]
            local = np.arange(nb, dtype=np.intp)
            padded_features[local, sizes_b] = x
            padded_targets[local, sizes_b] = y
            # Batched unique scan (sort + first-of-run flags, the lean
            # equivalent of per-candidate np.unique): ``n_unique[p, d]``
            # bounds the cut draw, and ``unique_values[p, j, d]`` is the
            # j-th distinct value, compacted to the front so thresholds
            # are one gather.
            sorted_columns = np.sort(padded_features, axis=1)
            keep = np.empty(sorted_columns.shape, dtype=bool)
            keep[:, 0, :] = True
            np.not_equal(
                sorted_columns[:, 1:, :], sorted_columns[:, :-1, :], out=keep[:, 1:, :]
            )
            keep &= np.arange(n_max_b)[None, :, None] < (sizes_b + 1)[:, None, None]
            rank = keep.cumsum(axis=1, dtype=np.int32)
            n_uni_b = rank[:, -1, :]
            n_unique_arr[bidx] = n_uni_b
            # ``n_unique <= size + 1`` columnwise, so sum equality means
            # every column is already duplicate-free — then the sorted
            # block *is* the compacted table (real rows sort ahead of the
            # +inf padding), the common case for continuous features.
            if int(n_uni_b.sum()) == int((sizes_b + 1).sum()) * dims:
                compacted = sorted_columns
            else:
                # Compact first-of-run values to the front of each column
                # with flat indexing: a kept element at flat position
                # ``q`` (row ``j`` of its column) moves to row
                # ``rank - 1``, i.e. flat position
                # ``q + dims * (rank - 1 - j)`` — one flatnonzero and two
                # flat gathers instead of three-array ``np.nonzero``
                # coordinate math.
                flat_keep = np.flatnonzero(keep.reshape(-1))
                rows_of = (flat_keep // dims) % n_max_b
                dest = flat_keep + dims * (rank.reshape(-1)[flat_keep] - 1 - rows_of)
                compacted = np.empty_like(sorted_columns)
                compacted.reshape(-1)[dest] = sorted_columns.reshape(-1)[flat_keep]
            buckets.append((bidx, padded_features, padded_targets, n_max_b, compacted))
            del sorted_columns, keep, rank

        # ---------------------- phase 1c: sequential candidate draws
        # The RNG stream must be consumed in exactly the reference
        # per-particle order (candidate draws, then the move uniform).
        # The draw *values* depend only on stream position, so this can
        # run before the batched scoring that interprets them.  The
        # replay layer's batched decoder handles the common fixed-layout
        # case in one vectorized pass (falling back to the scalar loop
        # from the first particle whose draws violate its layout
        # assumptions); the loop below covers plain-``Generator`` draw
        # sources and degenerate shapes.
        grow_floor = 2 * min_leaf
        batch_draws = getattr(self._draws, "draw_candidates_batch", None)
        if batch_draws is not None and dims >= 2:
            grow_flags = n_points_arr >= grow_floor
            cand_particle, cand_slot, cand_dim, cand_cut, uniforms = batch_draws(
                dims, n_unique_arr, grow_flags, n_candidates
            )
        else:
            n_unique_list = n_unique_arr.tolist()
            draw_candidates = self._draws.draw_candidates
            draw_uniform = self._draws.random
            uniforms = np.empty(count)
            cand_particle: List[int] = []
            cand_slot: List[int] = []
            cand_dim: List[int] = []
            cand_cut: List[int] = []
            for i in range(count):
                if sizes_list[i] + 1 >= grow_floor:
                    drawn_dims, drawn_cuts = draw_candidates(
                        dims, n_unique_list[i], n_candidates
                    )
                    slot = len(drawn_dims)
                    cand_particle.extend([i] * slot)
                    cand_slot.extend(range(slot))
                    cand_dim.extend(drawn_dims)
                    cand_cut.extend(drawn_cuts)
                uniforms[i] = draw_uniform()

        # ------------------- phase 1d: vectorized stay/prune scoring
        # The hypothetical leaves (stay absorbs the new point, prune also
        # merges the sibling) are scored by gathering the count-dependent
        # LML terms from the term tables and evaluating the beta_n
        # arithmetic elementwise — the expression grouping and the scalar-
        # rounded log map keep every score bit-identical to the LMLCache
        # evaluation the reference path performs.
        kernels = get_kernels(getattr(config, "backend", "numpy"), fast)
        tables = self._leaf_term_tables()
        prior = self._prior
        prior_beta = prior.beta
        prior_kappa = prior.kappa
        prior_mean = prior.mean
        counts_stay = leaf_ns + 1
        totals_stay = leaf_totals + y
        sqs_stay = leaf_sqs + y * y
        counts_prune = counts_stay[pr] + sib_ns_pr
        max_count = int(counts_stay.max())
        if pr.size:
            max_count = max(max_count, int(counts_prune.max()))
        if len(cand_particle):
            max_count = max(max_count, n_max)
        tables.ensure(max_count)
        depth_table = self._depth_table(int(depths_arr.max()))
        log1m_here = depth_table[depths_arr, 0]
        grow_heads = depth_table[depths_arr, 1]
        kappa_stay = tables.kappa_n[counts_stay]
        alpha_stay = tables.alpha_n[counts_stay]
        beta_stay = nig_beta_n(
            counts_stay, totals_stay, sqs_stay, kappa_stay,
            prior_beta, prior_kappa, prior_mean,
        )
        stay_lml = (
            (tables.head[counts_stay] - alpha_stay * kernels.log_array(beta_stay))
            + tables.mid[counts_stay]
        ) - tables.tail[counts_stay]
        stay_scores = log1m_here + stay_lml
        commons = np.zeros(count)
        prune_scores = np.full(count, neg_inf)
        if pr.size:
            parent_rows = depth_table[depths_arr[pr] - 1]
            log1m_parent = parent_rows[:, 0]
            log_p_parent = parent_rows[:, 2]
            # The sibling sits at the leaf's own depth (they share a parent).
            log1m_sibling = log1m_here[pr]
            common_vals = (log_p_parent + log1m_sibling) + sib_lmls_pr
            commons[pr] = common_vals
            kappa_prune = tables.kappa_n[counts_prune]
            alpha_prune = tables.alpha_n[counts_prune]
            beta_prune = nig_beta_n(
                counts_prune,
                totals_stay[pr] + sib_totals_pr,
                sqs_stay[pr] + sib_sqs_pr,
                kappa_prune,
                prior_beta,
                prior_kappa,
                prior_mean,
            )
            prune_lml = (
                (tables.head[counts_prune] - alpha_prune * kernels.log_array(beta_prune))
                + tables.mid[counts_prune]
            ) - tables.tail[counts_prune]
            prune_scores[pr] = log1m_parent + prune_lml
            stay_scores[pr] += common_vals

        # ------------------------ phase 2a: batched candidate partitions
        thresholds = np.full((count, n_candidates), neg_inf)
        dim_matrix = np.zeros((count, n_candidates), dtype=np.intp)
        if len(cand_particle):
            cp = np.asarray(cand_particle, dtype=np.intp)
            cs = np.asarray(cand_slot, dtype=np.intp)
            cd = np.asarray(cand_dim, dtype=np.intp)
            cc = np.asarray(cand_cut, dtype=np.intp)
            # The drawn cut values live in the per-bucket compacted unique
            # tables; one masked gather per bucket reads the ~K entries
            # each particle needs without materialising (and scattering
            # into) a global ``(count, n_max, dims)`` table.
            low = np.empty(cp.shape[0])
            high = np.empty(cp.shape[0])
            cand_bucket = bucket_of[cp]
            cand_pos = bucket_pos[cp]
            for b, (_, _, _, _, compacted) in enumerate(buckets):
                sel = np.flatnonzero(cand_bucket == b)
                if sel.size:
                    pos_s = cand_pos[sel]
                    cd_s = cd[sel]
                    cc_s = cc[sel]
                    low[sel] = compacted[pos_s, cc_s, cd_s]
                    high[sel] = compacted[pos_s, cc_s + 1, cd_s]
            thresholds[cp, cs] = 0.5 * (low + high)
            dim_matrix[cp, cs] = cd
        two_k = 2 * n_candidates
        masks = np.empty((count, n_max, n_candidates), dtype=bool)
        sums = np.empty((count, 2, two_k))
        n_left_matrix = np.empty((count, n_candidates), dtype=np.intp)
        for bidx, padded_features, padded_targets, n_max_b, _ in buckets:
            nb = bidx.shape[0]
            thresholds_b = thresholds[bidx]
            dims_b = dim_matrix[bidx]
            masks_b = np.empty((nb, n_max_b, n_candidates), dtype=bool)
            sums_b = np.empty((nb, 2, two_k))
            # The masked sums contract the (chunk, n_max_b, k) side masks
            # against the target rows in one einsum pass per side/moment;
            # chunking bounds the boolean right-side scratch.
            chunk = max(1, 4_000_000 // (n_max_b * two_k))
            flat_features = padded_features.reshape(-1)
            row_offsets = (np.arange(n_max_b, dtype=np.intp) * dims)[None, :, None]
            targets_sq = padded_targets * padded_targets
            width = min(chunk, nb)
            inv = np.empty((width, n_max_b, n_candidates), dtype=bool)
            for start in range(0, nb, chunk):
                stop = min(start + chunk, nb)
                window = slice(start, stop)
                w = stop - start
                # One flat gather for the candidate columns (notably faster
                # than take_along_axis's generic inner loop at this shape).
                flat_idx = (
                    np.arange(start, stop, dtype=np.intp)[:, None, None]
                    * (n_max_b * dims)
                    + row_offsets
                    + dims_b[window][:, None, :]
                )
                columns = flat_features[flat_idx]
                left_block = masks_b[window]
                np.less_equal(
                    columns, thresholds_b[window][:, None, :], out=left_block
                )
                inv_w = inv[:w]
                np.logical_not(left_block, out=inv_w)
                targets_w = padded_targets[window]
                targets_sq_w = targets_sq[window]
                # np.einsum's unoptimized path accumulates the contracted
                # axis strictly in index order (no pairwise or SIMD
                # partial sums), so each fused mask-product-and-sum below
                # is bit-identical to ``cumsum`` over the compressed side
                # (padding rows contribute exact ``0.0`` no-ops) — pinned
                # by the equivalence suite.
                sums_row = sums_b[window]
                np.einsum(
                    "pnk,pn->pk", left_block, targets_w,
                    out=sums_row[:, 0, :n_candidates],
                )
                np.einsum(
                    "pnk,pn->pk", inv_w, targets_w,
                    out=sums_row[:, 0, n_candidates:],
                )
                np.einsum(
                    "pnk,pn->pk", left_block, targets_sq_w,
                    out=sums_row[:, 1, :n_candidates],
                )
                np.einsum(
                    "pnk,pn->pk", inv_w, targets_sq_w,
                    out=sums_row[:, 1, n_candidates:],
                )
            masks[bidx, :n_max_b, :] = masks_b
            sums[bidx] = sums_b
            n_left_matrix[bidx] = masks_b.sum(axis=1)
        del buckets

        # -------------------------------- phase 2b: grow scores (kernel)
        # One fused pass over the padded candidate grid: the kernel
        # evaluates the left/right marginal likelihoods from the same
        # count-term tables (one log pass over the concatenated beta_n
        # values on the NumPy backend) and returns each particle's argmax
        # candidate.  Padded slots carry ``-inf`` thresholds, so their
        # left counts are 0 and min_leaf filtering rejects them exactly
        # like the reference's per-candidate guard.
        best_slot, best_left, best_right = kernels.grow_scores(
            n_left_matrix,
            n_points_arr,
            sums,
            min_leaf,
            n_candidates,
            tables.kappa_n,
            tables.alpha_n,
            tables.head,
            tables.mid,
            tables.tail,
            prior_beta,
            prior_kappa,
            prior_mean,
        )
        grow_scores = np.full(count, neg_inf)
        has_best = best_slot >= 0
        if has_best.any():
            g = (grow_heads[has_best] + best_left[has_best]) + best_right[has_best]
            grow_scores[has_best] = np.where(
                prunable[has_best], g + commons[has_best], g
            )

        # ------------------------------ phase 2c: batched move ceremony
        # ``exp(-inf - max) == 0.0`` exactly, so exponentiating the full
        # score rows reproduces the reference's zero-filled probabilities
        # without an isfinite mask (the stay score is always finite, so
        # every row max is finite and no NaN can appear).  The rowwise
        # max/exp/sum/cumsum sequence and the ``(cdf <= u).sum`` inversion
        # of ``Generator.choice`` are elementwise identical to the
        # per-particle reference ops — pinned by the equivalence suite.
        score_matrix = np.empty((count, 3))
        score_matrix[:, 0] = stay_scores
        score_matrix[:, 1] = grow_scores
        score_matrix[:, 2] = prune_scores
        np.subtract(score_matrix, score_matrix.max(axis=1)[:, None], out=score_matrix)
        np.exp(score_matrix, out=score_matrix)
        score_matrix /= score_matrix.sum(axis=1)[:, None]
        cdf = np.cumsum(score_matrix, axis=1)
        cdf /= cdf[:, -1:]
        moves = (cdf <= uniforms[:, None]).sum(axis=1).tolist()

        toc = perf_counter()
        timings["propagate-score"] += toc - tic
        tic = toc

        # ---------------------------------------------- phase 3: apply
        # Stay and grow moves mutate the leaf named by the compilation's
        # leaf map directly whenever its ``shared`` flag is clear (the
        # flag is authoritative: resample flags whole duplicated trees),
        # so in the common steady state no tree is walked at all.  Shared
        # leaves and every prune go through ``_descend_cow`` — a pure
        # pointer walk on privately owned paths, shared-node cloning
        # otherwise.  Grow/prune moves additionally *derive* the
        # particle's updated flat compilation from the old one (one
        # splice per structural move) instead of invalidating it, so
        # steady-state updates never re-enter FlatTree.compile.
        stay_slots: List[int] = []
        flat_shared = self._flat_shared
        best_slot_list = best_slot.tolist()
        best_left_list = best_left.tolist()
        best_right_list = best_right.tolist()
        prunable_list = prunable.tolist()
        has_ids = ids_list is not None
        descend_cow = self._descend_cow
        for i in range(count):
            move = moves[i]
            if move == 2 and prunable_list[i]:
                # Prune needs the parent (and must own the path to it),
                # so it always takes the full copy-on-write walk.
                leaf, parent, root = descend_cow(particles[i], x)
                particles[i] = root
                is_left = parent.left is leaf
                sibling = parent.right if is_left else parent.left
                assert sibling is not None
                old_flat = flats[i]
                self._apply_prune(root, parent, leaf, sibling, x, y, index)
                if old_flat is not None and has_ids:
                    lid = ids_list[i]
                    flats[i] = old_flat.prune_at(lid if is_left else lid - 1, parent)
                else:
                    flats[i] = None
                flat_shared[i] = False
                continue
            # Stay and grow only mutate the leaf itself.  The compilation's
            # leaf map already names it, and an unshared flag is
            # authoritative (resample flags whole duplicated trees), so a
            # private leaf can be mutated in place with no tree walk at
            # all; a shared flag falls back to the path-cloning descent.
            flat = flats[i] if has_ids else None
            if flat is not None:
                leaf = flat.leaf_nodes[ids_list[i]]
                if leaf.shared:
                    leaf, _, root = descend_cow(particles[i], x)
                    particles[i] = root
            else:
                leaf, _, root = descend_cow(particles[i], x)
                particles[i] = root
            c = best_slot_list[i]
            if move == 1 and c >= 0:
                n_points = sizes_list[i] + 1
                count_left = int(n_left_matrix[i, c])
                right_slot = n_candidates + c
                old_flat = flats[i]
                self._apply_grow_batched(
                    leaf,
                    _GrowProposal(
                        dim=int(dim_matrix[i, c]),
                        threshold=float(thresholds[i, c]),
                        n_left=count_left,
                        sum_left=float(sums[i, 0, c]),
                        sum_sq_left=float(sums[i, 1, c]),
                        left_lml=best_left_list[i],
                        n_right=n_points - count_left,
                        sum_right=float(sums[i, 0, right_slot]),
                        sum_sq_right=float(sums[i, 1, right_slot]),
                        right_lml=best_right_list[i],
                        mask=masks[i, :n_points, c],
                    ),
                    index,
                )
                if old_flat is not None and has_ids:
                    flats[i] = old_flat.grow_at(ids_list[i], leaf)
                else:
                    flats[i] = None
                flat_shared[i] = False
            else:
                assert leaf.leaf is not None
                leaf.leaf.add(y)
                leaf.indices.append(index)
                flat = flats[i]
                if flat is not None:
                    if flat_shared[i]:
                        # Copy-on-write: the compilation is still shared
                        # with a resample sibling; copy it before the
                        # batched patch lands.
                        flat = flat.copy()
                        flats[i] = flat
                        flat_shared[i] = False
                    # The COW walk may have replaced the leaf object; keep
                    # the compilation's leaf map pointing at the live node.
                    flat.leaf_nodes[ids_list[i]] = leaf
                    stay_slots.append(i)
        if stay_slots:
            # Batched leaf-cache rows for every stay move: the posterior
            # row entries are the same table gathers + elementwise
            # arithmetic (same grouping, scalar-rounded logs) as
            # GaussianLeafModel.predictive_logpdf_terms — including the
            # sufficient-statistics and marginal-likelihood columns the
            # next update's gather phase reads back.
            assert routing is not None
            stays = np.asarray(stay_slots, dtype=np.intp)
            counts_s = counts_stay[stays]
            kappa_s = kappa_stay[stays]
            alpha_s = alpha_stay[stays]
            beta_s = beta_stay[stays]
            pk_pm = prior_kappa * prior_mean
            mean_s = (pk_pm + totals_stay[stays]) / kappa_s
            scale_s = (beta_s * (kappa_s + 1.0)) / (alpha_s * kappa_s)
            dof_s = tables.dof[counts_s]
            rows = np.empty((stays.size, LeafCacheArrays.N_COLUMNS))
            rows[:, LeafCacheArrays.MEAN] = mean_s
            rows[:, LeafCacheArrays.VARIANCE] = (scale_s * dof_s) / (dof_s - 2.0)
            rows[:, LeafCacheArrays.COUNT] = counts_s
            rows[:, LeafCacheArrays.LOGPDF_SCALE] = dof_s * scale_s
            rows[:, LeafCacheArrays.LOGPDF_COEF] = tables.coef[counts_s]
            rows[:, LeafCacheArrays.LOGPDF_CONST] = tables.lgamma_part[
                counts_s
            ] - 0.5 * kernels.log_array(tables.dof_pi[counts_s] * scale_s)
            rows[:, LeafCacheArrays.SUM] = totals_stay[stays]
            rows[:, LeafCacheArrays.SUM_SQ] = sqs_stay[stays]
            rows[:, LeafCacheArrays.LML] = stay_lml[stays]
            self._patch_stays(
                stays, routing.local_ids[stays], rows, routing.forest
            )
        timings["propagate-apply"] += perf_counter() - tic

    def _apply_grow_batched(
        self, leaf: _Node, proposal: _GrowProposal, index: int
    ) -> None:
        """Split ``leaf`` according to a batched grow proposal.

        The children's models are rebuilt from the proposal's partition
        statistics (bit-identical to re-summing the partition, which is how
        the reference path builds them) and the index lists from its mask —
        no re-scan of the training buffers.
        """
        assert self._prior is not None
        mask = proposal.mask
        old_mask = mask[:-1]
        indices = np.asarray(leaf.indices, dtype=np.intp)
        left_indices = [int(i) for i in indices[old_mask]]
        right_indices = [int(i) for i in indices[~old_mask]]
        if bool(mask[-1]):
            left_indices.append(index)
        else:
            right_indices.append(index)
        left_model = GaussianLeafModel.from_sufficient_stats(
            self._prior, proposal.n_left, proposal.sum_left, proposal.sum_sq_left
        )
        right_model = GaussianLeafModel.from_sufficient_stats(
            self._prior, proposal.n_right, proposal.sum_right, proposal.sum_sq_right
        )
        left_child = _Node(leaf.depth + 1)
        left_child.leaf = left_model
        left_child.indices = left_indices
        right_child = _Node(leaf.depth + 1)
        right_child.leaf = right_model
        right_child.indices = right_indices
        leaf.leaf = None
        leaf.indices = []
        leaf.split_dim = proposal.dim
        leaf.split_value = proposal.threshold
        leaf.left = left_child
        leaf.right = right_child

    # --------------------------------------------------- reference propagate

    def _propagate(
        self, root: _Node, x: np.ndarray, y: float, index: int
    ) -> Tuple[_Node, bool, _Node]:
        """Apply one stochastic stay/grow/prune move at the leaf containing ``x``.

        Returns ``(new_root, structural_change, touched_leaf)``;
        ``structural_change`` is true for grow/prune moves (the particle's
        flat compilation must be rebuilt) and false for stay moves (only
        ``touched_leaf``'s statistics changed).
        """
        leaf, parent = root.descend_with_parent(x)
        assert leaf.leaf is not None and self._prior is not None
        config = self._config

        # All scores are computed over the subtree rooted at the leaf's
        # parent (or at the leaf itself when it is the root), so the three
        # alternatives are directly comparable posteriors of that subtree.
        sibling: Optional[_Node] = None
        if parent is not None:
            sibling = parent.right if parent.left is leaf else parent.left

        leaf_with_new = leaf.leaf.copy()
        leaf_with_new.add(y)
        p_split_here = config.split_probability(leaf.depth)
        stay_score = math.log1p(-p_split_here) + leaf_with_new.log_marginal_likelihood()

        grow_proposal = self._propose_grow(leaf, x, y)
        grow_score = -math.inf
        if grow_proposal is not None:
            _, _, left_model, right_model, _, _ = grow_proposal
            p_split_child = config.split_probability(leaf.depth + 1)
            grow_score = (
                math.log(p_split_here)
                + 2.0 * math.log1p(-p_split_child)
                + left_model.log_marginal_likelihood()
                + right_model.log_marginal_likelihood()
            )

        prune_score = -math.inf
        prune_possible = (
            parent is not None and sibling is not None and sibling.is_leaf
        )
        common = 0.0
        if prune_possible:
            assert parent is not None and sibling is not None and sibling.leaf is not None
            p_split_parent = config.split_probability(parent.depth)
            p_split_sibling = config.split_probability(sibling.depth)
            # Common factor shared by the stay and grow alternatives when the
            # comparison is lifted to the parent subtree.
            common = (
                math.log(p_split_parent)
                + math.log1p(-p_split_sibling)
                + sibling.leaf.log_marginal_likelihood()
            )
            merged = leaf_with_new.merge(sibling.leaf)
            prune_score = math.log1p(-p_split_parent) + merged.log_marginal_likelihood()
            stay_score += common
            grow_score = grow_score + common if math.isfinite(grow_score) else grow_score

        scores = np.array([stay_score, grow_score, prune_score])
        finite = np.isfinite(scores)
        probabilities = np.zeros(3)
        shifted = scores[finite] - scores[finite].max()
        probabilities[finite] = np.exp(shifted)
        probabilities /= probabilities.sum()
        move = int(self._rng.choice(3, p=probabilities))

        if move == 1 and grow_proposal is not None:
            self._apply_grow(leaf, grow_proposal, index)
            return root, True, leaf
        if move == 2 and prune_possible:
            assert parent is not None and sibling is not None
            new_root = self._apply_prune(root, parent, leaf, sibling, x, y, index)
            return new_root, True, parent
        leaf.leaf.add(y)
        leaf.indices.append(index)
        return root, False, leaf

    def _propose_grow(
        self, leaf: _Node, x: np.ndarray, y: float
    ) -> Optional[Tuple[int, float, GaussianLeafModel, GaussianLeafModel, List[int], List[int]]]:
        """Propose the best of a few random splits of ``leaf`` (plus the new point).

        Returns ``(dim, threshold, left_model, right_model, left_indices,
        right_indices)`` where the new point is *not* included in the index
        lists (it is added by :meth:`_apply_grow`), or ``None`` when no valid
        split exists (too few points, or no variation in any dimension).

        The partition scans are vectorized: the leaf's observations are
        sliced out of the training buffers once, and each candidate split is
        scored from mask reductions over that slice instead of per-point
        Python loops.
        """
        assert self._prior is not None and self._X is not None and self._y is not None
        config = self._config
        n_points = len(leaf.indices) + 1
        if n_points < 2 * config.min_leaf:
            return None
        indices = np.asarray(leaf.indices, dtype=np.intp)
        features = np.concatenate([self._X[indices], x[None, :]], axis=0)
        targets = np.concatenate([self._y[indices], [y]])
        targets_sq = targets * targets
        dims = x.shape[0]
        min_leaf = config.min_leaf
        prior = self._prior
        best: Optional[Tuple[float, int, float]] = None
        for _ in range(config.n_split_candidates):
            dim = int(self._rng.integers(dims))
            column = features[:, dim]
            values = np.unique(column)
            if values.size < 2:
                continue
            cut_index = int(self._rng.integers(values.size - 1))
            threshold = 0.5 * (float(values[cut_index]) + float(values[cut_index + 1]))
            left_mask = column <= threshold
            n_left = int(left_mask.sum())
            n_right = n_points - n_left
            if n_left < min_leaf or n_right < min_leaf:
                continue
            right_mask = ~left_mask
            score = log_marginal_likelihood_from_stats(
                prior,
                n_left,
                _sequential_sum(targets[left_mask]),
                _sequential_sum(targets_sq[left_mask]),
            ) + log_marginal_likelihood_from_stats(
                prior,
                n_right,
                _sequential_sum(targets[right_mask]),
                _sequential_sum(targets_sq[right_mask]),
            )
            if best is None or score > best[0]:
                best = (score, dim, threshold)
        if best is None:
            return None
        _, dim, threshold = best
        old_left_mask = self._X[indices, dim] <= threshold
        left_indices = [int(i) for i in indices[old_left_mask]]
        right_indices = [int(i) for i in indices[~old_left_mask]]
        left_targets = self._y[indices[old_left_mask]]
        right_targets = self._y[indices[~old_left_mask]]
        if x[dim] <= threshold:
            left_targets = np.append(left_targets, y)
        else:
            right_targets = np.append(right_targets, y)
        left_model = GaussianLeafModel.from_sufficient_stats(
            self._prior,
            left_targets.size,
            _sequential_sum(left_targets),
            _sequential_sum(left_targets * left_targets),
        )
        right_model = GaussianLeafModel.from_sufficient_stats(
            self._prior,
            right_targets.size,
            _sequential_sum(right_targets),
            _sequential_sum(right_targets * right_targets),
        )
        return dim, threshold, left_model, right_model, left_indices, right_indices

    def _apply_grow(
        self,
        leaf: _Node,
        proposal: Tuple[int, float, GaussianLeafModel, GaussianLeafModel, List[int], List[int]],
        index: int,
    ) -> None:
        dim, threshold, left_model, right_model, left_indices, right_indices = proposal
        assert self._X is not None
        x = self._X[index]
        if x[dim] <= threshold:
            left_indices = left_indices + [index]
        else:
            right_indices = right_indices + [index]
        left_child = _Node(leaf.depth + 1)
        left_child.leaf = left_model
        left_child.indices = left_indices
        right_child = _Node(leaf.depth + 1)
        right_child.leaf = right_model
        right_child.indices = right_indices
        leaf.leaf = None
        leaf.indices = []
        leaf.split_dim = dim
        leaf.split_value = threshold
        leaf.left = left_child
        leaf.right = right_child

    def _apply_prune(
        self,
        root: _Node,
        parent: _Node,
        leaf: _Node,
        sibling: _Node,
        x: np.ndarray,
        y: float,
        index: int,
    ) -> _Node:
        assert leaf.leaf is not None and sibling.leaf is not None
        merged_model = leaf.leaf.merge(sibling.leaf)
        merged_model.add(y)
        merged_indices = leaf.indices + sibling.indices + [index]
        parent.split_dim = None
        parent.split_value = 0.0
        parent.left = None
        parent.right = None
        parent.leaf = merged_model
        parent.indices = merged_indices
        return root
