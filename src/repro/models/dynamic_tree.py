"""Dynamic trees for sequential regression with uncertainty.

This is a from-scratch implementation of the model the paper uses (via the
R ``dynaTree`` package): the *dynamic tree* of Taddy, Gramacy & Polson
(2011).  A dynamic tree is a Bayesian regression tree whose posterior is
tracked by a set of particles; when a new observation ``(x, y)`` arrives,
each particle applies one of three *local* moves to the leaf containing
``x`` — **stay** (leave the structure unchanged), **grow** (split the leaf
in two) or **prune** (collapse the leaf's parent back into a leaf) — chosen
stochastically according to its posterior weight (Figure 4 of the paper).
Particles are reweighted by how well they predicted ``y`` and resampled when
the effective sample size degrades.

The properties the paper relies on are all preserved here:

* **sequential updates** — absorbing one observation costs O(depth) plus a
  constant amount of sufficient-statistics work per particle, so there is no
  model rebuild inside the active-learning loop;
* **predictive uncertainty** — every prediction is a mixture (over
  particles) of Student-t posterior predictive distributions, giving a
  calibrated variance for the ALM/ALC acquisition functions;
* **noise robustness** — leaves carry full conjugate posteriors rather than
  point estimates, and structural moves are scored by marginal likelihood,
  so a single noisy observation cannot commit the model to a bad split.

Leaves use the constant (Gaussian) model of :mod:`repro.models.leaf`; the
tree prior is the standard Chipman-George-McCulloch
``p_split(depth) = alpha * (1 + depth)^-beta``.

Prediction and the ALC score are served from per-particle
:class:`~repro.models.flat_tree.FlatTree` compilations — flat NumPy arrays
descended level-by-level for a whole batch of rows at once — rather than
per-row Python ``descend()`` loops.  A particle's flat tree is recompiled
only when a grow/prune move changes its structure; stay moves patch the one
affected leaf's cached statistics in place.  The per-node reference
implementations are kept (``predict_reference`` and
``expected_average_variance_reference``, selected by
``DynamicTreeConfig(vectorized=False)``) both as executable documentation
and as the oracle for the equivalence tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import Prediction, SurrogateModel
from .flat_tree import FlatForest, FlatTree
from .leaf import GaussianLeafModel, NIGPrior, log_marginal_likelihood_from_stats

__all__ = ["DynamicTreeConfig", "DynamicTreeRegressor"]


def _sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float sum, bit-identical to a Python accumulation loop.

    ``np.sum`` uses pairwise summation, which rounds differently from the
    sequential ``+=`` loops this module's scalar reference paths (and the
    original implementation) use.  ``np.cumsum`` *is* sequential, so its last
    element reproduces the scalar accumulation exactly — keeping vectorized
    and reference trajectories bitwise identical, which matters because the
    particle moves are sampled from scores built on these sums.
    """
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


@dataclass(frozen=True)
class DynamicTreeConfig:
    """Hyper-parameters of the dynamic tree model.

    The paper uses the ``dynaTree`` defaults with 5 000 particles; pure
    Python cannot afford that many, but because the decision spaces are
    low-dimensional and the acquisition only needs well-ranked variances a
    few dozen particles behave almost identically (this is exercised by an
    ablation benchmark).

    ``vectorized`` selects the flat-array tree kernel for ``predict`` and
    ``expected_average_variance``; disabling it falls back to the per-node
    reference implementation (slow — only useful for equivalence testing).
    """

    n_particles: int = 40
    split_alpha: float = 0.95
    split_beta: float = 2.0
    min_leaf: int = 2
    n_split_candidates: int = 12
    resample_threshold: float = 0.5
    prior_kappa: float = 0.1
    prior_alpha: float = 3.0
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.n_particles < 1:
            raise ValueError("n_particles must be at least 1")
        if not 0.0 < self.split_alpha < 1.0:
            raise ValueError("split_alpha must be in (0, 1)")
        if self.split_beta < 0:
            raise ValueError("split_beta cannot be negative")
        if self.min_leaf < 1:
            raise ValueError("min_leaf must be at least 1")
        if self.n_split_candidates < 1:
            raise ValueError("n_split_candidates must be at least 1")
        if not 0.0 < self.resample_threshold <= 1.0:
            raise ValueError("resample_threshold must be in (0, 1]")

    def split_probability(self, depth: int) -> float:
        """CGM tree prior: probability that a node at ``depth`` is split."""
        return self.split_alpha * (1.0 + depth) ** (-self.split_beta)


class _Node:
    """One node of a particle's tree.

    A node is either internal (``split_dim``/``split_value`` set, ``left``
    and ``right`` children) or a leaf (``leaf`` model plus the indices of the
    observations it contains).
    """

    __slots__ = ("depth", "split_dim", "split_value", "left", "right", "leaf", "indices")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.split_dim: Optional[int] = None
        self.split_value: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.leaf: Optional[GaussianLeafModel] = None
        self.indices: List[int] = []

    @property
    def is_leaf(self) -> bool:
        return self.leaf is not None

    def copy(self) -> "_Node":
        clone = _Node(self.depth)
        clone.split_dim = self.split_dim
        clone.split_value = self.split_value
        if self.leaf is not None:
            clone.leaf = self.leaf.copy()
            clone.indices = list(self.indices)
        if self.left is not None:
            clone.left = self.left.copy()
        if self.right is not None:
            clone.right = self.right.copy()
        return clone

    def descend(self, x: np.ndarray) -> "_Node":
        """The leaf whose region contains ``x``."""
        node = self
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            if x[node.split_dim] <= node.split_value:
                node = node.left
            else:
                node = node.right
        return node

    def descend_with_parent(
        self, x: np.ndarray
    ) -> Tuple["_Node", Optional["_Node"]]:
        """The leaf containing ``x`` together with its parent (``None`` at the root)."""
        parent: Optional[_Node] = None
        node = self
        while not node.is_leaf:
            parent = node
            assert node.left is not None and node.right is not None
            if x[node.split_dim] <= node.split_value:
                node = node.left
            else:
                node = node.right
        return node, parent

    def leaves(self) -> List["_Node"]:
        if self.is_leaf:
            return [self]
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()


class DynamicTreeRegressor(SurrogateModel):
    """Particle-learning dynamic tree regression."""

    def __init__(
        self,
        config: Optional[DynamicTreeConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._config = config if config is not None else DynamicTreeConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        # Training data lives in growing arrays so partition scans and grow
        # proposals can slice it without materialising Python tuples.
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._n = 0
        self._prior: Optional[NIGPrior] = None
        self._particles: List[_Node] = []
        # Lazily compiled FlatTree per particle; ``None`` marks "needs
        # recompilation" (fresh particle, or structure changed by grow/prune).
        self._flat: List[Optional[FlatTree]] = []
        # Concatenation of every particle's FlatTree, rebuilt lazily after
        # any update (the concatenated arrays snapshot the per-tree arrays,
        # so in-place leaf patches do not carry over).
        self._forest: Optional[FlatForest] = None

    # ----------------------------------------------------------- properties

    @property
    def config(self) -> DynamicTreeConfig:
        return self._config

    @property
    def training_size(self) -> int:
        return self._n

    @property
    def n_particles(self) -> int:
        return len(self._particles)

    def leaf_counts(self) -> List[int]:
        """Number of leaves in each particle (useful for diagnostics/tests)."""
        return [len(root.leaves()) for root in self._particles]

    # ------------------------------------------------------- data management

    def _append_observation(self, x: np.ndarray, y: float) -> int:
        """Store one observation, growing the buffers geometrically."""
        if self._X is None or self._y is None:
            capacity = 64
            self._X = np.empty((capacity, x.shape[0]), dtype=float)
            self._y = np.empty(capacity, dtype=float)
        elif self._n == self._X.shape[0]:
            self._X = np.concatenate([self._X, np.empty_like(self._X)], axis=0)
            self._y = np.concatenate([self._y, np.empty_like(self._y)])
        index = self._n
        self._X[index] = x
        self._y[index] = y
        self._n = index + 1
        return index

    # ------------------------------------------------------------- training

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Seed the model, then absorb the seed observations sequentially."""
        X = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and targets disagree on the number of rows")
        if X.shape[0] == 0:
            raise ValueError("fit() needs at least one observation")
        self._X = None
        self._y = None
        self._n = 0
        self._prior = NIGPrior.from_observations(
            y, kappa=self._config.prior_kappa, alpha=self._config.prior_alpha
        )
        self._particles = []
        self._flat = []
        self._forest = None
        for _ in range(self._config.n_particles):
            root = _Node(depth=0)
            root.leaf = GaussianLeafModel(self._prior)
            self._particles.append(root)
            self._flat.append(None)
        order = self._rng.permutation(X.shape[0])
        for index in order:
            self.update(X[index], float(y[index]))

    def update(self, features: np.ndarray, target: float) -> None:
        """Absorb one observation: reweight, resample, propagate every particle."""
        if self._prior is None or not self._particles:
            raise RuntimeError("the model must be seeded with fit() before update()")
        x = np.asarray(features, dtype=float).ravel()
        y = float(target)
        if self._n and self._X is not None:
            expected_dim = self._X.shape[1]
            if x.shape[0] != expected_dim:
                raise ValueError(
                    f"feature dimension mismatch: got {x.shape[0]}, expected {expected_dim}"
                )
        if self._n >= 1:
            self._resample(x, y)
        index = self._append_observation(x, y)
        self._forest = None
        for particle_index, root in enumerate(self._particles):
            new_root, structural, leaf = self._propagate(root, x, y, index)
            self._particles[particle_index] = new_root
            flat = self._flat[particle_index]
            if structural:
                self._flat[particle_index] = None
            elif flat is not None:
                # Stay move: the structure is intact, only the statistics of
                # the leaf containing ``x`` changed — patch them in place.
                assert leaf.leaf is not None
                flat.patch_leaf(
                    flat.route_one(x),
                    leaf.leaf.predictive_mean(),
                    leaf.leaf.predictive_variance(),
                    float(leaf.leaf.count),
                )

    # ----------------------------------------------------------- prediction

    def _flat_tree(self, particle_index: int) -> FlatTree:
        """The (lazily compiled) flat representation of one particle."""
        flat = self._flat[particle_index]
        if flat is None:
            flat = FlatTree.compile(self._particles[particle_index])
            self._flat[particle_index] = flat
        return flat

    def _ensure_forest(self) -> FlatForest:
        """The concatenated forest, recompiling stale particles as needed."""
        if self._forest is None:
            self._forest = FlatForest.from_trees(
                [self._flat_tree(i) for i in range(len(self._particles))]
            )
        return self._forest

    def predict(self, features: np.ndarray) -> Prediction:
        if not self._particles or not self._n:
            raise RuntimeError("the model has no training data yet")
        if not self._config.vectorized:
            return self.predict_reference(features)
        X = np.atleast_2d(np.asarray(features, dtype=float))
        count = float(len(self._particles))
        mean, variance = self._ensure_forest().predict_components(X)
        # cumsum(axis=0)[-1] accumulates over particles in the same sequential
        # order as the reference loop, keeping the result bit-identical.
        means = np.cumsum(mean, axis=0)[-1] / count
        second_moments = np.cumsum(variance + mean * mean, axis=0)[-1]
        variances = np.maximum(second_moments / count - means ** 2, 1e-18)
        return Prediction(mean=means, variance=variances)

    def predict_reference(self, features: np.ndarray) -> Prediction:
        """Per-node reference implementation of :meth:`predict`.

        Descends every row through every particle with Python loops; kept as
        the oracle the vectorized kernel is tested against.
        """
        if not self._particles or not self._n:
            raise RuntimeError("the model has no training data yet")
        X = np.atleast_2d(np.asarray(features, dtype=float))
        n = X.shape[0]
        means = np.zeros(n)
        second_moments = np.zeros(n)
        count = float(len(self._particles))
        for root in self._particles:
            for i in range(n):
                leaf = root.descend(X[i])
                assert leaf.leaf is not None
                mean = leaf.leaf.predictive_mean()
                var = leaf.leaf.predictive_variance()
                means[i] += mean
                second_moments[i] += var + mean * mean
        means /= count
        variances = np.maximum(second_moments / count - means ** 2, 1e-18)
        return Prediction(mean=means, variance=variances)

    def expected_average_variance(
        self, candidates: np.ndarray, reference: np.ndarray
    ) -> np.ndarray:
        """ALC-style score: average reference variance left after observing each candidate.

        For a constant-leaf tree, one extra observation at a candidate only
        sharpens the leaf that contains it.  The posterior predictive
        variance of a leaf with ``n`` observations and prior strength
        ``kappa`` shrinks by roughly a factor ``(n + kappa) / (n + kappa + 1)``
        when one more observation arrives, so the expected reduction at a
        reference point in the same leaf is ``variance / (n + kappa + 1)``.
        Averaging the remaining variance over the reference set and over
        particles gives the quantity Algorithm 1 minimises.

        Vectorized: per particle, the reference and candidate batches are
        routed to integer leaf ids in one pass each; the per-leaf reference
        variance mass is a ``bincount`` and the candidate reductions are
        gathers — no Python-level descent and no ``id(node)`` dictionaries.
        """
        if not self._particles or not self._n:
            raise RuntimeError("the model has no training data yet")
        if not self._config.vectorized:
            return self.expected_average_variance_reference(candidates, reference)
        C = np.atleast_2d(np.asarray(candidates, dtype=float))
        R = np.atleast_2d(np.asarray(reference, dtype=float))
        n_reference = R.shape[0]
        kappa = self._prior.kappa if self._prior is not None else 0.1
        forest = self._ensure_forest()
        # (n_particles, n_reference) global leaf ids; leaf ids never collide
        # across particles, so one bincount aggregates the per-leaf
        # reference-variance mass of the entire forest.
        reference_leaf_ids = forest.route(R)
        reference_variance = forest.leaf_variance[reference_leaf_ids]
        # Sequential (cumsum) accumulation keeps every score bit-identical to
        # the reference loop; bincount also adds weights in input order.
        base_total = np.cumsum(reference_variance, axis=1)[:, -1]
        variance_by_leaf = np.bincount(
            reference_leaf_ids.ravel(),
            weights=reference_variance.ravel(),
            minlength=forest.n_leaves,
        )
        candidate_leaf_ids = forest.route(C)
        shrink = 1.0 / (forest.leaf_count[candidate_leaf_ids] + kappa + 1.0)
        reduction = variance_by_leaf[candidate_leaf_ids] * shrink
        scores = np.cumsum((base_total[:, None] - reduction) / n_reference, axis=0)[-1]
        return scores / len(self._particles)

    def expected_average_variance_reference(
        self, candidates: np.ndarray, reference: np.ndarray
    ) -> np.ndarray:
        """Per-node reference implementation of :meth:`expected_average_variance`."""
        if not self._particles or not self._n:
            raise RuntimeError("the model has no training data yet")
        C = np.atleast_2d(np.asarray(candidates, dtype=float))
        R = np.atleast_2d(np.asarray(reference, dtype=float))
        n_candidates = C.shape[0]
        n_reference = R.shape[0]
        scores = np.zeros(n_candidates)
        kappa = self._prior.kappa if self._prior is not None else 0.1
        for root in self._particles:
            # Group the reference points by the leaf that contains them so
            # the per-candidate reduction is an array lookup rather than a
            # scan over the whole reference set.  Leaves are identified by
            # their position in the particle's leaf list.
            leaves = root.leaves()
            variance_by_leaf = np.zeros(len(leaves))
            base_total = 0.0
            for j in range(n_reference):
                leaf = root.descend(R[j])
                assert leaf.leaf is not None
                variance = leaf.leaf.predictive_variance()
                base_total += variance
                variance_by_leaf[leaves.index(leaf)] += variance
            for i in range(n_candidates):
                candidate_leaf = root.descend(C[i])
                assert candidate_leaf.leaf is not None
                n_leaf = candidate_leaf.leaf.count
                shrink = 1.0 / (n_leaf + kappa + 1.0)
                reduction = variance_by_leaf[leaves.index(candidate_leaf)] * shrink
                scores[i] += (base_total - reduction) / n_reference
        return scores / len(self._particles)

    # ------------------------------------------------------------ internals

    def _predictive_logpdf(self, root: _Node, x: np.ndarray, y: float) -> float:
        leaf = root.descend(x)
        assert leaf.leaf is not None
        return leaf.leaf.predictive_logpdf(y)

    def _resample(self, x: np.ndarray, y: float) -> None:
        """Reweight particles by predictive fit and resample if degenerate."""
        log_weights = np.array(
            [self._predictive_logpdf(root, x, y) for root in self._particles]
        )
        log_weights -= log_weights.max()
        weights = np.exp(log_weights)
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            return
        weights /= total
        effective = 1.0 / float(np.sum(weights ** 2))
        if effective >= self._config.resample_threshold * len(self._particles):
            return
        positions = (
            self._rng.random() + np.arange(len(self._particles))
        ) / len(self._particles)
        cumulative = np.cumsum(weights)
        chosen_indices: List[int] = []
        j = 0
        for position in positions:
            while cumulative[j] < position and j < len(cumulative) - 1:
                j += 1
            chosen_indices.append(j)
        # Deduplicate by particle *index*: the first occurrence keeps the
        # original tree (and its flat compilation), later occurrences get
        # independent copies.
        new_particles: List[_Node] = []
        new_flat: List[Optional[FlatTree]] = []
        used_original: set[int] = set()
        for j in chosen_indices:
            flat = self._flat[j]
            if j not in used_original:
                new_particles.append(self._particles[j])
                new_flat.append(flat)
                used_original.add(j)
            else:
                new_particles.append(self._particles[j].copy())
                new_flat.append(flat.copy() if flat is not None else None)
        self._particles = new_particles
        self._flat = new_flat

    def _propagate(
        self, root: _Node, x: np.ndarray, y: float, index: int
    ) -> Tuple[_Node, bool, _Node]:
        """Apply one stochastic stay/grow/prune move at the leaf containing ``x``.

        Returns ``(new_root, structural_change, touched_leaf)``;
        ``structural_change`` is true for grow/prune moves (the particle's
        flat compilation must be rebuilt) and false for stay moves (only
        ``touched_leaf``'s statistics changed).
        """
        leaf, parent = root.descend_with_parent(x)
        assert leaf.leaf is not None and self._prior is not None
        config = self._config

        # All scores are computed over the subtree rooted at the leaf's
        # parent (or at the leaf itself when it is the root), so the three
        # alternatives are directly comparable posteriors of that subtree.
        sibling: Optional[_Node] = None
        if parent is not None:
            sibling = parent.right if parent.left is leaf else parent.left

        leaf_with_new = leaf.leaf.copy()
        leaf_with_new.add(y)
        p_split_here = config.split_probability(leaf.depth)
        stay_score = math.log1p(-p_split_here) + leaf_with_new.log_marginal_likelihood()

        grow_proposal = self._propose_grow(leaf, x, y)
        grow_score = -math.inf
        if grow_proposal is not None:
            _, _, left_model, right_model, _, _ = grow_proposal
            p_split_child = config.split_probability(leaf.depth + 1)
            grow_score = (
                math.log(p_split_here)
                + 2.0 * math.log1p(-p_split_child)
                + left_model.log_marginal_likelihood()
                + right_model.log_marginal_likelihood()
            )

        prune_score = -math.inf
        prune_possible = (
            parent is not None and sibling is not None and sibling.is_leaf
        )
        common = 0.0
        if prune_possible:
            assert parent is not None and sibling is not None and sibling.leaf is not None
            p_split_parent = config.split_probability(parent.depth)
            p_split_sibling = config.split_probability(sibling.depth)
            # Common factor shared by the stay and grow alternatives when the
            # comparison is lifted to the parent subtree.
            common = (
                math.log(p_split_parent)
                + math.log1p(-p_split_sibling)
                + sibling.leaf.log_marginal_likelihood()
            )
            merged = leaf_with_new.merge(sibling.leaf)
            prune_score = math.log1p(-p_split_parent) + merged.log_marginal_likelihood()
            stay_score += common
            grow_score = grow_score + common if math.isfinite(grow_score) else grow_score

        scores = np.array([stay_score, grow_score, prune_score])
        finite = np.isfinite(scores)
        probabilities = np.zeros(3)
        shifted = scores[finite] - scores[finite].max()
        probabilities[finite] = np.exp(shifted)
        probabilities /= probabilities.sum()
        move = int(self._rng.choice(3, p=probabilities))

        if move == 1 and grow_proposal is not None:
            self._apply_grow(leaf, grow_proposal, index)
            return root, True, leaf
        if move == 2 and prune_possible:
            assert parent is not None and sibling is not None
            new_root = self._apply_prune(root, parent, leaf, sibling, x, y, index)
            return new_root, True, parent
        leaf.leaf.add(y)
        leaf.indices.append(index)
        return root, False, leaf

    def _propose_grow(
        self, leaf: _Node, x: np.ndarray, y: float
    ) -> Optional[Tuple[int, float, GaussianLeafModel, GaussianLeafModel, List[int], List[int]]]:
        """Propose the best of a few random splits of ``leaf`` (plus the new point).

        Returns ``(dim, threshold, left_model, right_model, left_indices,
        right_indices)`` where the new point is *not* included in the index
        lists (it is added by :meth:`_apply_grow`), or ``None`` when no valid
        split exists (too few points, or no variation in any dimension).

        The partition scans are vectorized: the leaf's observations are
        sliced out of the training buffers once, and each candidate split is
        scored from mask reductions over that slice instead of per-point
        Python loops.
        """
        assert self._prior is not None and self._X is not None and self._y is not None
        config = self._config
        n_points = len(leaf.indices) + 1
        if n_points < 2 * config.min_leaf:
            return None
        indices = np.asarray(leaf.indices, dtype=np.intp)
        features = np.concatenate([self._X[indices], x[None, :]], axis=0)
        targets = np.concatenate([self._y[indices], [y]])
        targets_sq = targets * targets
        dims = x.shape[0]
        min_leaf = config.min_leaf
        prior = self._prior
        best: Optional[Tuple[float, int, float]] = None
        for _ in range(config.n_split_candidates):
            dim = int(self._rng.integers(dims))
            column = features[:, dim]
            values = np.unique(column)
            if values.size < 2:
                continue
            cut_index = int(self._rng.integers(values.size - 1))
            threshold = 0.5 * (float(values[cut_index]) + float(values[cut_index + 1]))
            left_mask = column <= threshold
            n_left = int(left_mask.sum())
            n_right = n_points - n_left
            if n_left < min_leaf or n_right < min_leaf:
                continue
            right_mask = ~left_mask
            score = log_marginal_likelihood_from_stats(
                prior,
                n_left,
                _sequential_sum(targets[left_mask]),
                _sequential_sum(targets_sq[left_mask]),
            ) + log_marginal_likelihood_from_stats(
                prior,
                n_right,
                _sequential_sum(targets[right_mask]),
                _sequential_sum(targets_sq[right_mask]),
            )
            if best is None or score > best[0]:
                best = (score, dim, threshold)
        if best is None:
            return None
        _, dim, threshold = best
        old_left_mask = self._X[indices, dim] <= threshold
        left_indices = [int(i) for i in indices[old_left_mask]]
        right_indices = [int(i) for i in indices[~old_left_mask]]
        left_targets = self._y[indices[old_left_mask]]
        right_targets = self._y[indices[~old_left_mask]]
        if x[dim] <= threshold:
            left_targets = np.append(left_targets, y)
        else:
            right_targets = np.append(right_targets, y)
        left_model = GaussianLeafModel.from_sufficient_stats(
            self._prior,
            left_targets.size,
            _sequential_sum(left_targets),
            _sequential_sum(left_targets * left_targets),
        )
        right_model = GaussianLeafModel.from_sufficient_stats(
            self._prior,
            right_targets.size,
            _sequential_sum(right_targets),
            _sequential_sum(right_targets * right_targets),
        )
        return dim, threshold, left_model, right_model, left_indices, right_indices

    def _apply_grow(
        self,
        leaf: _Node,
        proposal: Tuple[int, float, GaussianLeafModel, GaussianLeafModel, List[int], List[int]],
        index: int,
    ) -> None:
        dim, threshold, left_model, right_model, left_indices, right_indices = proposal
        assert self._X is not None
        x = self._X[index]
        if x[dim] <= threshold:
            left_indices = left_indices + [index]
        else:
            right_indices = right_indices + [index]
        left_child = _Node(leaf.depth + 1)
        left_child.leaf = left_model
        left_child.indices = left_indices
        right_child = _Node(leaf.depth + 1)
        right_child.leaf = right_model
        right_child.indices = right_indices
        leaf.leaf = None
        leaf.indices = []
        leaf.split_dim = dim
        leaf.split_value = threshold
        leaf.left = left_child
        leaf.right = right_child

    def _apply_prune(
        self,
        root: _Node,
        parent: _Node,
        leaf: _Node,
        sibling: _Node,
        x: np.ndarray,
        y: float,
        index: int,
    ) -> _Node:
        assert leaf.leaf is not None and sibling.leaf is not None
        merged_model = leaf.leaf.merge(sibling.leaf)
        merged_model.add(y)
        merged_indices = leaf.indices + sibling.indices + [index]
        parent.split_dim = None
        parent.split_value = 0.0
        parent.left = None
        parent.right = None
        parent.leaf = merged_model
        parent.indices = merged_indices
        return root
