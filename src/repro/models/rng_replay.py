"""Bulk replay of ``numpy.random.Generator`` scalar draws.

The batched SMC update must consume the RNG stream *exactly* like the
per-particle reference loop — the particle moves are sampled, so one extra
or missing draw forks every seeded trajectory that follows.  That rules out
``Generator.integers(..., size=n)`` batching (the grow-proposal draws
interleave data-dependent bounds), and scalar ``Generator`` calls cost
~1.4 µs each in dispatch overhead — at 5 000 particles × 25 draws per
update, the draws alone would dominate the update.

:class:`ReplayDraws` removes the dispatch cost while preserving the stream
bit-for-bit: it snapshots the bit-generator state, pulls the raw 64-bit
outputs in bulk via ``BitGenerator.random_raw`` and replays numpy's own
scalar algorithms in Python —

* ``integers(bound)`` (``bound <= 2**32``): Lemire's bounded rejection on
  32-bit halves, low half first, with the *persistent* spare-half buffer
  that numpy keeps in the bit-generator state (``has_uint32``/``uinteger``);
* ``random()``: ``(next_uint64 >> 11) * 2**-53``.

On :meth:`end` the bit generator is restored to its snapshot, advanced by
exactly the number of raws consumed, and the spare-half buffer is written
back — so ``Generator`` calls made afterwards (by the learner, by the
reference path, by user code) continue the stream as if every replayed draw
had been a real ``Generator`` call.  The replay is verified against
``Generator`` behaviour by the equivalence tests; it supports the
PCG64-family bit generators (64-bit raws + ``advance``), and
:meth:`begin` returns ``False`` for anything else so callers can fall back
to plain ``Generator`` calls.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["ReplayDraws", "GeneratorDraws"]

_MASK32 = (1 << 32) - 1
_SUPPORTED = ("PCG64", "PCG64DXSM")


class GeneratorDraws:
    """Scalar-draw interface backed by plain ``Generator`` calls.

    The fallback for bit generators :class:`ReplayDraws` does not support:
    same stream, same values, just without the bulk-replay speedup.
    """

    __slots__ = ("_rng",)

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def integers(self, bound: int) -> int:
        return int(self._rng.integers(bound))

    def random(self) -> float:
        return self._rng.random()

    def draw_candidates(
        self, dims: int, n_unique: Sequence[int], count: int
    ) -> Tuple[List[int], List[int]]:
        """The dynamic tree's grow-proposal draw sequence for one particle.

        ``count`` times: draw a dimension, and — when that dimension has at
        least two distinct values (``n_unique``) — a cut index below
        ``n_unique[dim] - 1``.  Returns the kept ``(dims, cuts)`` pairs.
        """
        rng = self._rng
        out_dims: List[int] = []
        out_cuts: List[int] = []
        for _ in range(count):
            dim = int(rng.integers(dims))
            n_values = n_unique[dim]
            if n_values < 2:
                continue
            out_dims.append(dim)
            out_cuts.append(int(rng.integers(n_values - 1)))
        return out_dims, out_cuts


class ReplayDraws:
    """Replays a ``Generator``'s scalar draw stream from bulk raw output."""

    __slots__ = (
        "_bitgen",
        "_raws",
        "_cursor",
        "_start_state",
        "_buffer",
        "_has_buffer",
    )

    def __init__(self, rng: np.random.Generator) -> None:
        self._bitgen = rng.bit_generator
        self._raws: List[int] = []
        self._cursor = 0
        self._start_state = None
        self._buffer = 0
        self._has_buffer = False

    def begin(self, expected: int) -> bool:
        """Snapshot the generator and prefill ~``expected`` raw draws.

        Returns ``False`` (and touches nothing) when the bit generator is
        not a supported 64-bit-raw type.  Overshooting ``expected`` is
        harmless — :meth:`end` rewinds to the snapshot and advances by the
        *consumed* count only.
        """
        state = self._bitgen.state
        if state.get("bit_generator") not in _SUPPORTED:
            return False
        self._start_state = state
        self._buffer = int(state["uinteger"])
        self._has_buffer = bool(state["has_uint32"])
        self._raws = self._bitgen.random_raw(max(expected, 64)).tolist()
        self._cursor = 0
        return True

    def _next_raw(self) -> int:
        cursor = self._cursor
        raws = self._raws
        if cursor >= len(raws):
            raws.extend(self._bitgen.random_raw(len(raws)).tolist())
        value = raws[cursor]
        self._cursor = cursor + 1
        return value

    def _next_half(self) -> int:
        """numpy's buffered ``next_uint32``: low half first, spare kept."""
        if self._has_buffer:
            self._has_buffer = False
            return self._buffer
        raw = self._next_raw()
        self._buffer = raw >> 32
        self._has_buffer = True
        return raw & _MASK32

    def integers(self, bound: int) -> int:
        """``int(Generator.integers(bound))`` for ``1 <= bound <= 2**32``."""
        rng = bound - 1
        if rng == 0:
            return 0
        # Lemire bounded rejection on 32-bit halves (numpy's
        # buffered_bounded_lemire_uint32): the rejection threshold is only
        # computed on the rare short-leftover path.
        m = self._next_half() * bound
        leftover = m & _MASK32
        if leftover < bound:
            threshold = (_MASK32 - rng) % bound
            while leftover < threshold:
                m = self._next_half() * bound
                leftover = m & _MASK32
        return m >> 32

    def random(self) -> float:
        """``Generator.random()``: one raw, top 53 bits, scaled exactly."""
        return (self._next_raw() >> 11) * (1.0 / 9007199254740992.0)

    def draw_candidates(
        self, dims: int, n_unique: Sequence[int], count: int
    ) -> Tuple[List[int], List[int]]:
        """Fused :meth:`integers` loop for the grow-proposal draw sequence.

        Semantically ``count`` iterations of "draw a dimension; when it has
        at least two distinct values, draw a cut index" — exactly the calls
        :class:`GeneratorDraws` makes — but with the replay cursor and
        spare-half buffer kept in locals across the whole loop, because
        this sequence accounts for nearly all scalar draws the dynamic tree
        makes (two per split candidate per particle per update).
        """
        raws = self._raws
        cursor = self._cursor
        buffer = self._buffer
        has_buffer = self._has_buffer
        mask32 = _MASK32
        dim_rng = dims - 1
        out_dims: List[int] = []
        out_cuts: List[int] = []
        for _ in range(count):
            if dim_rng == 0:
                dim = 0
            else:
                if has_buffer:
                    half = buffer
                    has_buffer = False
                else:
                    if cursor >= len(raws):
                        raws.extend(self._bitgen.random_raw(len(raws)).tolist())
                    raw = raws[cursor]
                    cursor += 1
                    buffer = raw >> 32
                    has_buffer = True
                    half = raw & mask32
                m = half * dims
                leftover = m & mask32
                if leftover < dims:
                    threshold = (mask32 - dim_rng) % dims
                    while leftover < threshold:
                        if has_buffer:
                            half = buffer
                            has_buffer = False
                        else:
                            if cursor >= len(raws):
                                raws.extend(
                                    self._bitgen.random_raw(len(raws)).tolist()
                                )
                            raw = raws[cursor]
                            cursor += 1
                            buffer = raw >> 32
                            has_buffer = True
                            half = raw & mask32
                        m = half * dims
                        leftover = m & mask32
                dim = m >> 32
            n_values = n_unique[dim]
            if n_values < 2:
                continue
            bound = n_values - 1
            if bound == 1:
                cut = 0
            else:
                if has_buffer:
                    half = buffer
                    has_buffer = False
                else:
                    if cursor >= len(raws):
                        raws.extend(self._bitgen.random_raw(len(raws)).tolist())
                    raw = raws[cursor]
                    cursor += 1
                    buffer = raw >> 32
                    has_buffer = True
                    half = raw & mask32
                m = half * bound
                leftover = m & mask32
                if leftover < bound:
                    threshold = (mask32 - (bound - 1)) % bound
                    while leftover < threshold:
                        if has_buffer:
                            half = buffer
                            has_buffer = False
                        else:
                            if cursor >= len(raws):
                                raws.extend(
                                    self._bitgen.random_raw(len(raws)).tolist()
                                )
                            raw = raws[cursor]
                            cursor += 1
                            buffer = raw >> 32
                            has_buffer = True
                            half = raw & mask32
                        m = half * bound
                        leftover = m & mask32
                cut = m >> 32
            out_dims.append(dim)
            out_cuts.append(cut)
        self._cursor = cursor
        self._buffer = buffer
        self._has_buffer = has_buffer
        return out_dims, out_cuts

    def draw_candidates_batch(
        self,
        dims: int,
        n_unique: np.ndarray,
        grow: np.ndarray,
        count: int,
    ):
        """Vectorized phase-1c draw stream: per particle, ``count``
        grow-proposal draws when ``grow`` is set, then the move uniform.

        The scalar stream has a fixed raw-draw layout whenever three
        assumptions hold: no Lemire rejection fires, no drawn dimension is
        skipped (``n_unique < 2``), and no cut draw hits the ``bound == 1``
        shortcut — then every growing particle consumes exactly ``count``
        raws (two 32-bit halves per draw, so the spare-half parity returns
        to its starting value at every particle boundary) plus one full raw
        for the uniform, and non-growing particles consume one raw.  This
        method *optimistically* decodes the whole stream under that layout
        and then checks the assumptions draw-by-draw: the conservative
        no-rejection test is ``leftover >= bound`` (the true threshold is
        ``< bound``), and the skip/shortcut tests require ``n_unique >= 3``
        on every drawn dimension.  Particles from the first violating one
        onward are replayed through the scalar loop from a correctly
        restored cursor/buffer, so the result is always bit-identical to
        per-particle :meth:`draw_candidates` / :meth:`random` calls.

        ``n_unique`` is an ``(n_particles, dims)`` integer array; ``grow``
        is a boolean vector.  Returns ``(cand_particle, cand_slot,
        cand_dim, cand_cut, uniforms)`` as arrays matching the flat-list
        layout the scalar loop produces.
        """
        n_particles = int(grow.shape[0])
        k = count
        need = np.where(grow, k + 1, 1).astype(np.intp)
        offs = np.cumsum(need) - need
        total = int(offs[-1] + need[-1]) if n_particles else 0
        cursor = self._cursor
        raws_list = self._raws
        required = cursor + total
        while len(raws_list) < required:
            raws_list.extend(
                self._bitgen.random_raw(
                    max(len(raws_list), required - len(raws_list))
                ).tolist()
            )
        raws = np.asarray(raws_list[cursor:required], dtype=np.uint64)
        growers = np.flatnonzero(grow)
        n_grow = int(growers.shape[0])
        mask32 = np.uint64(_MASK32)
        thirty_two = np.uint64(32)
        g = raws[offs[growers][:, None] + np.arange(k, dtype=np.intp)[None, :]]
        if self._has_buffer:
            # Halves per grower: [carry, low(r0), high(r0), ..., low(r_last)]
            # — dims take the even slots, cuts the odd ones; the carry chains
            # from the previous grower's final high half (uniform draws in
            # between consume full raws and never touch the buffer).
            high = g >> thirty_two
            if n_grow:
                carries = np.empty(n_grow, dtype=np.uint64)
                carries[0] = self._buffer
                carries[1:] = high[:-1, k - 1]
                dim_halves = np.concatenate([carries[:, None], high[:, :-1]], axis=1)
            else:
                dim_halves = g
            cut_halves = g & mask32
        else:
            dim_halves = g & mask32
            cut_halves = g >> thirty_two
        dims64 = np.uint64(dims)
        m_dim = dim_halves * dims64
        dim_drawn = (m_dim >> thirty_two).astype(np.intp)
        ok = (m_dim & mask32) >= dims64
        n_vals = n_unique[growers[:, None], dim_drawn].astype(np.int64)
        ok &= n_vals >= 3
        bounds = (n_vals - 1).astype(np.uint64)
        m_cut = cut_halves * bounds
        cuts = (m_cut >> thirty_two).astype(np.intp)
        ok &= (m_cut & mask32) >= bounds
        good = ok.all(axis=1)
        bad = np.flatnonzero(~good)
        if bad.size:
            j_stop = int(bad[0])
            p_stop = int(growers[j_stop])
        else:
            j_stop = n_grow
            p_stop = n_particles
        uniforms = np.empty(n_particles)
        if p_stop:
            upos = offs[:p_stop] + np.where(grow[:p_stop], k, 0)
            uniforms[:p_stop] = (raws[upos] >> np.uint64(11)) * (
                1.0 / 9007199254740992.0
            )
        consumed = total if p_stop == n_particles else int(offs[p_stop])
        self._cursor = cursor + consumed
        if self._has_buffer and j_stop:
            self._buffer = int(g[j_stop - 1, k - 1] >> thirty_two)
        cand_particle = np.repeat(growers[:j_stop], k)
        cand_slot = np.tile(np.arange(k, dtype=np.intp), j_stop)
        cand_dim = dim_drawn[:j_stop].reshape(-1)
        cand_cut = cuts[:j_stop].reshape(-1)
        if p_stop < n_particles:
            tail_p: List[int] = []
            tail_s: List[int] = []
            tail_d: List[int] = []
            tail_c: List[int] = []
            grow_list = grow.tolist()
            for i in range(p_stop, n_particles):
                if grow_list[i]:
                    d_i, c_i = self.draw_candidates(dims, n_unique[i].tolist(), k)
                    slot = len(d_i)
                    tail_p.extend([i] * slot)
                    tail_s.extend(range(slot))
                    tail_d.extend(d_i)
                    tail_c.extend(c_i)
                uniforms[i] = self.random()
            cand_particle = np.concatenate(
                [cand_particle, np.asarray(tail_p, dtype=np.intp)]
            )
            cand_slot = np.concatenate(
                [cand_slot, np.asarray(tail_s, dtype=np.intp)]
            )
            cand_dim = np.concatenate(
                [cand_dim, np.asarray(tail_d, dtype=np.intp)]
            )
            cand_cut = np.concatenate(
                [cand_cut, np.asarray(tail_c, dtype=np.intp)]
            )
        return cand_particle, cand_slot, cand_dim, cand_cut, uniforms

    def end(self) -> None:
        """Rewind to the snapshot, advance by the consumed raws, restore the buffer."""
        bitgen = self._bitgen
        assert self._start_state is not None
        bitgen.state = self._start_state
        if self._cursor:
            bitgen.advance(self._cursor)
        state = bitgen.state
        state["has_uint32"] = int(self._has_buffer)
        state["uinteger"] = int(self._buffer) if self._has_buffer else 0
        bitgen.state = state
        self._start_state = None
        self._raws = []
        self._cursor = 0
