"""Flattened-array representation of one particle's tree.

The dynamic tree spends essentially all of its prediction/acquisition time
descending trees: every ``predict()`` and every ALC score routes hundreds of
rows through every particle.  Doing that with per-row Python ``descend()``
loops costs a Python-level branch per (row, level, particle); compiling each
particle's ``_Node`` tree once into flat NumPy arrays turns the same work
into a handful of vectorized gathers per tree *level*.

:class:`FlatTree` stores, per node, ``split_dim`` (``-1`` for leaves),
``split_value`` and ``left``/``right`` child indices, and per *leaf* the
cached posterior-predictive mean, variance and observation count of its
:class:`~repro.models.leaf.GaussianLeafModel`.  :meth:`route` descends all
rows level-by-level with array ops and returns **stable integer leaf ids**
(positions in pre-order), which downstream code uses instead of fragile
``id(node)`` dictionary keys.

A flat tree stays valid as long as the particle's *structure* is unchanged:
a "stay" move only sharpens one leaf's sufficient statistics, which
:meth:`patch_leaf` mirrors in O(1) without recompiling; "grow"/"prune"
moves invalidate the compilation (the owner drops its cache and recompiles
lazily).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["FlatTree", "FlatForest"]


class FlatTree:
    """Array-of-structs compilation of one particle tree.

    Attributes
    ----------
    split_dim:
        ``(n_nodes,)`` int array; the splitting feature of internal nodes,
        ``-1`` for leaves.
    split_value:
        ``(n_nodes,)`` float array; the threshold of internal nodes.
    left, right:
        ``(n_nodes,)`` int arrays; child node indices (``-1`` for leaves).
    leaf_slot:
        ``(n_nodes,)`` int array mapping a node index to its leaf id
        (``-1`` for internal nodes).  Leaf ids number the leaves in
        pre-order, so they are stable for a given structure.
    leaf_mean, leaf_variance, leaf_count:
        ``(n_leaves,)`` float arrays of cached posterior-predictive
        quantities, one entry per leaf id.
    """

    __slots__ = (
        "split_dim",
        "split_value",
        "left",
        "right",
        "leaf_slot",
        "leaf_mean",
        "leaf_variance",
        "leaf_count",
        "n_nodes",
        "n_leaves",
    )

    def __init__(
        self,
        split_dim: np.ndarray,
        split_value: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        leaf_slot: np.ndarray,
        leaf_mean: np.ndarray,
        leaf_variance: np.ndarray,
        leaf_count: np.ndarray,
    ) -> None:
        self.split_dim = split_dim
        self.split_value = split_value
        self.left = left
        self.right = right
        self.leaf_slot = leaf_slot
        self.leaf_mean = leaf_mean
        self.leaf_variance = leaf_variance
        self.leaf_count = leaf_count
        self.n_nodes = int(split_dim.shape[0])
        self.n_leaves = int(leaf_mean.shape[0])

    # ---------------------------------------------------------- compilation

    @classmethod
    def compile(cls, root) -> "FlatTree":
        """Lower a ``_Node`` tree into flat arrays (pre-order numbering)."""
        split_dim: List[int] = []
        split_value: List[float] = []
        left: List[int] = []
        right: List[int] = []
        leaf_slot: List[int] = []
        leaf_mean: List[float] = []
        leaf_variance: List[float] = []
        leaf_count: List[float] = []

        def visit(node) -> int:
            index = len(split_dim)
            if node.leaf is not None:
                split_dim.append(-1)
                split_value.append(0.0)
                left.append(-1)
                right.append(-1)
                leaf_slot.append(len(leaf_mean))
                leaf_mean.append(node.leaf.predictive_mean())
                leaf_variance.append(node.leaf.predictive_variance())
                leaf_count.append(float(node.leaf.count))
            else:
                split_dim.append(int(node.split_dim))
                split_value.append(float(node.split_value))
                left.append(-1)
                right.append(-1)
                leaf_slot.append(-1)
                left[index] = visit(node.left)
                right[index] = visit(node.right)
            return index

        visit(root)
        return cls(
            split_dim=np.asarray(split_dim, dtype=np.intp),
            split_value=np.asarray(split_value, dtype=float),
            left=np.asarray(left, dtype=np.intp),
            right=np.asarray(right, dtype=np.intp),
            leaf_slot=np.asarray(leaf_slot, dtype=np.intp),
            leaf_mean=np.asarray(leaf_mean, dtype=float),
            leaf_variance=np.asarray(leaf_variance, dtype=float),
            leaf_count=np.asarray(leaf_count, dtype=float),
        )

    def copy(self) -> "FlatTree":
        """An independent copy (the leaf arrays are patched in place)."""
        return FlatTree(
            split_dim=self.split_dim.copy(),
            split_value=self.split_value.copy(),
            left=self.left.copy(),
            right=self.right.copy(),
            leaf_slot=self.leaf_slot.copy(),
            leaf_mean=self.leaf_mean.copy(),
            leaf_variance=self.leaf_variance.copy(),
            leaf_count=self.leaf_count.copy(),
        )

    # -------------------------------------------------------------- queries

    def route(self, X: np.ndarray) -> np.ndarray:
        """Leaf ids of every row of ``X``, descending level-by-level.

        All rows start at the root; at each iteration the rows still sitting
        on an internal node are compared against that node's threshold in
        one vectorized gather, and rows that reach a leaf drop out.  The
        loop count is the tree depth, not the number of rows.
        """
        X = np.atleast_2d(X)
        n = X.shape[0]
        nodes = np.zeros(n, dtype=np.intp)
        active = np.flatnonzero(self.split_dim[nodes] >= 0)
        while active.size:
            current = nodes[active]
            dims = self.split_dim[current]
            go_left = X[active, dims] <= self.split_value[current]
            nodes[active] = np.where(go_left, self.left[current], self.right[current])
            still_internal = self.split_dim[nodes[active]] >= 0
            active = active[still_internal]
        return self.leaf_slot[nodes]

    def route_one(self, x: np.ndarray) -> int:
        """Leaf id of a single feature vector (scalar descent, no row setup)."""
        index = 0
        split_dim = self.split_dim
        while split_dim[index] >= 0:
            if x[split_dim[index]] <= self.split_value[index]:
                index = int(self.left[index])
            else:
                index = int(self.right[index])
        return int(self.leaf_slot[index])

    def predict_components(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cached posterior-predictive ``(mean, variance)`` of every row."""
        leaf_ids = self.route(X)
        return self.leaf_mean[leaf_ids], self.leaf_variance[leaf_ids]

    # ------------------------------------------------------------- patching

    def patch_leaf(self, leaf_id: int, mean: float, variance: float, count: float) -> None:
        """Refresh one leaf's cached statistics after a "stay" move."""
        self.leaf_mean[leaf_id] = mean
        self.leaf_variance[leaf_id] = variance
        self.leaf_count[leaf_id] = count


class FlatForest:
    """All of a model's particle trees concatenated into one array set.

    Per-particle :class:`FlatTree` routing still pays a fixed NumPy
    dispatch cost per (particle, level); at bench scale (tens of particles,
    tens of rows) that overhead dominates.  The forest concatenates every
    particle's node and leaf arrays — child indices and leaf ids shifted by
    per-particle offsets — so one :meth:`route` call descends all
    ``n_particles × n_rows`` (particle, row) pairs together, and the array
    ops run over thousands of elements instead of dozens.

    Leaf ids returned by the forest are *global*: particle ``p``'s local
    leaf ``i`` becomes ``leaf_offsets[p] + i``.  ``n_leaves`` is the total,
    so a single ``bincount`` aggregates per-leaf statistics across the whole
    forest without per-particle bookkeeping.
    """

    __slots__ = (
        "split_dim",
        "split_value",
        "left",
        "right",
        "leaf_slot",
        "leaf_mean",
        "leaf_variance",
        "leaf_count",
        "roots",
        "leaf_offsets",
        "n_particles",
        "n_leaves",
    )

    def __init__(
        self,
        split_dim: np.ndarray,
        split_value: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        leaf_slot: np.ndarray,
        leaf_mean: np.ndarray,
        leaf_variance: np.ndarray,
        leaf_count: np.ndarray,
        roots: np.ndarray,
        leaf_offsets: np.ndarray,
    ) -> None:
        self.split_dim = split_dim
        self.split_value = split_value
        self.left = left
        self.right = right
        self.leaf_slot = leaf_slot
        self.leaf_mean = leaf_mean
        self.leaf_variance = leaf_variance
        self.leaf_count = leaf_count
        self.roots = roots
        self.leaf_offsets = leaf_offsets
        self.n_particles = int(roots.shape[0])
        self.n_leaves = int(leaf_mean.shape[0])

    @classmethod
    def from_trees(cls, trees: Sequence[FlatTree]) -> "FlatForest":
        """Concatenate per-particle compilations, shifting indices by offsets."""
        if not trees:
            raise ValueError("a forest needs at least one tree")
        node_counts = np.asarray([tree.n_nodes for tree in trees], dtype=np.intp)
        leaf_counts = np.asarray([tree.n_leaves for tree in trees], dtype=np.intp)
        node_offsets = np.concatenate([[0], np.cumsum(node_counts[:-1])]).astype(np.intp)
        leaf_offsets = np.concatenate([[0], np.cumsum(leaf_counts[:-1])]).astype(np.intp)
        left = np.concatenate(
            [
                np.where(tree.left >= 0, tree.left + offset, -1)
                for tree, offset in zip(trees, node_offsets)
            ]
        )
        right = np.concatenate(
            [
                np.where(tree.right >= 0, tree.right + offset, -1)
                for tree, offset in zip(trees, node_offsets)
            ]
        )
        leaf_slot = np.concatenate(
            [
                np.where(tree.leaf_slot >= 0, tree.leaf_slot + offset, -1)
                for tree, offset in zip(trees, leaf_offsets)
            ]
        )
        return cls(
            split_dim=np.concatenate([tree.split_dim for tree in trees]),
            split_value=np.concatenate([tree.split_value for tree in trees]),
            left=left,
            right=right,
            leaf_slot=leaf_slot,
            leaf_mean=np.concatenate([tree.leaf_mean for tree in trees]),
            leaf_variance=np.concatenate([tree.leaf_variance for tree in trees]),
            leaf_count=np.concatenate([tree.leaf_count for tree in trees]),
            roots=node_offsets,
            leaf_offsets=leaf_offsets,
        )

    def route(self, X: np.ndarray) -> np.ndarray:
        """Global leaf ids, shape ``(n_particles, n_rows)``.

        Every (particle, row) pair starts at that particle's root and
        descends level-by-level; pairs that reach a leaf drop out of the
        active set, so the loop count is the depth of the deepest particle.
        """
        X = np.atleast_2d(X)
        n = X.shape[0]
        nodes = np.repeat(self.roots, n)
        rows = np.tile(np.arange(n, dtype=np.intp), self.n_particles)
        active = np.flatnonzero(self.split_dim[nodes] >= 0)
        while active.size:
            current = nodes[active]
            dims = self.split_dim[current]
            go_left = X[rows[active], dims] <= self.split_value[current]
            nodes[active] = np.where(go_left, self.left[current], self.right[current])
            still_internal = self.split_dim[nodes[active]] >= 0
            active = active[still_internal]
        return self.leaf_slot[nodes].reshape(self.n_particles, n)

    def predict_components(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-particle predictive ``(mean, variance)``, each ``(n_particles, n_rows)``."""
        leaf_ids = self.route(X)
        return self.leaf_mean[leaf_ids], self.leaf_variance[leaf_ids]
