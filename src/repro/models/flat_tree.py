"""Flattened-array representation of one particle's tree.

The dynamic tree spends essentially all of its prediction/acquisition time
descending trees: every ``predict()`` and every ALC score routes hundreds of
rows through every particle.  Doing that with per-row Python ``descend()``
loops costs a Python-level branch per (row, level, particle); compiling each
particle's ``_Node`` tree once into flat NumPy arrays turns the same work
into a handful of vectorized gathers per tree *level*.

:class:`FlatTree` stores, per node, ``split_dim`` (``-1`` for leaves),
``split_value`` and ``left``/``right`` child indices, and per *leaf* a row
of cached posterior statistics in a
:class:`~repro.models.leaf.LeafCacheArrays`: the posterior-predictive mean,
variance and observation count of its
:class:`~repro.models.leaf.GaussianLeafModel`, plus the value-independent
terms of the predictive log-pdf consumed by the batched SMC reweight step.
:meth:`route` descends all rows level-by-level with array ops and returns
**stable integer leaf ids** (positions in pre-order), which downstream code
uses instead of fragile ``id(node)`` dictionary keys.

A flat tree stays valid as long as the particle's *structure* is unchanged:
a "stay" move only sharpens one leaf's sufficient statistics, which
:meth:`patch_leaf` mirrors in O(1) without recompiling; "grow"/"prune"
moves invalidate the compilation (the owner drops its cache and recompiles
lazily).  Trees duplicated by a particle resample share one compilation
copy-on-write: the owner copies the arrays only when a patch is about to
land on a still-shared tree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .leaf import GaussianLeafModel, LeafCacheArrays

__all__ = ["FlatTree", "FlatForest"]


class FlatTree:
    """Array-of-structs compilation of one particle tree.

    Attributes
    ----------
    split_dim:
        ``(n_nodes,)`` int array; the splitting feature of internal nodes,
        ``-1`` for leaves.
    split_value:
        ``(n_nodes,)`` float array; the threshold of internal nodes.
    left, right:
        ``(n_nodes,)`` int arrays; child node indices (``-1`` for leaves).
    leaf_slot:
        ``(n_nodes,)`` int array mapping a node index to its leaf id
        (``-1`` for internal nodes).  Leaf ids number the leaves in
        pre-order, so they are stable for a given structure.
    caches:
        :class:`~repro.models.leaf.LeafCacheArrays` with one row per leaf
        id (``leaf_mean``/``leaf_variance``/``leaf_count`` are views of it,
        kept for the established attribute surface).
    """

    __slots__ = (
        "split_dim",
        "split_value",
        "left",
        "right",
        "leaf_slot",
        "caches",
        "n_nodes",
        "n_leaves",
        "_nav",
    )

    def __init__(
        self,
        split_dim: np.ndarray,
        split_value: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        leaf_slot: np.ndarray,
        caches: LeafCacheArrays,
        nav: Optional[Tuple[list, list, list, list, list]] = None,
    ) -> None:
        self.split_dim = split_dim
        self.split_value = split_value
        self.left = left
        self.right = right
        self.leaf_slot = leaf_slot
        self.caches = caches
        self.n_nodes = int(split_dim.shape[0])
        self.n_leaves = len(caches)
        # Plain-list mirror of the structure arrays for scalar descents:
        # the batched reweight routes one point through every particle via
        # route_one, and Python-list indexing beats numpy scalar extraction
        # several-fold at that grain.  The structure never mutates after
        # compilation (grow/prune recompile), so copies share the mirror.
        self._nav = nav if nav is not None else (
            split_dim.tolist(),
            split_value.tolist(),
            left.tolist(),
            right.tolist(),
            leaf_slot.tolist(),
        )

    @property
    def leaf_mean(self) -> np.ndarray:
        return self.caches.mean

    @property
    def leaf_variance(self) -> np.ndarray:
        return self.caches.variance

    @property
    def leaf_count(self) -> np.ndarray:
        return self.caches.count

    # ---------------------------------------------------------- compilation

    @classmethod
    def compile(cls, root) -> "FlatTree":
        """Lower a ``_Node`` tree into flat arrays (pre-order numbering)."""
        split_dim: List[int] = []
        split_value: List[float] = []
        left: List[int] = []
        right: List[int] = []
        leaf_slot: List[int] = []
        leaves: List[GaussianLeafModel] = []

        def visit(node) -> int:
            index = len(split_dim)
            if node.leaf is not None:
                split_dim.append(-1)
                split_value.append(0.0)
                left.append(-1)
                right.append(-1)
                leaf_slot.append(len(leaves))
                leaves.append(node.leaf)
            else:
                split_dim.append(int(node.split_dim))
                split_value.append(float(node.split_value))
                left.append(-1)
                right.append(-1)
                leaf_slot.append(-1)
                left[index] = visit(node.left)
                right[index] = visit(node.right)
            return index

        visit(root)
        return cls(
            split_dim=np.asarray(split_dim, dtype=np.intp),
            split_value=np.asarray(split_value, dtype=float),
            left=np.asarray(left, dtype=np.intp),
            right=np.asarray(right, dtype=np.intp),
            leaf_slot=np.asarray(leaf_slot, dtype=np.intp),
            caches=LeafCacheArrays.from_leaves(leaves),
        )

    def copy(self) -> "FlatTree":
        """An independent copy of the mutable state.

        Only the leaf caches are ever patched in place, so the copy shares
        the (immutable-after-compile) structure arrays and the scalar
        navigation mirror — a resample duplicate costs one ``(n_leaves, 6)``
        array copy.
        """
        return FlatTree(
            split_dim=self.split_dim,
            split_value=self.split_value,
            left=self.left,
            right=self.right,
            leaf_slot=self.leaf_slot,
            caches=self.caches.copy(),
            nav=self._nav,
        )

    # -------------------------------------------------------------- queries

    def route(self, X: np.ndarray) -> np.ndarray:
        """Leaf ids of every row of ``X``, descending level-by-level.

        All rows start at the root; at each iteration the rows still sitting
        on an internal node are compared against that node's threshold in
        one vectorized gather, and rows that reach a leaf drop out.  The
        loop count is the tree depth, not the number of rows.
        """
        X = np.atleast_2d(X)
        n = X.shape[0]
        nodes = np.zeros(n, dtype=np.intp)
        active = np.flatnonzero(self.split_dim[nodes] >= 0)
        while active.size:
            current = nodes[active]
            dims = self.split_dim[current]
            go_left = X[active, dims] <= self.split_value[current]
            nodes[active] = np.where(go_left, self.left[current], self.right[current])
            still_internal = self.split_dim[nodes[active]] >= 0
            active = active[still_internal]
        return self.leaf_slot[nodes]

    def route_one(self, x) -> int:
        """Leaf id of a single feature vector (scalar descent, no row setup).

        ``x`` may be an array or a plain sequence; callers descending many
        trees (the batched reweight) pass ``x.tolist()`` once so every
        comparison is float-against-float.
        """
        split_dim, split_value, left, right, leaf_slot = self._nav
        index = 0
        dim = split_dim[0]
        while dim >= 0:
            index = left[index] if x[dim] <= split_value[index] else right[index]
            dim = split_dim[index]
        return leaf_slot[index]

    def predict_components(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cached posterior-predictive ``(mean, variance)`` of every row."""
        leaf_ids = self.route(X)
        return self.caches.mean[leaf_ids], self.caches.variance[leaf_ids]

    # ------------------------------------------------------------- patching

    def patch_leaf(self, leaf_id: int, leaf: GaussianLeafModel) -> None:
        """Refresh one leaf's cached statistics after a "stay" move."""
        self.caches.patch(leaf_id, leaf)


class FlatForest:
    """All of a model's particle trees concatenated into one array set.

    Per-particle :class:`FlatTree` routing still pays a fixed NumPy
    dispatch cost per (particle, level); at bench scale (tens of particles,
    tens of rows) that overhead dominates.  The forest concatenates every
    particle's node and leaf arrays — child indices and leaf ids shifted by
    per-particle offsets — so one :meth:`route` call descends all
    ``n_particles × n_rows`` (particle, row) pairs together, and the array
    ops run over thousands of elements instead of dozens.

    Leaf ids returned by the forest are *global*: particle ``p``'s local
    leaf ``i`` becomes ``leaf_offsets[p] + i``.  ``n_leaves`` is the total,
    so a single ``bincount`` aggregates per-leaf statistics across the whole
    forest without per-particle bookkeeping.
    """

    __slots__ = (
        "split_dim",
        "split_value",
        "left",
        "right",
        "leaf_slot",
        "caches",
        "roots",
        "leaf_offsets",
        "n_particles",
        "n_leaves",
    )

    def __init__(
        self,
        split_dim: np.ndarray,
        split_value: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        leaf_slot: np.ndarray,
        caches: LeafCacheArrays,
        roots: np.ndarray,
        leaf_offsets: np.ndarray,
    ) -> None:
        self.split_dim = split_dim
        self.split_value = split_value
        self.left = left
        self.right = right
        self.leaf_slot = leaf_slot
        self.caches = caches
        self.roots = roots
        self.leaf_offsets = leaf_offsets
        self.n_particles = int(roots.shape[0])
        self.n_leaves = len(caches)

    @property
    def leaf_mean(self) -> np.ndarray:
        return self.caches.mean

    @property
    def leaf_variance(self) -> np.ndarray:
        return self.caches.variance

    @property
    def leaf_count(self) -> np.ndarray:
        return self.caches.count

    @classmethod
    def from_trees(cls, trees: Sequence[FlatTree]) -> "FlatForest":
        """Concatenate per-particle compilations, shifting indices by offsets."""
        if not trees:
            raise ValueError("a forest needs at least one tree")
        node_counts = np.asarray([tree.n_nodes for tree in trees], dtype=np.intp)
        leaf_counts = np.asarray([tree.n_leaves for tree in trees], dtype=np.intp)
        node_offsets = np.concatenate([[0], np.cumsum(node_counts[:-1])]).astype(np.intp)
        leaf_offsets = np.concatenate([[0], np.cumsum(leaf_counts[:-1])]).astype(np.intp)
        # Shift child/leaf indices by their tree's offset in one vectorized
        # pass over the concatenated arrays (a per-tree np.where would pay
        # thousands of numpy dispatches per forest rebuild at paper-scale
        # particle counts).
        node_shift = np.repeat(node_offsets, node_counts)
        leaf_shift = np.repeat(leaf_offsets, node_counts)
        left = np.concatenate([tree.left for tree in trees])
        right = np.concatenate([tree.right for tree in trees])
        leaf_slot = np.concatenate([tree.leaf_slot for tree in trees])
        left = np.where(left >= 0, left + node_shift, -1)
        right = np.where(right >= 0, right + node_shift, -1)
        leaf_slot = np.where(leaf_slot >= 0, leaf_slot + leaf_shift, -1)
        return cls(
            split_dim=np.concatenate([tree.split_dim for tree in trees]),
            split_value=np.concatenate([tree.split_value for tree in trees]),
            left=left,
            right=right,
            leaf_slot=leaf_slot,
            caches=LeafCacheArrays.concatenate([tree.caches for tree in trees]),
            roots=node_offsets,
            leaf_offsets=leaf_offsets,
        )

    def route(self, X: np.ndarray) -> np.ndarray:
        """Global leaf ids, shape ``(n_particles, n_rows)``.

        Every (particle, row) pair starts at that particle's root and
        descends level-by-level; pairs that reach a leaf drop out of the
        active set, so the loop count is the depth of the deepest particle.
        """
        X = np.atleast_2d(X)
        n = X.shape[0]
        nodes = np.repeat(self.roots, n)
        rows = np.tile(np.arange(n, dtype=np.intp), self.n_particles)
        active = np.flatnonzero(self.split_dim[nodes] >= 0)
        while active.size:
            current = nodes[active]
            dims = self.split_dim[current]
            go_left = X[rows[active], dims] <= self.split_value[current]
            nodes[active] = np.where(go_left, self.left[current], self.right[current])
            still_internal = self.split_dim[nodes[active]] >= 0
            active = active[still_internal]
        return self.leaf_slot[nodes].reshape(self.n_particles, n)

    def route_one(self, x: np.ndarray) -> np.ndarray:
        """Global leaf ids of ONE row routed through every tree, shape ``(n_particles,)``.

        This is the one-row-many-trees kernel behind the batched SMC update:
        reweighting and the propagate front-end both need "which leaf holds
        ``x``" for every particle, and this descends all particles together
        in depth-many vectorized steps instead of ``n_particles`` Python
        descents.
        """
        nodes = self.roots.copy()
        active = np.flatnonzero(self.split_dim[nodes] >= 0)
        while active.size:
            current = nodes[active]
            dims = self.split_dim[current]
            go_left = x[dims] <= self.split_value[current]
            nodes[active] = np.where(go_left, self.left[current], self.right[current])
            still_internal = self.split_dim[nodes[active]] >= 0
            active = active[still_internal]
        return self.leaf_slot[nodes]

    def predict_components(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-particle predictive ``(mean, variance)``, each ``(n_particles, n_rows)``."""
        leaf_ids = self.route(X)
        return self.caches.mean[leaf_ids], self.caches.variance[leaf_ids]
