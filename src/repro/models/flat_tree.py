"""Flattened-array representation of one particle's tree.

The dynamic tree spends essentially all of its prediction/acquisition time
descending trees: every ``predict()`` and every ALC score routes hundreds of
rows through every particle.  Doing that with per-row Python ``descend()``
loops costs a Python-level branch per (row, level, particle); compiling each
particle's ``_Node`` tree once into flat NumPy arrays turns the same work
into a handful of vectorized gathers per tree *level*.

:class:`FlatTree` stores, per node, ``split_dim`` (``-1`` for leaves),
``split_value`` and ``left``/``right`` child indices, and per *leaf* a row
of cached posterior statistics in a
:class:`~repro.models.leaf.LeafCacheArrays`: the posterior-predictive mean,
variance and observation count of its
:class:`~repro.models.leaf.GaussianLeafModel`, plus the value-independent
terms of the predictive log-pdf consumed by the batched SMC reweight step.
:meth:`route` descends all rows level-by-level with array ops and returns
**stable integer leaf ids** (positions in pre-order), which downstream code
uses instead of fragile ``id(node)`` dictionary keys.

A flat tree stays valid as long as the particle's *structure* is unchanged:
a "stay" move only sharpens one leaf's sufficient statistics, which
:meth:`patch_leaf` mirrors in O(1) without recompiling; "grow"/"prune"
moves invalidate the compilation (the owner drops its cache and recompiles
lazily).  Trees duplicated by a particle resample share one compilation
copy-on-write: the owner copies the arrays only when a patch is about to
land on a still-shared tree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .compiled_kernels import route_all_numpy
from .leaf import GaussianLeafModel, LeafCacheArrays

__all__ = ["FlatTree", "FlatForest", "IncrementalForest"]


class FlatTree:
    """Array-of-structs compilation of one particle tree.

    Attributes
    ----------
    split_dim:
        ``(n_nodes,)`` int array; the splitting feature of internal nodes,
        ``-1`` for leaves.
    split_value:
        ``(n_nodes,)`` float array; the threshold of internal nodes.
    left, right:
        ``(n_nodes,)`` int arrays; child node indices (``-1`` for leaves).
    leaf_slot:
        ``(n_nodes,)`` int array mapping a node index to its leaf id
        (``-1`` for internal nodes).  Leaf ids number the leaves in
        pre-order, so they are stable for a given structure.
    caches:
        :class:`~repro.models.leaf.LeafCacheArrays` with one row per leaf
        id (``leaf_mean``/``leaf_variance``/``leaf_count`` are views of it,
        kept for the established attribute surface).
    """

    __slots__ = (
        "split_dim",
        "split_value",
        "left",
        "right",
        "leaf_slot",
        "caches",
        "leaf_nodes",
        "n_nodes",
        "n_leaves",
        "_nav",
    )

    def __init__(
        self,
        split_dim: np.ndarray,
        split_value: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        leaf_slot: np.ndarray,
        caches: LeafCacheArrays,
        nav: Optional[Tuple[list, list, list, list, list]] = None,
        leaf_nodes: Optional[list] = None,
    ) -> None:
        self.split_dim = split_dim
        self.split_value = split_value
        self.left = left
        self.right = right
        self.leaf_slot = leaf_slot
        self.caches = caches
        # Leaf id -> the particle's ``_Node`` leaf, in pre-order (``None``
        # for compilations whose caller did not supply the mapping).  The
        # batched update's gather phase reads each leaf's training-row
        # indices through this O(1) lookup instead of a Python descent.
        # Entries may reference *shared* nodes after a resample — reads
        # are always safe, mutation must still go through the tree's
        # copy-on-write descent.
        self.leaf_nodes = leaf_nodes
        self.n_nodes = int(split_dim.shape[0])
        self.n_leaves = len(caches)
        # Plain-list mirror of the structure arrays for scalar descents:
        # Python-list indexing beats numpy scalar extraction several-fold
        # at route_one's grain.  Built lazily — the batched update path
        # derives thousands of FlatTrees per update (grow_at/prune_at) and
        # routes through the forest arrays instead, so most compilations
        # never take a scalar descent.  The structure never mutates after
        # compilation, so copies share the mirror.
        self._nav = nav

    @property
    def leaf_mean(self) -> np.ndarray:
        return self.caches.mean

    @property
    def leaf_variance(self) -> np.ndarray:
        return self.caches.variance

    @property
    def leaf_count(self) -> np.ndarray:
        return self.caches.count

    # ---------------------------------------------------------- compilation

    @classmethod
    def compile(cls, root) -> "FlatTree":
        """Lower a ``_Node`` tree into flat arrays (pre-order numbering)."""
        split_dim: List[int] = []
        split_value: List[float] = []
        left: List[int] = []
        right: List[int] = []
        leaf_slot: List[int] = []
        leaves: List[GaussianLeafModel] = []
        leaf_nodes: List = []

        def visit(node) -> int:
            index = len(split_dim)
            if node.leaf is not None:
                split_dim.append(-1)
                split_value.append(0.0)
                left.append(-1)
                right.append(-1)
                leaf_slot.append(len(leaves))
                leaves.append(node.leaf)
                leaf_nodes.append(node)
            else:
                split_dim.append(int(node.split_dim))
                split_value.append(float(node.split_value))
                left.append(-1)
                right.append(-1)
                leaf_slot.append(-1)
                left[index] = visit(node.left)
                right[index] = visit(node.right)
            return index

        visit(root)
        return cls(
            split_dim=np.asarray(split_dim, dtype=np.intp),
            split_value=np.asarray(split_value, dtype=float),
            left=np.asarray(left, dtype=np.intp),
            right=np.asarray(right, dtype=np.intp),
            leaf_slot=np.asarray(leaf_slot, dtype=np.intp),
            caches=LeafCacheArrays.from_leaves(leaves),
            leaf_nodes=leaf_nodes,
        )

    def copy(self) -> "FlatTree":
        """An independent copy of the mutable state.

        Only the leaf caches and the leaf-node mapping are ever patched in
        place, so the copy shares the (immutable-after-compile) structure
        arrays and the scalar navigation mirror — a resample duplicate
        costs one ``(n_leaves, 9)`` array copy plus one list copy.
        """
        return FlatTree(
            split_dim=self.split_dim,
            split_value=self.split_value,
            left=self.left,
            right=self.right,
            leaf_slot=self.leaf_slot,
            caches=self.caches.copy(),
            nav=self._nav,
            leaf_nodes=list(self.leaf_nodes) if self.leaf_nodes is not None else None,
        )

    # -------------------------------------------------------------- queries

    def route(self, X: np.ndarray) -> np.ndarray:
        """Leaf ids of every row of ``X``, descending level-by-level.

        All rows start at the root; at each iteration the rows still sitting
        on an internal node are compared against that node's threshold in
        one vectorized gather, and rows that reach a leaf drop out.  The
        loop count is the tree depth, not the number of rows.
        """
        X = np.atleast_2d(X)
        n = X.shape[0]
        nodes = np.zeros(n, dtype=np.intp)
        active = np.flatnonzero(self.split_dim[nodes] >= 0)
        while active.size:
            current = nodes[active]
            dims = self.split_dim[current]
            go_left = X[active, dims] <= self.split_value[current]
            nodes[active] = np.where(go_left, self.left[current], self.right[current])
            still_internal = self.split_dim[nodes[active]] >= 0
            active = active[still_internal]
        return self.leaf_slot[nodes]

    def route_one(self, x) -> int:
        """Leaf id of a single feature vector (scalar descent, no row setup).

        ``x`` may be an array or a plain sequence; callers descending many
        trees pass ``x.tolist()`` once so every comparison is
        float-against-float.
        """
        nav = self._nav
        if nav is None:
            nav = self._nav = (
                self.split_dim.tolist(),
                self.split_value.tolist(),
                self.left.tolist(),
                self.right.tolist(),
                self.leaf_slot.tolist(),
            )
        split_dim, split_value, left, right, leaf_slot = nav
        index = 0
        dim = split_dim[0]
        while dim >= 0:
            index = left[index] if x[dim] <= split_value[index] else right[index]
            dim = split_dim[index]
        return leaf_slot[index]

    def predict_components(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cached posterior-predictive ``(mean, variance)`` of every row."""
        leaf_ids = self.route(X)
        return self.caches.mean[leaf_ids], self.caches.variance[leaf_ids]

    # ------------------------------------------------------------- patching

    def patch_leaf(self, leaf_id: int, leaf: GaussianLeafModel) -> Tuple[float, ...]:
        """Refresh one leaf's cached statistics after a "stay" move.

        Returns the written cache row (see
        :meth:`~repro.models.leaf.LeafCacheArrays.patch`).
        """
        return self.caches.patch(leaf_id, leaf)

    # ---------------------------------------------------------- derivations

    def grow_at(self, leaf_id: int, node) -> "FlatTree":
        """The compilation of this tree after growing leaf ``leaf_id``.

        ``node`` is the just-split ``_Node`` (its ``split_dim``/``split_value``
        are set and both children are leaves).  Pre-order numbering makes the
        incremental derivation a pair of array splices: the leaf's node index
        ``v`` becomes the internal node, its children land at ``v+1``/``v+2``,
        node indices after ``v`` shift by ``+2`` and leaf ids after ``leaf_id``
        by ``+1``.  The result is bit-identical to ``FlatTree.compile`` on the
        mutated particle — structure arrays and cache rows alike (the new
        leaf rows come from the same memoized ``patch`` path) — at O(n) array
        copies instead of an O(n) *Python recursion* with per-node appends.
        """
        v = int(np.flatnonzero(self.leaf_slot == leaf_id)[0])
        n = self.n_nodes
        split_dim = np.empty(n + 2, dtype=np.intp)
        split_value = np.empty(n + 2)
        left = np.empty(n + 2, dtype=np.intp)
        right = np.empty(n + 2, dtype=np.intp)
        leaf_slot = np.empty(n + 2, dtype=np.intp)

        split_dim[:v] = self.split_dim[:v]
        split_dim[v] = int(node.split_dim)
        split_dim[v + 1] = -1
        split_dim[v + 2] = -1
        split_dim[v + 3 :] = self.split_dim[v + 1 :]

        split_value[:v] = self.split_value[:v]
        split_value[v] = float(node.split_value)
        split_value[v + 1] = 0.0
        split_value[v + 2] = 0.0
        split_value[v + 3 :] = self.split_value[v + 1 :]

        # Only the parent of ``v`` points *at* ``v`` (index unchanged);
        # every pointer beyond ``v`` moves with its target.
        shifted_left = np.where(self.left > v, self.left + 2, self.left)
        shifted_right = np.where(self.right > v, self.right + 2, self.right)
        left[:v] = shifted_left[:v]
        left[v] = v + 1
        left[v + 1] = -1
        left[v + 2] = -1
        left[v + 3 :] = shifted_left[v + 1 :]
        right[:v] = shifted_right[:v]
        right[v] = v + 2
        right[v + 1] = -1
        right[v + 2] = -1
        right[v + 3 :] = shifted_right[v + 1 :]

        shifted_slot = np.where(self.leaf_slot > leaf_id, self.leaf_slot + 1, self.leaf_slot)
        leaf_slot[:v] = shifted_slot[:v]
        leaf_slot[v] = -1
        leaf_slot[v + 1] = leaf_id
        leaf_slot[v + 2] = leaf_id + 1
        leaf_slot[v + 3 :] = shifted_slot[v + 1 :]

        data = np.empty((self.n_leaves + 1, LeafCacheArrays.N_COLUMNS))
        data[:leaf_id] = self.caches.data[:leaf_id]
        data[leaf_id + 2 :] = self.caches.data[leaf_id + 1 :]
        caches = LeafCacheArrays(data)
        caches.patch(leaf_id, node.left.leaf)
        caches.patch(leaf_id + 1, node.right.leaf)
        nodes = self.leaf_nodes
        if nodes is not None:
            nodes = nodes[:leaf_id] + [node.left, node.right] + nodes[leaf_id + 1 :]
        return FlatTree(
            split_dim=split_dim,
            split_value=split_value,
            left=left,
            right=right,
            leaf_slot=leaf_slot,
            caches=caches,
            leaf_nodes=nodes,
        )

    def prune_at(self, left_leaf_id: int, parent_node) -> "FlatTree":
        """The compilation of this tree after pruning a leaf pair.

        ``left_leaf_id`` is the *left* child's leaf id (its sibling is
        ``left_leaf_id + 1``); ``parent_node`` the just-pruned ``_Node``
        (its ``leaf`` holds the merged model).  In pre-order the left child
        immediately follows its parent, so the parent sits at
        ``index(left child) - 1``: the two child rows are cut out, node
        indices beyond them shift ``-2`` and leaf ids beyond the pair shift
        ``-1``.  Bit-identical to recompiling the pruned particle.
        """
        merged_leaf = parent_node.leaf
        v_left = int(np.flatnonzero(self.leaf_slot == left_leaf_id)[0])
        parent = v_left - 1
        n = self.n_nodes
        split_dim = np.empty(n - 2, dtype=np.intp)
        split_value = np.empty(n - 2)
        left = np.empty(n - 2, dtype=np.intp)
        right = np.empty(n - 2, dtype=np.intp)
        leaf_slot = np.empty(n - 2, dtype=np.intp)

        split_dim[:parent] = self.split_dim[:parent]
        split_dim[parent] = -1
        split_dim[parent + 1 :] = self.split_dim[parent + 3 :]

        split_value[:parent] = self.split_value[:parent]
        split_value[parent] = 0.0
        split_value[parent + 1 :] = self.split_value[parent + 3 :]

        # No surviving pointer targets the removed pair (only ``parent``
        # pointed there, and it becomes a leaf), so a single ``> parent+2``
        # shift repairs every remaining pointer.
        shifted_left = np.where(self.left > parent + 2, self.left - 2, self.left)
        shifted_right = np.where(self.right > parent + 2, self.right - 2, self.right)
        left[:parent] = shifted_left[:parent]
        left[parent] = -1
        left[parent + 1 :] = shifted_left[parent + 3 :]
        right[:parent] = shifted_right[:parent]
        right[parent] = -1
        right[parent + 1 :] = shifted_right[parent + 3 :]

        shifted_slot = np.where(
            self.leaf_slot > left_leaf_id + 1, self.leaf_slot - 1, self.leaf_slot
        )
        leaf_slot[:parent] = shifted_slot[:parent]
        leaf_slot[parent] = left_leaf_id
        leaf_slot[parent + 1 :] = shifted_slot[parent + 3 :]

        data = np.empty((self.n_leaves - 1, LeafCacheArrays.N_COLUMNS))
        data[:left_leaf_id] = self.caches.data[:left_leaf_id]
        data[left_leaf_id + 1 :] = self.caches.data[left_leaf_id + 2 :]
        caches = LeafCacheArrays(data)
        caches.patch(left_leaf_id, merged_leaf)
        nodes = self.leaf_nodes
        if nodes is not None:
            nodes = nodes[:left_leaf_id] + [parent_node] + nodes[left_leaf_id + 2 :]
        return FlatTree(
            split_dim=split_dim,
            split_value=split_value,
            left=left,
            right=right,
            leaf_slot=leaf_slot,
            caches=caches,
            leaf_nodes=nodes,
        )


class FlatForest:
    """All of a model's particle trees concatenated into one array set.

    Per-particle :class:`FlatTree` routing still pays a fixed NumPy
    dispatch cost per (particle, level); at bench scale (tens of particles,
    tens of rows) that overhead dominates.  The forest concatenates every
    particle's node and leaf arrays — child indices and leaf ids shifted by
    per-particle offsets — so one :meth:`route` call descends all
    ``n_particles × n_rows`` (particle, row) pairs together, and the array
    ops run over thousands of elements instead of dozens.

    Leaf ids returned by the forest are *global*: particle ``p``'s local
    leaf ``i`` becomes ``leaf_offsets[p] + i``.  ``n_leaves`` is the total,
    so a single ``bincount`` aggregates per-leaf statistics across the whole
    forest without per-particle bookkeeping.
    """

    __slots__ = (
        "split_dim",
        "split_value",
        "left",
        "right",
        "leaf_slot",
        "caches",
        "roots",
        "leaf_offsets",
        "n_particles",
        "n_leaves",
    )

    def __init__(
        self,
        split_dim: np.ndarray,
        split_value: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        leaf_slot: np.ndarray,
        caches: LeafCacheArrays,
        roots: np.ndarray,
        leaf_offsets: np.ndarray,
    ) -> None:
        self.split_dim = split_dim
        self.split_value = split_value
        self.left = left
        self.right = right
        self.leaf_slot = leaf_slot
        self.caches = caches
        self.roots = roots
        self.leaf_offsets = leaf_offsets
        self.n_particles = int(roots.shape[0])
        self.n_leaves = len(caches)

    @property
    def leaf_mean(self) -> np.ndarray:
        return self.caches.mean

    @property
    def leaf_variance(self) -> np.ndarray:
        return self.caches.variance

    @property
    def leaf_count(self) -> np.ndarray:
        return self.caches.count

    @classmethod
    def from_trees(cls, trees: Sequence[FlatTree]) -> "FlatForest":
        """Concatenate per-particle compilations, shifting indices by offsets."""
        if not trees:
            raise ValueError("a forest needs at least one tree")
        node_counts = np.asarray([tree.n_nodes for tree in trees], dtype=np.intp)
        leaf_counts = np.asarray([tree.n_leaves for tree in trees], dtype=np.intp)
        node_offsets = np.concatenate([[0], np.cumsum(node_counts[:-1])]).astype(np.intp)
        leaf_offsets = np.concatenate([[0], np.cumsum(leaf_counts[:-1])]).astype(np.intp)
        # Shift child/leaf indices by their tree's offset in one vectorized
        # pass over the concatenated arrays (a per-tree np.where would pay
        # thousands of numpy dispatches per forest rebuild at paper-scale
        # particle counts).
        node_shift = np.repeat(node_offsets, node_counts)
        leaf_shift = np.repeat(leaf_offsets, node_counts)
        left = np.concatenate([tree.left for tree in trees])
        right = np.concatenate([tree.right for tree in trees])
        leaf_slot = np.concatenate([tree.leaf_slot for tree in trees])
        left = np.where(left >= 0, left + node_shift, -1)
        right = np.where(right >= 0, right + node_shift, -1)
        leaf_slot = np.where(leaf_slot >= 0, leaf_slot + leaf_shift, -1)
        return cls(
            split_dim=np.concatenate([tree.split_dim for tree in trees]),
            split_value=np.concatenate([tree.split_value for tree in trees]),
            left=left,
            right=right,
            leaf_slot=leaf_slot,
            caches=LeafCacheArrays.concatenate([tree.caches for tree in trees]),
            roots=node_offsets,
            leaf_offsets=leaf_offsets,
        )

    def route(self, X: np.ndarray) -> np.ndarray:
        """Global leaf ids, shape ``(n_particles, n_rows)``.

        Every (particle, row) pair starts at that particle's root and
        descends level-by-level; pairs that reach a leaf drop out of the
        active set, so the loop count is the depth of the deepest particle.
        """
        X = np.atleast_2d(X)
        n = X.shape[0]
        nodes = np.repeat(self.roots, n)
        rows = np.tile(np.arange(n, dtype=np.intp), self.n_particles)
        active = np.flatnonzero(self.split_dim[nodes] >= 0)
        while active.size:
            current = nodes[active]
            dims = self.split_dim[current]
            go_left = X[rows[active], dims] <= self.split_value[current]
            nodes[active] = np.where(go_left, self.left[current], self.right[current])
            still_internal = self.split_dim[nodes[active]] >= 0
            active = active[still_internal]
        return self.leaf_slot[nodes].reshape(self.n_particles, n)

    def route_one(self, x: np.ndarray) -> np.ndarray:
        """Global leaf ids of ONE row routed through every tree, shape ``(n_particles,)``.

        This is the one-row-many-trees kernel behind the batched SMC update:
        reweighting and the propagate front-end both need "which leaf holds
        ``x``" for every particle.  The descent lives in
        :func:`repro.models.compiled_kernels.route_all_numpy` (shared with
        the jitted backends), which advances all particles together in
        depth-many vectorized steps instead of ``n_particles`` Python
        descents.
        """
        return route_all_numpy(
            self.split_dim,
            self.split_value,
            self.left,
            self.right,
            self.leaf_slot,
            self.roots,
            x,
        )

    def predict_components(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-particle predictive ``(mean, variance)``, each ``(n_particles, n_rows)``."""
        leaf_ids = self.route(X)
        return self.caches.mean[leaf_ids], self.caches.variance[leaf_ids]


class IncrementalForest:
    """A :class:`FlatForest` maintained *in place* across model updates.

    ``FlatForest.from_trees`` touches every node of every particle —
    O(total nodes) of concatenation and index shifting — and the dynamic
    tree used to pay it on the first predict/ALC batch after *every*
    update, even though a typical update only patches one leaf row per
    particle (stay moves) and restructures a handful of particles
    (grow/prune, resample duplicates).  This class keeps the concatenated
    arrays alive between updates and repairs exactly what changed:

    * each particle's segment is allocated with *capacity slack*
      (``~2x`` its node/leaf count), so a recompiled tree that still fits
      is written back into its own segment — O(segment), no other
      particle moves and no offsets change;
    * "stay" moves, the overwhelming majority, arrive as ``(slot,
      leaf_id)`` stale-row records and are repaired by copying single
      cache rows — O(particles) per update instead of O(total nodes);
    * a tree that outgrows its segment (or a particle-count change)
      aborts :meth:`sync`, and the owner rebuilds with fresh capacities —
      amortised over the doublings of the tree, like a growing array.

    Padding entries between a segment's live nodes and its capacity are
    never reachable (children only point inside the live prefix and roots
    sit at segment starts), so the padded arrays behave exactly like the
    tight ``from_trees`` arrays under :meth:`FlatForest.route`: routing
    decisions, gathered leaf statistics and ``bincount`` groupings are
    bit-identical, only the numeric values of the global leaf ids differ.

    Ownership tracking is by object identity: the forest remembers which
    :class:`FlatTree` instance each segment was written from.  A tree
    patched in place (stay move) keeps its identity and reports the
    patched rows through ``stale_rows``; every other change installs a
    *different* ``FlatTree`` object in the slot, which :meth:`sync`
    detects and repairs at the cheapest sufficient grain — a cache-segment
    copy when the structure arrays are shared (copy-on-write cache copies
    after a resample), a full segment rewrite otherwise (grow/prune
    recompilations, resample permutations).
    """

    __slots__ = (
        "forest",
        "_trees",
        "_node_caps",
        "_leaf_caps",
        "_node_offsets",
        "_leaf_offsets",
        "n_particles",
    )

    #: Extra node/leaf rows reserved per segment beyond the current tree
    #: size; a grow move adds two nodes (one leaf), so doubling plus a
    #: small constant gives each particle room for many structural moves
    #: before a full rebuild is needed.
    MIN_SLACK = 8

    def __init__(self, trees: Sequence[FlatTree]) -> None:
        if not trees:
            raise ValueError("a forest needs at least one tree")
        self.n_particles = len(trees)
        self._trees: List[Optional[FlatTree]] = [None] * len(trees)
        node_caps = np.asarray(
            [2 * tree.n_nodes + self.MIN_SLACK for tree in trees], dtype=np.intp
        )
        leaf_caps = np.asarray(
            [2 * tree.n_leaves + self.MIN_SLACK for tree in trees], dtype=np.intp
        )
        node_offsets = np.concatenate([[0], np.cumsum(node_caps[:-1])]).astype(np.intp)
        leaf_offsets = np.concatenate([[0], np.cumsum(leaf_caps[:-1])]).astype(np.intp)
        total_nodes = int(node_caps.sum())
        total_leaves = int(leaf_caps.sum())
        self._node_caps = node_caps
        self._leaf_caps = leaf_caps
        self._node_offsets = node_offsets
        self._leaf_offsets = leaf_offsets
        # Padding nodes are marked as leaves with no slot; they are
        # unreachable by construction, the marks only keep accidental
        # reads well-defined.
        split_dim = np.full(total_nodes, -1, dtype=np.intp)
        split_value = np.zeros(total_nodes)
        left = np.full(total_nodes, -1, dtype=np.intp)
        right = np.full(total_nodes, -1, dtype=np.intp)
        leaf_slot = np.full(total_nodes, -1, dtype=np.intp)
        caches = LeafCacheArrays(np.zeros((total_leaves, LeafCacheArrays.N_COLUMNS)))
        self.forest = FlatForest(
            split_dim=split_dim,
            split_value=split_value,
            left=left,
            right=right,
            leaf_slot=leaf_slot,
            caches=caches,
            roots=node_offsets,
            leaf_offsets=leaf_offsets,
        )
        self._write_segments(list(range(len(trees))), trees)

    def _write_segments(self, slots: List[int], trees: Sequence[FlatTree]) -> None:
        """Install each ``trees[slot]`` into its padded segment, batched.

        One concatenate-and-scatter per field instead of a handful of numpy
        calls per slot, so the cost scales with the *changed* node count
        plus one pass over the changed slots — a sync that repairs 5% of
        the particles pays ~5% of a full rebuild.

        The child/leaf indices are shifted by plain adds with no ``-1``
        masking: a leaf's ``left``/``right`` and an internal node's
        ``leaf_slot`` are never dereferenced (routing only follows children
        of internal nodes and only reads leaf slots of leaves), so the
        shifted ``-1`` sentinels may hold garbage without affecting any
        query — ``split_dim``, the one array routing branches on, is copied
        exactly.
        """
        forest = self.forest
        source = [trees[slot] for slot in slots]
        slots_arr = np.asarray(slots, dtype=np.intp)
        node_counts = np.asarray([tree.n_nodes for tree in source], dtype=np.intp)
        leaf_counts = np.asarray([tree.n_leaves for tree in source], dtype=np.intp)
        node_offsets = self._node_offsets[slots_arr]
        leaf_offsets = self._leaf_offsets[slots_arr]

        node_shift = np.repeat(node_offsets, node_counts)
        starts = np.cumsum(node_counts) - node_counts
        dest = node_shift + (
            np.arange(int(node_counts.sum()), dtype=np.intp)
            - np.repeat(starts, node_counts)
        )
        forest.split_dim[dest] = np.concatenate([tree.split_dim for tree in source])
        forest.split_value[dest] = np.concatenate(
            [tree.split_value for tree in source]
        )
        forest.left[dest] = (
            np.concatenate([tree.left for tree in source]) + node_shift
        )
        forest.right[dest] = (
            np.concatenate([tree.right for tree in source]) + node_shift
        )
        forest.leaf_slot[dest] = np.concatenate(
            [tree.leaf_slot for tree in source]
        ) + np.repeat(leaf_offsets, node_counts)

        leaf_starts = np.cumsum(leaf_counts) - leaf_counts
        leaf_dest = np.repeat(leaf_offsets, leaf_counts) + (
            np.arange(int(leaf_counts.sum()), dtype=np.intp)
            - np.repeat(leaf_starts, leaf_counts)
        )
        forest.caches.data[leaf_dest] = np.concatenate(
            [tree.caches.data for tree in source], axis=0
        )
        recorded = self._trees
        for slot, tree in zip(slots, source):
            recorded[slot] = tree

    def sync(
        self,
        trees: Sequence[FlatTree],
        stale_rows: "dict[Tuple[int, int], Tuple[float, ...]]",
    ) -> bool:
        """Bring the forest up to date with ``trees``; False forces a rebuild.

        ``trees`` must hold one compiled :class:`FlatTree` per particle, in
        particle order; ``stale_rows`` maps ``(slot, local leaf id)`` to the
        cache-row values patched in place since the last sync (latest patch
        wins, which a dict gives for free), applied as one batched fancy
        assignment.  A tree whose *structure arrays* are unchanged but whose
        cache matrix is a new object (a copy-on-write cache copy after a
        resample) only has its cache segment recopied; a structurally new
        tree gets a full segment rewrite.  Either way the slot's recorded
        stale rows are dropped — the segment copy is the current truth and
        the recorded values may predate it.  Returns ``False`` (leaving the
        forest unusable until rebuilt) when the particle count changed or a
        recompiled tree no longer fits its segment capacity.
        """
        if len(trees) != self.n_particles:
            return False
        recorded = self._trees
        node_caps = self._node_caps
        leaf_caps = self._leaf_caps
        data = self.forest.caches.data
        leaf_offsets = self._leaf_offsets
        changed: List[int] = []
        rewritten: set = set()
        for slot, tree in enumerate(trees):
            known = recorded[slot]
            if tree is known:
                continue
            rewritten.add(slot)
            if known is not None and tree.split_dim is known.split_dim:
                # Copy-on-write cache copy: identical structure, fresh
                # cache matrix — refresh the cache segment only.  (The
                # structure arrays may be shared by a *different* tree that
                # arrived here through a resample, so recorded stale rows
                # for this slot are stale-by-lineage and must be dropped —
                # hence the ``rewritten`` membership above.)
                offset = int(leaf_offsets[slot])
                data[offset : offset + tree.n_leaves] = tree.caches.data
                recorded[slot] = tree
                continue
            if tree.n_nodes > node_caps[slot] or tree.n_leaves > leaf_caps[slot]:
                return False
            changed.append(slot)
        if changed:
            self._write_segments(changed, trees)
        if stale_rows:
            if rewritten:
                items = [
                    (key, row)
                    for key, row in stale_rows.items()
                    if key[0] not in rewritten
                ]
            else:
                items = list(stale_rows.items())
            if items:
                count = len(items)
                slots = np.fromiter(
                    (key[0] for key, _ in items), dtype=np.intp, count=count
                )
                ids = np.fromiter(
                    (key[1] for key, _ in items), dtype=np.intp, count=count
                )
                data[leaf_offsets[slots] + ids] = [row for _, row in items]
        return True
