"""Common interface of the surrogate (regression) models.

The active learner is written against this interface so the dynamic tree
(the model the paper uses), the Gaussian process (the model the paper
rejects on cost grounds) and the simple baselines are interchangeable.

A surrogate model maps normalised feature vectors to a predictive mean and
variance.  Models that can quantify the *global* effect of adding a new
training point (needed for the ALC/Cohn acquisition) additionally implement
:meth:`SurrogateModel.expected_average_variance`.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["Prediction", "SurrogateModel"]


@dataclass(frozen=True)
class Prediction:
    """Predictive mean and variance for a batch of inputs."""

    mean: np.ndarray
    variance: np.ndarray

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=float)
        variance = np.asarray(self.variance, dtype=float)
        if mean.shape != variance.shape:
            raise ValueError("mean and variance must have the same shape")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "variance", variance)


class SurrogateModel(ABC):
    """Sequentially updatable regression model with predictive uncertainty."""

    @abstractmethod
    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """(Re)train the model from scratch on the given data."""

    @abstractmethod
    def update(self, features: np.ndarray, target: float) -> None:
        """Incorporate a single new observation.

        ``features`` is a 1-D vector; ``target`` the (possibly noisy)
        measured runtime.  Sequential updates are the reason the paper uses
        dynamic trees: the model must absorb one observation at a time
        without a full rebuild.
        """

    @abstractmethod
    def predict(self, features: np.ndarray) -> Prediction:
        """Predictive mean and variance for a batch of feature vectors."""

    @property
    @abstractmethod
    def training_size(self) -> int:
        """Number of observations the model has absorbed so far."""

    # ------------------------------------------------------------------ ALC

    def expected_average_variance(
        self, candidates: np.ndarray, reference: np.ndarray
    ) -> np.ndarray:
        """Predicted average variance over ``reference`` after observing each candidate.

        This is the quantity Algorithm 1 of the paper minimises
        (``predictAvgModelVariance``): for every candidate ``c`` it returns
        an estimate of the average predictive variance across the reference
        set that would remain if one additional observation were taken at
        ``c``.  Equivalently, minimising it maximises the ALC (Cohn) score.

        The default implementation ignores the candidate's global effect and
        simply discounts the candidate's own variance, which reduces the
        acquisition to ALM-like behaviour; models with a proper closed form
        (the dynamic tree, the GP) override it.
        """
        reference_pred = self.predict(np.asarray(reference, dtype=float))
        base = float(np.mean(reference_pred.variance))
        candidate_pred = self.predict(np.asarray(candidates, dtype=float))
        # Higher own-variance candidates are assumed to remove more variance.
        reduction = candidate_pred.variance / (len(reference) + 1.0)
        return np.maximum(base - reduction, 0.0)

    def predictive_std(self, features: np.ndarray) -> np.ndarray:
        """Convenience wrapper returning the predictive standard deviation."""
        return np.sqrt(np.maximum(self.predict(features).variance, 0.0))

    def fantasy_copy(self) -> "SurrogateModel":
        """A throwaway copy safe to ``update`` with believed observations.

        Batch acquisition strategies (kriging believer) update a copy of
        the model with fantasized measurements and must not leak those
        into the real model.  The default is a full deep copy; models with
        cheap copy-on-write state (the dynamic tree) override this to
        avoid cloning their entire training state per batch.
        """
        return copy.deepcopy(self)
