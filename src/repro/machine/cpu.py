"""Core execution model: issue throughput, registers, loop overhead, I-cache.

Together with the cache model this forms the "hardware" the substrate runs
on.  The parameters default to a Haswell-class core (the i7-4770K used in
the paper): 4-wide issue, two FP pipes, two load ports and one store port,
sixteen architectural vector registers, a 32 KB instruction cache.

The core model supplies three effects that shape the optimization space:

* **loop overhead** amortised by unrolling (the initial benefit of larger
  unroll factors),
* **register pressure / spilling** once the unrolled-and-jammed body needs
  more simultaneously live values than the register file holds (the climb
  after the sweet spot, clearly visible in Figure 2 of the paper), and
* **instruction-cache pressure** for extreme unroll products (the final
  plateau at a higher runtime level).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CoreModel", "haswell_core"]


@dataclass(frozen=True)
class CoreModel:
    """Analytical model of one out-of-order core."""

    frequency_ghz: float = 3.4
    flops_per_cycle: float = 4.0
    load_ports: float = 2.0
    store_ports: float = 1.0
    branch_overhead_cycles: float = 2.0
    loop_setup_cycles: float = 6.0
    vector_registers: int = 16
    spill_onset_ratio: float = 2.5
    spill_transition_width: float = 2.5
    spill_max_slowdown: float = 0.55
    icache_bytes: int = 32 * 1024
    bytes_per_instruction: float = 4.5
    icache_max_slowdown: float = 0.6

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.flops_per_cycle <= 0:
            raise ValueError("flops_per_cycle must be positive")
        if self.vector_registers <= 0:
            raise ValueError("vector_registers must be positive")

    @property
    def cycle_seconds(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / (self.frequency_ghz * 1e9)

    def compute_cycles(self, flops: float) -> float:
        """Cycles to retire ``flops`` floating-point operations (throughput-bound)."""
        return flops / self.flops_per_cycle

    def issue_cycles(self, loads: float, stores: float) -> float:
        """Cycles the load/store ports need to issue the given accesses."""
        return max(loads / self.load_ports, stores / self.store_ports)

    def loop_overhead_cycles(self, unroll_factor: int) -> float:
        """Per-source-iteration loop maintenance cost after unrolling by ``unroll_factor``.

        The compare-and-branch plus induction-variable update is paid once per
        *unrolled* iteration, i.e. once every ``unroll_factor`` source
        iterations.
        """
        if unroll_factor < 1:
            raise ValueError("unroll factor must be >= 1")
        return self.branch_overhead_cycles / unroll_factor

    def register_pressure_multiplier(self, live_values: float) -> float:
        """Multiplicative slowdown caused by register pressure and spilling.

        Out-of-order cores tolerate bodies whose live values exceed the
        architectural register file by a comfortable margin (renaming, cheap
        store-to-load forwarding for stack slots), so the penalty only turns
        on once the pressure ratio passes ``spill_onset_ratio`` and then
        saturates at ``1 + spill_max_slowdown`` — the plateau → climb →
        plateau response the paper's Figure 2 shows for ``adi``.
        """
        if live_values < 0:
            raise ValueError("live_values cannot be negative")
        pressure_ratio = live_values / self.vector_registers
        excess = (pressure_ratio - self.spill_onset_ratio) / self.spill_transition_width
        if excess <= 0:
            return 1.0
        return 1.0 + self.spill_max_slowdown * (1.0 - math.exp(-excess))

    def icache_multiplier(self, body_instructions: float) -> float:
        """Multiplicative slowdown once the loop body overflows the I-cache.

        Below capacity there is no penalty; above it the front end has to
        stream instructions from L2 every iteration, with the slowdown
        saturating at ``1 + icache_max_slowdown``.
        """
        body_bytes = body_instructions * self.bytes_per_instruction
        if body_bytes <= self.icache_bytes:
            return 1.0
        overflow_ratio = body_bytes / self.icache_bytes - 1.0
        return 1.0 + self.icache_max_slowdown * (1.0 - math.exp(-overflow_ratio))


def haswell_core() -> CoreModel:
    """The core model for the paper's i7-4770K at 3.4 GHz."""
    return CoreModel()
