"""Runtime and compile-time cost model for transformed loop nests.

This is the piece that replaces "compile with gcc and run on the i7-4770K":
given a kernel in the loop-nest IR and a :class:`TransformConfiguration`
(the unroll factors, cache tiles and register tiles selected by a point in
the SPAPT search space), it returns a deterministic *true mean runtime* in
seconds and a *compile time* in seconds.  The measurement substrate then
perturbs the runtime with noise to produce individual observations.

The model composes three families of effects, each grounded in the classic
analytical treatments of dense loop nests:

1. **Computation and issue throughput** — flops and memory operations per
   source iteration divided by the core's per-cycle throughput
   (:class:`repro.machine.cpu.CoreModel`).
2. **Memory hierarchy behaviour** — every array reference is classified by
   its stride in the innermost loop (spatial locality) and by its reuse
   footprint, i.e. the volume of data touched between consecutive reuses of
   the same element (temporal locality).  Cache tiling caps the extents used
   in that footprint, which is precisely how tiling helps; register tiling
   (unroll-and-jam) removes a fraction of loads by keeping values live in
   registers across jammed iterations.
3. **Code-size effects of unrolling** — loop overhead decreases with the
   unroll factor while register pressure and, eventually, instruction-cache
   pressure increase with the product of unroll and register-tile factors.
   This produces the plateau → climb → plateau response the paper shows for
   ``adi`` (Figure 2) and the broad sweet spots of Figure 1.

The model works from the *base* (untransformed) kernel plus the
configuration, using closed forms for the effect of each transformation,
which keeps a single evaluation at a few tens of microseconds — fast enough
to generate the paper's 10 000-configuration datasets for all 11 benchmarks.
The transformation passes in :mod:`repro.ir.transforms` produce the actual
transformed IR and are used by the tests to validate the closed forms
(statement replication counts, step widening, footprint capping).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.analysis import innermost_bodies, InnermostBodyStats, reference_stride
from ..ir.expr import affine_coefficients
from ..ir.loopnest import ArrayRef, Kernel, Loop, Statement
from .cache import MemoryHierarchy, haswell_hierarchy
from .cpu import CoreModel, haswell_core

__all__ = ["TransformConfiguration", "CostBreakdown", "MachineCostModel"]


@dataclass(frozen=True)
class TransformConfiguration:
    """The transformation parameters selected by one search-space point.

    Keys are loop variable names of the *base* kernel.  Missing entries mean
    "leave that loop alone" (factor 1).
    """

    unroll: Mapping[str, int] = field(default_factory=dict)
    cache_tiles: Mapping[str, int] = field(default_factory=dict)
    register_tiles: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "unroll", dict(self.unroll))
        object.__setattr__(self, "cache_tiles", dict(self.cache_tiles))
        object.__setattr__(self, "register_tiles", dict(self.register_tiles))
        for name, mapping in (
            ("unroll", self.unroll),
            ("cache_tiles", self.cache_tiles),
            ("register_tiles", self.register_tiles),
        ):
            for var, value in mapping.items():
                if int(value) < 1:
                    raise ValueError(
                        f"{name}[{var!r}] must be a positive integer, got {value}"
                    )

    def unroll_factor(self, var: str) -> int:
        return int(self.unroll.get(var, 1))

    def cache_tile(self, var: str) -> Optional[int]:
        """Tile size for ``var``, or ``None`` when the loop is untiled.

        A tile of 1 is the SPAPT convention for "do not tile this loop", so
        it is reported as untiled rather than as single-iteration tiles.
        """
        tile = self.cache_tiles.get(var)
        if tile is None or int(tile) <= 1:
            return None
        return int(tile)

    def register_tile(self, var: str) -> int:
        return int(self.register_tiles.get(var, 1))


@dataclass(frozen=True)
class CostBreakdown:
    """Per-component contributions to the estimated runtime (seconds)."""

    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    spill_seconds: float
    icache_seconds: float

    @property
    def total_seconds(self) -> float:
        # Compute and memory overlap on an out-of-order core; penalties add.
        return (
            max(self.compute_seconds, self.memory_seconds)
            + self.overhead_seconds
            + self.spill_seconds
            + self.icache_seconds
        )


@dataclass(frozen=True)
class _BodyInfo:
    """Pre-computed, configuration-independent facts about one innermost body."""

    stats: InnermostBodyStats
    loop_vars: Tuple[str, ...]
    trip_counts: Dict[str, float]
    refs: Tuple[ArrayRef, ...]
    ref_strides: Tuple[int, ...]
    ref_loop_vars: Tuple[frozenset, ...]
    array_dims: Dict[str, Tuple[int, ...]]
    element_bytes: Dict[str, int]


class MachineCostModel:
    """Deterministic runtime / compile-time estimator for one kernel.

    Parameters
    ----------
    kernel:
        The base (untransformed) kernel.
    hierarchy, core:
        The simulated machine; defaults to the paper's Haswell server.
    time_scale:
        A per-benchmark multiplicative calibration factor applied to the
        runtime, used by the SPAPT substrate to place each kernel's runtime
        in the same range as the paper's measurements.
    compile_base_seconds / compile_per_statement_seconds:
        Compile-time model: a fixed front-end/back-end cost plus a sub-linear
        cost in the number of generated (unrolled and jammed) statements —
        heavily unrolled configurations take visibly longer to compile, as
        they do with gcc, but the cost saturates at ``compile_cap_seconds``
        (register allocation and scheduling slow down, they do not hang).
    """

    def __init__(
        self,
        kernel: Kernel,
        hierarchy: Optional[MemoryHierarchy] = None,
        core: Optional[CoreModel] = None,
        time_scale: float = 1.0,
        compile_base_seconds: float = 1.0,
        compile_per_statement_seconds: float = 0.0015,
        compile_statement_exponent: float = 0.8,
        compile_cap_seconds: float = 45.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._kernel = kernel
        self._hierarchy = hierarchy if hierarchy is not None else haswell_hierarchy()
        self._core = core if core is not None else haswell_core()
        self._time_scale = time_scale
        self._compile_base = compile_base_seconds
        self._compile_per_statement = compile_per_statement_seconds
        self._compile_exponent = compile_statement_exponent
        self._compile_cap = compile_cap_seconds
        self._bodies = [self._analyse_body(b) for b in innermost_bodies(kernel)]
        if not self._bodies:
            raise ValueError(f"kernel {kernel.name!r} has no innermost bodies")

    @property
    def kernel(self) -> Kernel:
        return self._kernel

    @property
    def hierarchy(self) -> MemoryHierarchy:
        return self._hierarchy

    @property
    def core(self) -> CoreModel:
        return self._core

    # ------------------------------------------------------------------ setup

    def _analyse_body(self, stats: InnermostBodyStats) -> _BodyInfo:
        chain = stats.context.loops
        loop_vars = tuple(loop.var for loop in chain)
        trip_counts: Dict[str, float] = {}
        bindings: Dict[str, int] = dict(self._kernel.sizes)
        for loop in chain:
            lower = loop.lower.evaluate(bindings)
            upper = loop.upper.evaluate(bindings)
            trip = max((upper - lower) / loop.step, 1.0)
            trip_counts[loop.var] = trip
            bindings[loop.var] = (lower + max(upper - 1, lower)) // 2
        statements = [
            node for node in stats.context.innermost.body if isinstance(node, Statement)
        ]
        refs: List[ArrayRef] = []
        for stmt in statements:
            refs.extend(stmt.refs())
        innermost_var = loop_vars[-1]
        array_dims: Dict[str, Tuple[int, ...]] = {}
        element_bytes: Dict[str, int] = {}
        strides: List[int] = []
        ref_loop_vars: List[frozenset] = []
        loop_var_set = set(loop_vars)
        for ref in refs:
            decl = self._kernel.array(ref.array)
            if ref.array not in array_dims:
                array_dims[ref.array] = tuple(
                    d.evaluate(self._kernel.sizes) for d in decl.dims
                )
                element_bytes[ref.array] = decl.element_bytes
            strides.append(
                reference_stride(
                    ref, innermost_var, self._kernel, array_dims[ref.array]
                )
            )
            ref_loop_vars.append(frozenset(ref.free_vars() & loop_var_set))
        return _BodyInfo(
            stats=stats,
            loop_vars=loop_vars,
            trip_counts=trip_counts,
            refs=tuple(refs),
            ref_strides=tuple(strides),
            ref_loop_vars=tuple(ref_loop_vars),
            array_dims=array_dims,
            element_bytes=element_bytes,
        )

    # -------------------------------------------------------------- public API

    def runtime_seconds(self, configuration: TransformConfiguration) -> float:
        """True mean runtime (seconds) of the kernel under ``configuration``."""
        return self.breakdown(configuration).total_seconds * self._time_scale

    def breakdown(self, configuration: TransformConfiguration) -> CostBreakdown:
        """Per-component runtime contributions (before the time-scale factor)."""
        compute = memory = overhead = spill = icache = 0.0
        for body in self._bodies:
            c, m, o, s, i = self._body_cycles(body, configuration)
            iterations = body.stats.iterations
            compute += c * iterations
            memory += m * iterations
            overhead += o * iterations
            spill += s * iterations
            icache += i * iterations
        cycle = self._core.cycle_seconds
        return CostBreakdown(
            compute_seconds=compute * cycle,
            memory_seconds=memory * cycle,
            overhead_seconds=overhead * cycle,
            spill_seconds=spill * cycle,
            icache_seconds=icache * cycle,
        )

    def compile_seconds(self, configuration: TransformConfiguration) -> float:
        """Compile time (seconds) of the kernel under ``configuration``."""
        generated_statements = 0.0
        tile_loops = sum(
            1
            for var, tile in configuration.cache_tiles.items()
            if tile and tile > 1
        )
        for body in self._bodies:
            unroll_product = self._unroll_product(body, configuration)
            generated_statements += body.stats.statements * unroll_product
        optimisation_cost = (
            self._compile_per_statement * generated_statements ** self._compile_exponent
        )
        return (
            self._compile_base
            + min(optimisation_cost, self._compile_cap)
            + 0.05 * tile_loops
        )

    def noise_sensitivity(self, configuration: TransformConfiguration) -> float:
        """Heteroskedasticity knob in [0, 1] for the noise substrate.

        Two kinds of configurations are especially sensitive to memory-layout
        perturbations (the dominant noise source the paper discusses):

        * configurations whose per-tile working set sits near a cache
          capacity boundary — ASLR and physical page allocation then decide
          whether conflict misses appear or not; and
        * configurations in the register-pressure *transition* region, where
          small code-layout changes decide whether the spill code stays in
          the fast path.

        The returned value is the maximum contribution over all loop nests.
        """
        sensitivity = 0.0
        for body in self._bodies:
            # Check the footprint of every loop depth: tiling and problem
            # size decide which of them lands near a capacity boundary.
            for level in range(len(body.loop_vars)):
                footprint = self._tile_footprint_bytes(body, configuration, level)
                sensitivity = max(
                    sensitivity, self._hierarchy.boundary_proximity(footprint)
                )
            pressure = self._live_values(body, configuration) / self._core.vector_registers
            onset = self._core.spill_onset_ratio
            width = max(self._core.spill_transition_width, 1e-6)
            transition = math.exp(-(((pressure - (onset + width)) / width) ** 2))
            sensitivity = max(sensitivity, 0.6 * transition)
        return min(sensitivity, 1.0)

    # ----------------------------------------------------------- per-body math

    def _unroll_product(
        self, body: _BodyInfo, configuration: TransformConfiguration
    ) -> int:
        product = 1
        for var in body.loop_vars:
            product *= configuration.unroll_factor(var)
            product *= configuration.register_tile(var)
        return product

    def _effective_extent(
        self, body: _BodyInfo, var: str, configuration: TransformConfiguration
    ) -> float:
        trip = body.trip_counts.get(var, 1.0)
        tile = configuration.cache_tile(var)
        if tile is not None and tile >= 1:
            return float(min(trip, tile))
        return trip

    def _touched_bytes(
        self,
        body: _BodyInfo,
        inner_vars: Sequence[str],
        configuration: TransformConfiguration,
    ) -> float:
        """Bytes touched by one full execution of the loops in ``inner_vars``."""
        inner = set(inner_vars)
        seen: set[Tuple[str, Tuple[str, ...]]] = set()
        total = 0.0
        for ref in body.refs:
            key = (ref.array, tuple(str(i) for i in ref.indices))
            if key in seen:
                continue
            seen.add(key)
            dims = body.array_dims[ref.array]
            elements = 1.0
            for dim_size, index in zip(dims, ref.indices):
                coeffs = affine_coefficients(index)
                extent = 1.0
                for var, coeff in coeffs.items():
                    if var in inner and coeff != 0:
                        extent *= max(
                            abs(coeff)
                            * self._effective_extent(body, var, configuration),
                            1.0,
                        )
                elements *= min(extent, float(dim_size))
            total += elements * body.element_bytes[ref.array]
        return total

    def _tile_footprint_bytes(
        self, body: _BodyInfo, configuration: TransformConfiguration, level: int
    ) -> float:
        """Footprint of the loops inside (and including) depth ``level``."""
        inner_vars = body.loop_vars[level:]
        return self._touched_bytes(body, inner_vars, configuration)

    def _reuse_footprint(
        self,
        body: _BodyInfo,
        ref_vars: frozenset,
        configuration: TransformConfiguration,
    ) -> float:
        """Data volume touched between consecutive reuses of a reference.

        The reuse of a reference is carried by the innermost enclosing loop
        whose variable does not appear in its subscripts; the footprint is
        everything touched by the loops nested inside that one.  References
        that vary with every loop have no temporal reuse — their footprint is
        effectively the whole traversal.
        """
        reuse_level: Optional[int] = None
        for level in range(len(body.loop_vars) - 1, -1, -1):
            if body.loop_vars[level] not in ref_vars:
                reuse_level = level
                break
        if reuse_level is None:
            return self._touched_bytes(body, body.loop_vars, configuration)
        inner_vars = body.loop_vars[reuse_level + 1 :]
        if not inner_vars:
            return 0.0
        return self._touched_bytes(body, inner_vars, configuration)

    def _live_values(
        self, body: _BodyInfo, configuration: TransformConfiguration
    ) -> float:
        """Approximate simultaneously live values in the unrolled/jammed body."""
        live = 0.0
        for ref_vars in body.ref_loop_vars:
            replicas = 1.0
            for var in body.loop_vars:
                factor = configuration.unroll_factor(var) * configuration.register_tile(var)
                if var in ref_vars:
                    replicas *= factor
            live += replicas
        # A handful of scalars (accumulators, induction variables) are always live.
        return live + 4.0

    def _body_cycles(
        self, body: _BodyInfo, configuration: TransformConfiguration
    ) -> Tuple[float, float, float, float, float]:
        """Per-source-iteration (compute, memory, overhead, spill, icache) cycles.

        The spill and I-cache contributions are the *extra* cycles caused by
        the multiplicative register-pressure and instruction-cache slowdowns
        applied to the compute/memory/overhead base.
        """
        stats = body.stats
        innermost_var = body.loop_vars[-1]
        inner_unroll = configuration.unroll_factor(innermost_var) * configuration.register_tile(
            innermost_var
        )

        compute = self._core.compute_cycles(stats.flops)

        # Memory: per-reference expected latency.  Register tiling
        # (unroll-and-jam) keeps values live across jammed replicas, so
        # references that are invariant to a register-tiled loop issue less
        # often; plain unrolling of a loop gives the same effect for
        # references invariant to that loop only when it is the innermost one
        # (the compiler can then reuse the loaded value within the body).
        loads = 0.0
        memory = 0.0
        for ref, stride, ref_vars in zip(body.refs, body.ref_strides, body.ref_loop_vars):
            weight = 1.0
            for var in body.loop_vars:
                if var in ref_vars:
                    continue
                reuse_factor = configuration.register_tile(var)
                if var == innermost_var:
                    reuse_factor *= configuration.unroll_factor(var)
                if reuse_factor > 1:
                    weight /= reuse_factor
            element_bytes = body.element_bytes[ref.array]
            footprint = self._reuse_footprint(body, ref_vars, configuration)
            access_cycles = self._hierarchy.expected_access_cycles(
                footprint, stride * element_bytes
            )
            memory += weight * access_cycles
            loads += weight
        store_fraction = stats.stores / max(stats.loads + stats.stores, 1)
        stores = store_fraction * loads
        issue = self._core.issue_cycles(loads, stores)
        memory = max(memory / max(self._core.load_ports, 1.0), issue)

        # Loop overhead: branch/induction work amortised by the innermost
        # unroll factor, plus a small cost for each extra tile-loop level and
        # for remainder iterations when the unroll factor does not divide the
        # (average) trip count.
        overhead = self._core.loop_overhead_cycles(max(inner_unroll, 1))
        inner_trip = body.trip_counts[innermost_var]
        if inner_unroll > 1 and inner_trip > 0:
            remainder = (inner_trip % inner_unroll) / inner_trip
            overhead += self._core.branch_overhead_cycles * remainder * 0.5
        for var in body.loop_vars:
            tile = configuration.cache_tile(var)
            if tile is not None:
                # One extra loop level: setup cost paid once per tile, spread
                # across the iterations of the loops nested inside it.
                extra = self._core.loop_setup_cycles / max(tile, 1.0)
                inner_iterations = 1.0
                for inner_var in body.loop_vars[body.loop_vars.index(var) + 1 :]:
                    inner_iterations *= max(body.trip_counts.get(inner_var, 1.0), 1.0)
                overhead += extra / max(inner_iterations, 1.0)

        base = max(compute, memory) + overhead

        spill_multiplier = self._core.register_pressure_multiplier(
            self._live_values(body, configuration)
        )
        body_instructions = (
            (stats.flops + stats.loads + stats.stores) * 1.3 + 4.0
        ) * self._unroll_product(body, configuration)
        icache_multiplier = self._core.icache_multiplier(body_instructions)

        spill = base * (spill_multiplier - 1.0)
        icache = base * spill_multiplier * (icache_multiplier - 1.0)

        return compute, memory, overhead, spill, icache
