"""Analytical cache-hierarchy model.

The substrate does not simulate individual memory accesses (SPAPT kernels
execute billions of them); instead it uses the standard analytical treatment
for dense loop nests: an access's cost is determined by

* its **reuse footprint** — how much data is touched between two uses of the
  same element.  The smallest cache level whose effective capacity covers
  the footprint is where the reuse is served from.
* its **spatial locality** — the stride between consecutive accesses
  relative to the line size.  Unit-stride streams only pay the deeper-level
  latency once per line; large strides pay it on every access.

The capacity test is smoothed (a logistic occupancy curve) rather than a
hard cliff, which mimics the gradual degradation real set-associative caches
show as the working set approaches capacity and also gives the surrogate
models a learnable, locally smooth response surface with genuinely sharp —
but not discontinuous — ridges where tiling stops fitting a level.

The default hierarchy matches the paper's evaluation machine, an Intel Core
i7-4770K (Haswell): 32 KB L1-D, 256 KB L2, 8 MB shared L3, 64-byte lines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["CacheLevel", "MemoryHierarchy", "haswell_hierarchy"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy."""

    name: str
    capacity_bytes: int
    line_bytes: int
    latency_cycles: float
    utilization: float = 0.75

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.line_bytes <= 0:
            raise ValueError(f"{self.name}: line size must be positive")
        if self.latency_cycles < 0:
            raise ValueError(f"{self.name}: latency cannot be negative")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(f"{self.name}: utilization must be in (0, 1]")

    @property
    def effective_capacity(self) -> float:
        """Capacity usable before conflict/associativity effects kick in."""
        return self.capacity_bytes * self.utilization

    def hit_probability(self, footprint_bytes: float, sharpness: float = 4.0) -> float:
        """Probability that a reuse with the given footprint is served here.

        A logistic curve in log-space: ~1 when the footprint is well below
        the effective capacity, ~0 well above it, with a transition whose
        width is controlled by ``sharpness`` (larger is sharper).
        """
        if footprint_bytes <= 0:
            return 1.0
        ratio = footprint_bytes / self.effective_capacity
        return 1.0 / (1.0 + ratio ** sharpness)


@dataclass(frozen=True)
class MemoryHierarchy:
    """A stack of cache levels backed by DRAM."""

    levels: Tuple[CacheLevel, ...]
    dram_latency_cycles: float = 220.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a memory hierarchy needs at least one cache level")
        capacities = [level.capacity_bytes for level in self.levels]
        if capacities != sorted(capacities):
            raise ValueError("cache levels must be ordered from smallest to largest")
        if self.dram_latency_cycles <= 0:
            raise ValueError("DRAM latency must be positive")

    @property
    def l1(self) -> CacheLevel:
        return self.levels[0]

    def expected_access_cycles(
        self, reuse_footprint_bytes: float, stride_bytes: float
    ) -> float:
        """Expected cycles to satisfy one access.

        Parameters
        ----------
        reuse_footprint_bytes:
            Data volume touched between consecutive reuses of the accessed
            element (``0`` means the value stays register/L1 resident,
            ``inf`` means it is never reused).
        stride_bytes:
            Distance in bytes between consecutive accesses of this reference
            in the innermost loop.  ``0`` means the same element is accessed
            repeatedly.
        """
        if reuse_footprint_bytes < 0:
            raise ValueError("reuse footprint cannot be negative")
        if stride_bytes < 0:
            stride_bytes = -stride_bytes

        # Fraction of accesses that actually have to go past a cache line:
        # repeated or unit-stride accesses amortise a line fill over
        # line/stride accesses; strides beyond a line pay it every time.
        line = self.l1.line_bytes
        if stride_bytes == 0:
            spatial_miss_fraction = 0.0
        else:
            spatial_miss_fraction = min(1.0, stride_bytes / line)

        expected = self.l1.latency_cycles
        # Probability the reuse is NOT captured by each successive level.
        escape_probability = 1.0
        previous_latency = self.l1.latency_cycles
        for level in self.levels:
            capture = level.hit_probability(reuse_footprint_bytes)
            # Accesses escaping the previous levels but captured here pay
            # this level's latency (weighted by how often a new line is
            # actually needed).
            expected += (
                escape_probability
                * capture
                * spatial_miss_fraction
                * max(level.latency_cycles - previous_latency, 0.0)
            )
            escape_probability *= 1.0 - capture
            previous_latency = level.latency_cycles
        expected += (
            escape_probability
            * spatial_miss_fraction
            * max(self.dram_latency_cycles - previous_latency, 0.0)
        )
        return expected

    def boundary_proximity(self, footprint_bytes: float) -> float:
        """How close a footprint sits to a capacity boundary, in [0, 1].

        Configurations whose working set straddles a cache capacity are the
        ones whose measured runtime is most sensitive to memory-layout
        perturbations (conflict misses come and go with ASLR).  The noise
        substrate uses this as its heteroskedasticity knob.
        """
        if footprint_bytes <= 0:
            return 0.0
        proximity = 0.0
        for level in list(self.levels):
            ratio = footprint_bytes / level.effective_capacity
            # exp(-(log ratio)^2 / width): 1 exactly at the boundary, decaying
            # as the footprint moves away from it in either direction.  The
            # width is deliberately narrow so that only working sets genuinely
            # straddling a capacity are flagged as layout sensitive.
            log_ratio = math.log(ratio)
            proximity = max(proximity, math.exp(-(log_ratio ** 2) / 0.18))
        return min(proximity, 1.0)


def haswell_hierarchy() -> MemoryHierarchy:
    """The cache hierarchy of the paper's Intel Core i7-4770K machine."""
    return MemoryHierarchy(
        levels=(
            CacheLevel("L1D", capacity_bytes=32 * 1024, line_bytes=64, latency_cycles=4.0),
            CacheLevel("L2", capacity_bytes=256 * 1024, line_bytes=64, latency_cycles=12.0),
            CacheLevel("L3", capacity_bytes=8 * 1024 * 1024, line_bytes=64, latency_cycles=36.0),
        ),
        dram_latency_cycles=220.0,
    )
