"""Machine model: cache hierarchy, core model, runtime and compile-time costs.

Replaces the paper's physical evaluation machine (Intel Core i7-4770K,
gcc 4.7.2) with an analytical model that maps (kernel, transformation
configuration) to a deterministic runtime and compile time.
"""

from .cache import CacheLevel, MemoryHierarchy, haswell_hierarchy
from .cpu import CoreModel, haswell_core
from .cost_model import CostBreakdown, MachineCostModel, TransformConfiguration

__all__ = [
    "CacheLevel",
    "MemoryHierarchy",
    "haswell_hierarchy",
    "CoreModel",
    "haswell_core",
    "CostBreakdown",
    "MachineCostModel",
    "TransformConfiguration",
]
