"""Summary statistics for noisy runtime measurements.

The paper's evaluation machinery is built on a small number of statistical
quantities:

* the sample mean and (unbiased) sample variance of a set of observations,
* the 95% confidence interval of the mean and the *CI/mean* ratio used for
  post-hoc validation of fixed sampling plans (Section 4.3 of the paper),
* the Mean Absolute Error (MAE) used in the motivation study (Figure 1),
* the Root Mean Squared Error (RMSE) used to score models (Equation 1).

Everything here operates on plain sequences or numpy arrays and has no
knowledge of benchmarks, models or the learning loop, so it can be tested
in isolation and reused by the profiler, the dataset generator and the
experiment harness alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "SampleSummary",
    "summarize",
    "confidence_interval_halfwidth",
    "ci_to_mean_ratio",
    "mean_absolute_error",
    "root_mean_squared_error",
    "geometric_mean",
    "welford_update",
    "RunningStats",
]


@dataclass(frozen=True)
class SampleSummary:
    """Summary of a set of repeated runtime observations.

    Attributes
    ----------
    count:
        Number of observations.
    mean:
        Sample mean.
    variance:
        Unbiased sample variance (``ddof=1``); zero when ``count < 2``.
    std:
        Square root of ``variance``.
    ci_halfwidth:
        Half-width of the 95% confidence interval of the mean (Student-t);
        zero when ``count < 2``.
    minimum / maximum:
        Extremes of the observations.
    """

    count: int
    mean: float
    variance: float
    std: float
    ci_halfwidth: float
    minimum: float
    maximum: float

    @property
    def ci_to_mean(self) -> float:
        """Ratio of the CI half-width to the mean (the paper's validation metric)."""
        return ci_to_mean_ratio(self.mean, self.ci_halfwidth)

    def passes_ci_validation(self, threshold: float = 0.01) -> bool:
        """Return ``True`` if the CI/mean ratio is within ``threshold``.

        The paper's post-hoc validation (Section 4.3) uses a 95% confidence
        level and a 1% CI/mean threshold by default, with 5% as the "more
        generous" alternative.
        """
        return self.ci_to_mean <= threshold


def summarize(observations: Sequence[float], confidence: float = 0.95) -> SampleSummary:
    """Compute a :class:`SampleSummary` from raw observations.

    Parameters
    ----------
    observations:
        One or more runtime measurements (seconds).
    confidence:
        Confidence level for the interval half-width (default 95%).
    """
    values = np.asarray(list(observations), dtype=float)
    if values.size == 0:
        raise ValueError("summarize() requires at least one observation")
    count = int(values.size)
    mean = float(values.mean())
    if count >= 2:
        variance = float(values.var(ddof=1))
    else:
        variance = 0.0
    std = math.sqrt(variance)
    half = confidence_interval_halfwidth(values, confidence=confidence)
    return SampleSummary(
        count=count,
        mean=mean,
        variance=variance,
        std=std,
        ci_halfwidth=half,
        minimum=float(values.min()),
        maximum=float(values.max()),
    )


def confidence_interval_halfwidth(
    observations: Sequence[float], confidence: float = 0.95
) -> float:
    """Half-width of the Student-t confidence interval for the mean.

    Returns zero for fewer than two observations (no statistical certainty
    is possible, matching the paper's remark that two observations is the
    minimum for any certainty).
    """
    values = np.asarray(list(observations), dtype=float)
    n = values.size
    if n < 2:
        return 0.0
    sem = float(values.std(ddof=1)) / math.sqrt(n)
    if sem == 0.0:
        return 0.0
    t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return t_crit * sem


def ci_to_mean_ratio(mean: float, ci_halfwidth: float) -> float:
    """CI half-width divided by the mean, guarding against a zero mean."""
    if mean == 0.0:
        return float("inf") if ci_halfwidth > 0 else 0.0
    return abs(ci_halfwidth / mean)


def mean_absolute_error(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """Mean absolute error between two equally long sequences."""
    pred = np.asarray(list(predicted), dtype=float)
    obs = np.asarray(list(observed), dtype=float)
    if pred.shape != obs.shape:
        raise ValueError(
            f"shape mismatch: predicted {pred.shape} vs observed {obs.shape}"
        )
    if pred.size == 0:
        raise ValueError("mean_absolute_error() requires at least one pair")
    return float(np.mean(np.abs(pred - obs)))


def root_mean_squared_error(
    predicted: Sequence[float], observed: Sequence[float]
) -> float:
    """Root mean squared error (Equation 1 in the paper)."""
    pred = np.asarray(list(predicted), dtype=float)
    obs = np.asarray(list(observed), dtype=float)
    if pred.shape != obs.shape:
        raise ValueError(
            f"shape mismatch: predicted {pred.shape} vs observed {obs.shape}"
        )
    if pred.size == 0:
        raise ValueError("root_mean_squared_error() requires at least one pair")
    return float(np.sqrt(np.mean((pred - obs) ** 2)))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (used for the speed-up summary)."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        raise ValueError("geometric_mean() requires at least one value")
    if np.any(vals <= 0):
        raise ValueError("geometric_mean() requires strictly positive values")
    return float(np.exp(np.mean(np.log(vals))))


def welford_update(
    count: int, mean: float, m2: float, new_value: float
) -> tuple[int, float, float]:
    """One step of Welford's online mean/variance algorithm.

    Returns the updated ``(count, mean, m2)`` triple where ``m2`` is the sum
    of squared deviations from the running mean.
    """
    count += 1
    delta = new_value - mean
    mean += delta / count
    delta2 = new_value - mean
    m2 += delta * delta2
    return count, mean, m2


class RunningStats:
    """Incrementally updated mean/variance/CI for a stream of observations.

    The sequential-analysis learner adds observations to a configuration one
    at a time; this class keeps its summary current in O(1) per observation
    using Welford's algorithm.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        value = float(value)
        self._count, self._mean, self._m2 = welford_update(
            self._count, self._mean, self._m2, value
        )
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Incorporate several observations."""
        for value in values:
            self.add(value)

    def copy(self) -> "RunningStats":
        """An independent snapshot carrying the exact accumulator state.

        The copy reproduces the original's Welford state bit for bit, so a
        stopping rule evaluated against ``copy + new observations`` matches
        one evaluated against a single stats object that saw the whole
        stream (the measurement brokers rely on this).
        """
        clone = RunningStats()
        clone._count = self._count
        clone._mean = self._mean
        clone._m2 = self._m2
        clone._min = self._min
        clone._max = self._max
        return clone

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance; zero when fewer than two observations."""
        if self._count == 0:
            raise ValueError("no observations recorded")
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def summary(self, confidence: float = 0.95) -> SampleSummary:
        """Materialise the current state as a :class:`SampleSummary`."""
        if self._count == 0:
            raise ValueError("no observations recorded")
        if self._count >= 2 and self.std > 0:
            sem = self.std / math.sqrt(self._count)
            t_crit = float(
                _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=self._count - 1)
            )
            half = t_crit * sem
        else:
            half = 0.0
        return SampleSummary(
            count=self._count,
            mean=self._mean,
            variance=self.variance,
            std=self.std,
            ci_halfwidth=half,
            minimum=self._min,
            maximum=self._max,
        )
