"""The simulated profiler: compile + run a configuration, charging cost.

In the paper every training example is obtained by compiling a SPAPT kernel
with a particular set of optimization parameters and running the binary one
or more times; the *cost* of learning is the cumulative compilation and
runtime of everything executed during training (Section 4.3).

This module provides the same interface against the simulated substrate:

* :class:`TunableProgram` is the protocol any benchmark must satisfy — it
  exposes the deterministic *true* runtime and compile time for a
  configuration plus a noise model and a per-configuration noise
  sensitivity.  The SPAPT substrate (:mod:`repro.spapt`) implements it by
  applying IR transformations and the machine cost model.
* :class:`Profiler` turns configurations into noisy observations, caching
  "binaries" so that a configuration is only charged its compile time the
  first time it is compiled (exactly as a real harness caches binaries), and
  accumulating the cost ledger the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .noise import NoiseModel
from .stats import RunningStats, SampleSummary

__all__ = ["TunableProgram", "CostLedger", "Observation", "Profiler"]


class TunableProgram(Protocol):
    """The interface the profiler needs from a benchmark.

    ``Configuration`` objects are treated opaquely; they only need to be
    hashable (the SPAPT substrate uses tuples of parameter values).
    """

    name: str

    def true_runtime(self, configuration: Sequence[int]) -> float:
        """Deterministic mean runtime (seconds) of the configuration."""
        ...

    def compile_time(self, configuration: Sequence[int]) -> float:
        """Compilation time (seconds) charged the first time a configuration is built."""
        ...

    def noise_sensitivity(self, configuration: Sequence[int]) -> float:
        """Heteroskedasticity knob in [0, 1] for this configuration."""
        ...

    @property
    def noise_model(self) -> NoiseModel:
        """The noise model perturbing this benchmark's measurements."""
        ...


@dataclass
class CostLedger:
    """Running account of simulated profiling cost.

    The experiments plot model error against *evaluation time*, defined in
    the paper as cumulative compilation plus runtime cost of everything
    executed during training.  The ledger tracks both parts separately so
    ablations can report them independently.
    """

    compile_seconds: float = 0.0
    runtime_seconds: float = 0.0
    compilations: int = 0
    executions: int = 0

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.runtime_seconds

    def charge_compile(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("compile time cannot be negative")
        self.compile_seconds += seconds
        self.compilations += 1

    def charge_run(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("runtime cannot be negative")
        self.runtime_seconds += seconds
        self.executions += 1

    def snapshot(self) -> "CostLedger":
        """An independent copy of the current totals."""
        return CostLedger(
            compile_seconds=self.compile_seconds,
            runtime_seconds=self.runtime_seconds,
            compilations=self.compilations,
            executions=self.executions,
        )


@dataclass(frozen=True)
class Observation:
    """A single profiled execution of a configuration."""

    configuration: Tuple[int, ...]
    runtime: float
    index: int


class Profiler:
    """Compile-and-measure front end over a :class:`TunableProgram`.

    The profiler owns the random generator used for noise so that an
    experiment seeded once produces the exact same stream of measurements.
    It keeps, per configuration, the running statistics of all observations
    taken so far — the sequential-analysis learner reads those to decide
    whether a configuration still looks under-sampled.
    """

    def __init__(
        self,
        program: TunableProgram,
        rng: Optional[np.random.Generator] = None,
        charge_compile_once: bool = True,
    ) -> None:
        self._program = program
        self._rng = rng if rng is not None else np.random.default_rng()
        self._charge_compile_once = charge_compile_once
        self._ledger = CostLedger()
        self._compiled: set[Hashable] = set()
        self._stats: Dict[Tuple[int, ...], RunningStats] = {}
        self._observations: List[Observation] = []

    @property
    def program(self) -> TunableProgram:
        return self._program

    # ---------------------------------------------------------- checkpointing

    def __getstate__(self) -> dict:
        """Pickle everything except the program (benchmarks hold unpicklable
        memoisation caches); :meth:`attach_program` reattaches one on resume."""
        state = self.__dict__.copy()
        state["_program"] = None
        return state

    def attach_program(self, program: TunableProgram) -> None:
        """Reattach a program to an unpickled profiler.

        The profiler's own state (ledger, per-configuration statistics,
        compiled set, generator) is restored by pickle; the program is
        supplied by the checkpoint owner, which must also restore any
        stateful noise components the program carries.
        """
        self._program = program

    @property
    def ledger(self) -> CostLedger:
        return self._ledger

    @property
    def observations(self) -> Tuple[Observation, ...]:
        return tuple(self._observations)

    def observation_count(self, configuration: Sequence[int]) -> int:
        """How many times ``configuration`` has been measured so far."""
        key = tuple(configuration)
        stats = self._stats.get(key)
        return stats.count if stats is not None else 0

    def summary(self, configuration: Sequence[int]) -> SampleSummary:
        """Summary statistics of all observations of ``configuration``."""
        key = tuple(configuration)
        if key not in self._stats:
            raise KeyError(f"configuration {key} has never been measured")
        return self._stats[key].summary()

    def mean_runtime(self, configuration: Sequence[int]) -> float:
        """Mean of the observations taken so far for ``configuration``."""
        key = tuple(configuration)
        if key not in self._stats:
            raise KeyError(f"configuration {key} has never been measured")
        return self._stats[key].mean

    def measure(self, configuration: Sequence[int], repetitions: int = 1) -> np.ndarray:
        """Compile (if needed) and run ``configuration`` ``repetitions`` times.

        Every execution charges its observed runtime to the ledger; the
        compile time is charged only on the first build of a configuration
        (binaries are cached), unless the profiler was constructed with
        ``charge_compile_once=False`` in which case each call recompiles.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        key = tuple(int(v) for v in configuration)
        self._ensure_compiled(key)
        true_runtime = self._program.true_runtime(key)
        sensitivity = self._program.noise_sensitivity(key)
        stats = self._stats.setdefault(key, RunningStats())
        results = np.empty(repetitions, dtype=float)
        for i in range(repetitions):
            observed = self._program.noise_model.observe(
                true_runtime, self._rng, sensitivity=sensitivity
            )
            self._ledger.charge_run(observed)
            stats.add(observed)
            self._observations.append(
                Observation(configuration=key, runtime=observed, index=stats.count)
            )
            results[i] = observed
        return results

    def measure_many(
        self, configurations: Iterable[Sequence[int]], repetitions: int = 1
    ) -> List[np.ndarray]:
        """Measure several configurations, returning one array per configuration."""
        return [self.measure(cfg, repetitions=repetitions) for cfg in configurations]

    def _ensure_compiled(self, key: Tuple[int, ...]) -> None:
        if self._charge_compile_once and key in self._compiled:
            return
        compile_seconds = self._program.compile_time(key)
        self._ledger.charge_compile(compile_seconds)
        self._compiled.add(key)
