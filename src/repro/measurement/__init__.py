"""Measurement substrate: noise models, the simulated profiler and statistics.

This package replaces the physical measurement apparatus of the paper (a
single-user x86 server timed with ``clock_gettime``) with a controllable,
reproducible simulation of the same phenomena: deterministic "true" runtimes
perturbed by interference, layout, spike and jitter noise, and a profiler
that charges compilation and execution cost exactly as the paper accounts
it.
"""

from .broker import (
    MeasurementBroker,
    MeasurementRequest,
    MeasurementResult,
    ProfilerBroker,
    ReplayBroker,
    ReplayMissError,
    ReplayTrace,
)
from .faults import (
    BrokerPolicy,
    CorruptMeasurementError,
    FaultInjectingBroker,
    FaultPlan,
    MeasurementFailedError,
    MeasurementTimeoutError,
    ResilientBroker,
    TransientMeasurementError,
)
from .noise import (
    FrequencyDrift,
    GaussianJitter,
    HeavyTailedSpikes,
    HeteroskedasticLayoutNoise,
    LognormalInterference,
    NoiseComponent,
    NoiseModel,
    NoiseProfile,
    noise_model_from_profile,
)
from .profiler import CostLedger, Observation, Profiler, TunableProgram
from .stats import (
    RunningStats,
    SampleSummary,
    confidence_interval_halfwidth,
    ci_to_mean_ratio,
    geometric_mean,
    mean_absolute_error,
    root_mean_squared_error,
    summarize,
    welford_update,
)

__all__ = [
    "MeasurementBroker",
    "MeasurementRequest",
    "MeasurementResult",
    "ProfilerBroker",
    "ReplayBroker",
    "ReplayMissError",
    "ReplayTrace",
    "BrokerPolicy",
    "CorruptMeasurementError",
    "FaultInjectingBroker",
    "FaultPlan",
    "MeasurementFailedError",
    "MeasurementTimeoutError",
    "ResilientBroker",
    "TransientMeasurementError",
    "FrequencyDrift",
    "GaussianJitter",
    "HeavyTailedSpikes",
    "HeteroskedasticLayoutNoise",
    "LognormalInterference",
    "NoiseComponent",
    "NoiseModel",
    "NoiseProfile",
    "noise_model_from_profile",
    "CostLedger",
    "Observation",
    "Profiler",
    "TunableProgram",
    "RunningStats",
    "SampleSummary",
    "confidence_interval_halfwidth",
    "ci_to_mean_ratio",
    "geometric_mean",
    "mean_absolute_error",
    "root_mean_squared_error",
    "summarize",
    "welford_update",
]
