"""Measurement-noise models for simulated profiling runs.

The paper goes to some length (Sections 1 and 2, Table 2) to characterise the
noise that plagues runtime measurements on real machines:

* **interference** from other processes competing for cores, caches and
  memory bandwidth — multiplicative, bursty, occasionally extreme;
* **frequency/thermal effects** (e.g. Turbo Boost) — slow multiplicative
  drift;
* **memory-layout effects** (ASLR, physical page allocation) — the layout is
  fixed per *execution*, so it behaves like a per-run random offset whose
  magnitude depends on how sensitive the generated code is to conflict
  misses, i.e. it is *heteroskedastic* across the optimization space;
* **timer quantisation and OS jitter** — small additive noise;
* **heavy-tailed spikes** — a daemon waking up at the wrong moment.

Because we replace real hardware with a cost-model substrate
(:mod:`repro.machine`), the noise must be recreated synthetically.  Each
noise component below perturbs a *true* runtime into an *observed* runtime.
A :class:`NoiseModel` composes components and is attached to a benchmark by
the SPAPT substrate, calibrated so that the per-benchmark variance and
CI/mean spreads resemble Table 2 of the paper (low for ``lu``/``mvt``/
``hessian``, extreme for ``correlation``).

All randomness flows through a caller-supplied :class:`numpy.random.Generator`
so experiments are reproducible.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "NoiseComponent",
    "LognormalInterference",
    "GaussianJitter",
    "HeavyTailedSpikes",
    "HeteroskedasticLayoutNoise",
    "FrequencyDrift",
    "NoiseModel",
    "NoiseProfile",
    "noise_model_from_profile",
]


class NoiseComponent(ABC):
    """A single source of measurement noise.

    A component maps a true runtime (seconds) to a perturbed runtime.  The
    optional ``sensitivity`` argument is a per-configuration scalar in
    ``[0, 1]`` produced by the benchmark substrate; it lets a component be
    heteroskedastic — stronger in some regions of the optimization space
    than others — which is the property Table 2 documents and the
    sequential-analysis learner exploits.
    """

    @abstractmethod
    def apply(
        self, runtime: float, rng: np.random.Generator, sensitivity: float = 0.0
    ) -> float:
        """Return the runtime perturbed by this component."""


@dataclass
class LognormalInterference(NoiseComponent):
    """Multiplicative interference from competing processes.

    The observed runtime is ``runtime * exp(eps)`` with
    ``eps ~ Normal(0, sigma)``.  A lognormal factor is the standard model for
    contention-induced slowdowns: it is always positive, skewed towards
    slowdowns, and scales with the runtime itself.
    """

    sigma: float = 0.005

    def apply(
        self, runtime: float, rng: np.random.Generator, sensitivity: float = 0.0
    ) -> float:
        if self.sigma <= 0:
            return runtime
        return runtime * float(np.exp(rng.normal(0.0, self.sigma)))


@dataclass
class GaussianJitter(NoiseComponent):
    """Small additive noise from timer resolution and OS scheduling jitter.

    ``sigma_seconds`` is an absolute perturbation; the result is clamped to
    stay positive.
    """

    sigma_seconds: float = 1e-4

    def apply(
        self, runtime: float, rng: np.random.Generator, sensitivity: float = 0.0
    ) -> float:
        if self.sigma_seconds <= 0:
            return runtime
        perturbed = runtime + float(rng.normal(0.0, self.sigma_seconds))
        return max(perturbed, runtime * 0.01)


@dataclass
class HeavyTailedSpikes(NoiseComponent):
    """Occasional large slowdowns (a daemon or cron job stealing the core).

    With probability ``probability`` the run is slowed down by a factor drawn
    from ``1 + Exponential(scale)``.
    """

    probability: float = 0.01
    scale: float = 0.05

    def apply(
        self, runtime: float, rng: np.random.Generator, sensitivity: float = 0.0
    ) -> float:
        if self.probability <= 0:
            return runtime
        if rng.random() < self.probability:
            return runtime * (1.0 + float(rng.exponential(self.scale)))
        return runtime


@dataclass
class HeteroskedasticLayoutNoise(NoiseComponent):
    """Memory-layout (ASLR / page-colouring) noise that varies across the space.

    Curtsinger & Berger (STABILIZER) and de Oliveira et al. showed that
    layout-induced variation can dwarf the effect of the optimizations being
    studied, and that its magnitude depends on the code being measured.  The
    benchmark substrate supplies a per-configuration ``sensitivity`` in
    ``[0, 1]`` (e.g. configurations whose working set sits near a cache-size
    boundary are sensitive); the multiplicative noise sigma interpolates
    between ``sigma_low`` and ``sigma_high`` accordingly.
    """

    sigma_low: float = 0.002
    sigma_high: float = 0.08

    def apply(
        self, runtime: float, rng: np.random.Generator, sensitivity: float = 0.0
    ) -> float:
        sensitivity = min(max(sensitivity, 0.0), 1.0)
        sigma = self.sigma_low + (self.sigma_high - self.sigma_low) * sensitivity
        if sigma <= 0:
            return runtime
        return runtime * float(np.exp(rng.normal(0.0, sigma)))


@dataclass
class FrequencyDrift(NoiseComponent):
    """Slow multiplicative drift from DVFS / Turbo Boost / thermal throttling.

    Modelled as a bounded random walk shared across consecutive observations:
    each call nudges the current frequency factor and applies it.  The state
    is intentionally kept inside the component so that back-to-back
    observations of the *same* configuration are correlated, as they are on a
    machine whose clock is drifting.
    """

    step_sigma: float = 0.002
    max_deviation: float = 0.03
    _state: float = field(default=0.0, repr=False)

    def apply(
        self, runtime: float, rng: np.random.Generator, sensitivity: float = 0.0
    ) -> float:
        if self.step_sigma <= 0:
            return runtime
        self._state += float(rng.normal(0.0, self.step_sigma))
        self._state = min(max(self._state, -self.max_deviation), self.max_deviation)
        return runtime * (1.0 + self._state)


@dataclass(frozen=True)
class NoiseProfile:
    """Calibration knobs describing how noisy a benchmark's measurements are.

    The values are chosen per benchmark by :mod:`repro.spapt.suite` so that
    the resulting variance and CI/mean spreads have the same qualitative
    structure as Table 2 of the paper.

    Attributes
    ----------
    interference_sigma:
        Baseline multiplicative noise applied everywhere.
    layout_sigma_high:
        Multiplicative noise in the most layout-sensitive regions.
    spike_probability / spike_scale:
        Frequency and magnitude of heavy-tailed slowdowns.
    jitter_seconds:
        Additive timer jitter.
    drift_sigma:
        Step size of the slow frequency drift (0 disables it).
    """

    interference_sigma: float = 0.004
    layout_sigma_high: float = 0.05
    spike_probability: float = 0.01
    spike_scale: float = 0.05
    jitter_seconds: float = 5e-5
    drift_sigma: float = 0.0


def noise_model_from_profile(profile: NoiseProfile) -> "NoiseModel":
    """Build a :class:`NoiseModel` from a calibration profile."""
    components: list[NoiseComponent] = [
        LognormalInterference(sigma=profile.interference_sigma),
        HeteroskedasticLayoutNoise(
            sigma_low=profile.interference_sigma / 2.0,
            sigma_high=profile.layout_sigma_high,
        ),
        HeavyTailedSpikes(
            probability=profile.spike_probability, scale=profile.spike_scale
        ),
        GaussianJitter(sigma_seconds=profile.jitter_seconds),
    ]
    if profile.drift_sigma > 0:
        components.append(FrequencyDrift(step_sigma=profile.drift_sigma))
    return NoiseModel(components)


class NoiseModel:
    """A composition of noise components applied to a true runtime.

    The model itself is stateless apart from any stateful components (such as
    :class:`FrequencyDrift`); the random generator is supplied per call so the
    profiler controls reproducibility.
    """

    def __init__(self, components: Optional[Sequence[NoiseComponent]] = None) -> None:
        self._components: list[NoiseComponent] = list(components or [])

    @property
    def components(self) -> tuple[NoiseComponent, ...]:
        return tuple(self._components)

    def observe(
        self,
        true_runtime: float,
        rng: np.random.Generator,
        sensitivity: float = 0.0,
    ) -> float:
        """Produce one noisy observation of ``true_runtime``.

        Parameters
        ----------
        true_runtime:
            The deterministic runtime predicted by the machine cost model.
        rng:
            Random generator owned by the caller (profiler or dataset
            generator).
        sensitivity:
            Per-configuration heteroskedasticity knob in ``[0, 1]``.
        """
        if true_runtime <= 0:
            raise ValueError(f"true_runtime must be positive, got {true_runtime!r}")
        if not math.isfinite(true_runtime):
            raise ValueError("true_runtime must be finite")
        observed = float(true_runtime)
        for component in self._components:
            observed = component.apply(observed, rng, sensitivity=sensitivity)
        return max(observed, true_runtime * 1e-3)

    def observe_many(
        self,
        true_runtime: float,
        count: int,
        rng: np.random.Generator,
        sensitivity: float = 0.0,
    ) -> np.ndarray:
        """Produce ``count`` independent observations as a numpy array."""
        if count < 1:
            raise ValueError("count must be at least 1")
        return np.array(
            [
                self.observe(true_runtime, rng, sensitivity=sensitivity)
                for _ in range(count)
            ],
            dtype=float,
        )

    def drift_state(self) -> list[float]:
        """The random-walk state of every stateful (frequency-drift)
        component, in component order — empty for drift-free models.

        Together with :meth:`restore_drift_state` this is the
        JSON-serialisable counterpart of checkpointing the whole model:
        the measurement-replay trace records it after every live
        measurement so a partially replayed run can resume the drift walk
        exactly where the recording left it.
        """
        return [
            component._state
            for component in self._components
            if isinstance(component, FrequencyDrift)
        ]

    def restore_drift_state(self, state: Sequence[float]) -> None:
        """Install drift-walk state captured by :meth:`drift_state`."""
        values = [float(v) for v in state]
        drifts = [
            component
            for component in self._components
            if isinstance(component, FrequencyDrift)
        ]
        if len(values) != len(drifts):
            raise ValueError(
                f"drift state has {len(values)} entries, but the model has "
                f"{len(drifts)} frequency-drift components"
            )
        for component, value in zip(drifts, values):
            component._state = value

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """A model with no components — observations equal the true runtime."""
        return cls([])
