"""Fault tolerance for the measurement pipeline: injection and resilience.

Real profiling — the paper's whole cost model — runs on machines that
fail, hang and lie.  This module adds the two broker wrappers that let the
rest of the stack assume measurements either succeed or fail *cleanly*:

* :class:`FaultInjectingBroker` wraps any
  :class:`~repro.measurement.broker.MeasurementBroker` and deterministically
  (seeded) injects the in-the-wild failure modes: transient exceptions,
  hangs/timeouts, corrupted results (NaN, negative, wild outliers) and
  crash-before-record losses.  Crucially, every fabricated fault fires
  *before* the wrapped broker is consulted, so a faulted attempt consumes
  nothing from the profiler's noise stream — a retry then performs the real
  measurement exactly once, which is what makes retries invisible to the
  learner (the chaos bit-identity contract pinned by ``tests/test_chaos.py``).
  The one exception is the ``crash`` fault, which deliberately *does*
  measure and then loses the result — modelling a worker dying between
  measurement and record — and is therefore excluded from bit-identity
  scenarios.

* :class:`ResilientBroker` is the policy wrapper production runs put above
  a live broker: per-request deadlines, bounded retries with seeded
  exponential backoff + jitter, result sanity checks (non-finite and
  negative runtimes are rejected at the
  :class:`~repro.measurement.broker.MeasurementResult` boundary; finite
  outliers are rejected against the request's ``prior_stats``), and a
  dead-letter record for requests that fail permanently.  On the happy
  path with no deadline configured the wrapper is a direct call plus a
  cheap sanity scan — overhead is benchmarked under 5% in
  ``benchmarks/test_bench_broker_overhead.py``.

The retry RNG (backoff jitter) and the fault RNG are plain
:class:`random.Random` instances owned by the wrappers — they never touch
the session's NumPy generator, so retrying, backing off or injecting
faults cannot perturb the learning trajectory.

:class:`BrokerPolicy` is the picklable bundle of knobs the experiment
layer threads from ``run_all --max-retries/--measure-timeout/
--inject-faults`` down to each work unit's broker chain.
"""

from __future__ import annotations

import json
import logging
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .broker import MeasurementBroker, MeasurementRequest, MeasurementResult

__all__ = [
    "TransientMeasurementError",
    "CorruptMeasurementError",
    "MeasurementTimeoutError",
    "MeasurementFailedError",
    "FaultPlan",
    "FaultInjectingBroker",
    "ResilientBroker",
    "BrokerPolicy",
]

logger = logging.getLogger(__name__)


class TransientMeasurementError(RuntimeError):
    """A measurement attempt failed in a way a retry may fix."""


class CorruptMeasurementError(TransientMeasurementError):
    """An attempt produced values the result sanity checks rejected."""


class MeasurementTimeoutError(TransientMeasurementError):
    """An attempt exceeded its per-request deadline."""


class MeasurementFailedError(RuntimeError):
    """Every allowed attempt at a request failed.

    ``dead_letter`` is the JSON-serialisable record of the failure (the
    request identity plus the error of every attempt) that
    :class:`ResilientBroker` also appends to its dead-letter log.
    """

    def __init__(self, message: str, dead_letter: dict) -> None:
        super().__init__(message)
        self.dead_letter = dead_letter


def _parse_fail_units(raw: str) -> Tuple[str, ...]:
    return tuple(part for part in raw.split("+") if part)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded recipe of measurement faults to inject.

    Rates are independent per-attempt probabilities drawn from one
    ``random.Random(seed)`` stream; their sum must stay at or below 1.
    ``max_faults_per_request`` bounds how many attempts at the *same*
    request (benchmark, configuration, prior count) may fault, so any
    retry policy with ``max_retries >= max_faults_per_request`` is
    guaranteed to get a clean measurement eventually — the shape every
    transient-fault chaos scenario relies on.  ``fail_units`` lists
    substrings of work-unit ids whose every request fails *permanently*
    (never served), the hook for quarantine scenarios.
    """

    seed: int = 0
    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    corrupt_rate: float = 0.0
    crash_rate: float = 0.0
    hang_seconds: float = 0.05
    max_faults_per_request: int = 2
    fail_units: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        rates = (
            self.transient_rate,
            self.timeout_rate,
            self.corrupt_rate,
            self.crash_rate,
        )
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must lie in [0, 1]")
        if sum(rates) > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to at most 1")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")
        if self.max_faults_per_request < 0:
            raise ValueError("max_faults_per_request must be non-negative")
        object.__setattr__(self, "fail_units", tuple(self.fail_units))

    #: spec key <-> field name for the ``--inject-faults`` mini-language.
    _SPEC_KEYS = {
        "seed": "seed",
        "transient": "transient_rate",
        "timeout": "timeout_rate",
        "corrupt": "corrupt_rate",
        "crash": "crash_rate",
        "hang": "hang_seconds",
        "max-faults": "max_faults_per_request",
        "fail-units": "fail_units",
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``key=value,key=value`` spec string.

        Keys: ``seed``, ``transient``, ``timeout``, ``corrupt``, ``crash``
        (rates), ``hang`` (seconds), ``max-faults``, and ``fail-units``
        (``+``-separated unit-id substrings).  Example::

            seed=7,transient=0.2,timeout=0.1,corrupt=0.1,max-faults=2
        """
        kwargs: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"fault spec entry {part!r} is not of the form key=value"
                )
            key, raw = part.split("=", 1)
            key = key.strip()
            raw = raw.strip()
            name = cls._SPEC_KEYS.get(key)
            if name is None:
                raise ValueError(
                    f"unknown fault spec key {key!r}; "
                    f"expected one of {sorted(cls._SPEC_KEYS)}"
                )
            if name == "fail_units":
                kwargs[name] = _parse_fail_units(raw)
            elif name in ("seed", "max_faults_per_request"):
                kwargs[name] = int(raw)
            else:
                kwargs[name] = float(raw)
        return cls(**kwargs)

    def to_spec(self) -> str:
        """The ``parse``-round-trippable spec string for this plan."""
        parts = [f"seed={self.seed}"]
        for key, name in self._SPEC_KEYS.items():
            if name == "seed":
                continue
            value = getattr(self, name)
            if name == "fail_units":
                if value:
                    parts.append(f"{key}={'+'.join(value)}")
            elif value != getattr(type(self)(), name):
                parts.append(f"{key}={value:g}" if isinstance(value, float)
                             else f"{key}={value}")
        return ",".join(parts)


class FaultInjectingBroker:
    """Wrap a broker and deterministically inject measurement faults.

    Fault draws come from the plan's own seeded ``random.Random`` stream —
    never from the session's generator — and (except for the ``crash``
    fault) fire *before* the wrapped broker runs, so a faulted attempt
    consumes nothing from the profiler's noise stream and a retried
    request measures exactly what an unfaulted run would.

    ``unit`` is the work-unit identity used to match the plan's
    ``fail_units`` permanent faults.  ``injected`` counts the faults
    actually raised, by kind.
    """

    #: Outlier corruption needs prior statistics to be detectable (and
    #: rejectable) downstream; below this prior count the corrupt fault
    #: falls back to NaN/negative values, which the result boundary
    #: itself rejects.  Must not exceed the resilient wrapper's
    #: ``outlier_min_prior``.
    _OUTLIER_MIN_PRIOR = 1

    def __init__(
        self,
        inner: MeasurementBroker,
        plan: FaultPlan,
        unit: Optional[str] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._inner = inner
        self._plan = plan
        self._unit = unit or ""
        self._sleep = sleep
        self._rng = random.Random(plan.seed)
        #: (benchmark, configuration, prior) -> faults injected so far.
        self._fault_counts: Dict[Tuple[str, Tuple[int, ...], int], int] = {}
        self.injected: Dict[str, int] = {}

    @property
    def inner(self) -> MeasurementBroker:
        return self._inner

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def _note(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _raise(self, kind: str, message: str) -> None:
        self._note(kind)
        logger.debug("injecting %s fault: %s", kind, message)
        if kind == "timeout":
            raise MeasurementTimeoutError(message)
        raise TransientMeasurementError(message)

    def _corrupt_result(self, request: MeasurementRequest) -> MeasurementResult:
        """Fabricate a corrupted result without touching the inner broker."""
        prior = request.prior_stats
        modes = ["nan", "negative"]
        if (
            prior is not None
            and prior.count >= self._OUTLIER_MIN_PRIOR
            and prior.mean > 0
        ):
            modes.append("outlier")
        mode = self._rng.choice(modes)
        self._note("corrupt")
        if mode == "outlier":
            value = prior.mean * 1000.0 * (1.0 + self._rng.random())
            logger.debug("injecting corrupt fault: fabricated outlier %g", value)
            return MeasurementResult(
                configuration=request.configuration,
                runtimes=(value,) * request.repetitions,
            )
        value = float("nan") if mode == "nan" else -1.0
        try:
            MeasurementResult(
                configuration=request.configuration,
                runtimes=(value,) * request.repetitions,
            )
        except ValueError as exc:
            raise CorruptMeasurementError(
                f"injected corrupt measurement ({mode}): {exc}"
            ) from exc
        raise AssertionError("the result boundary accepted a corrupt value")

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        plan = self._plan
        if plan.fail_units and any(s in self._unit for s in plan.fail_units):
            self._raise(
                "permanent",
                f"injected permanent fault for unit {self._unit!r}",
            )
        key = (
            request.benchmark,
            request.configuration,
            request.prior_observations,
        )
        count = self._fault_counts.get(key, 0)
        if count < plan.max_faults_per_request:
            draw = self._rng.random()
            edge = plan.transient_rate
            if draw < edge:
                self._fault_counts[key] = count + 1
                self._raise("transient", "injected transient measurement failure")
            edge += plan.timeout_rate
            if draw < edge:
                self._fault_counts[key] = count + 1
                self._sleep(plan.hang_seconds)
                self._raise(
                    "timeout",
                    f"injected hang ({plan.hang_seconds:g}s) before failing",
                )
            edge += plan.corrupt_rate
            if draw < edge:
                self._fault_counts[key] = count + 1
                return self._corrupt_result(request)
            edge += plan.crash_rate
            if draw < edge:
                self._fault_counts[key] = count + 1
                # Crash-before-record: the measurement happens (and consumes
                # the profiler's noise stream) but the result is lost, as
                # when a worker dies between measuring and publishing.  Not
                # bit-identity safe — quarantine scenarios only.
                self._inner.measure(request)
                self._raise(
                    "crash", "injected crash before recording the result"
                )
        return self._inner.measure(request)

    def measure_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> List[MeasurementResult]:
        return [self.measure(request) for request in requests]


class ResilientBroker:
    """Retry/deadline/sanity policy around any measurement broker.

    Attempts a request up to ``1 + max_retries`` times, retrying on
    :class:`TransientMeasurementError` (which includes injected or real
    timeouts and corrupt results) with exponential backoff —
    ``backoff_base * backoff_factor**attempt`` capped at ``backoff_max``,
    plus seeded multiplicative jitter in ``[0, backoff_jitter]`` — from a
    private ``random.Random(seed)`` stream that never touches the
    session's generator.

    ``timeout`` (seconds) arms a per-request deadline: the inner broker
    runs in a daemon worker thread and an attempt still running at the
    deadline raises :class:`MeasurementTimeoutError` (the abandoned thread
    is left to finish in the background — with simulated profilers it
    completes harmlessly; a real measurement service would cancel the
    job).  With ``timeout=None`` (the default) the inner broker is called
    directly, keeping happy-path overhead to a sanity scan of the result.

    Sanity checks: the :class:`MeasurementResult` boundary already rejects
    non-finite and negative values at construction; this wrapper
    additionally rejects *finite* outliers — any runtime more than
    ``outlier_factor`` times away (either direction) from the mean of the
    request's ``prior_stats`` (once it has ``outlier_min_prior``
    observations).  The simulation's heavy-tailed noise spikes max out
    around 1.5x, so a factor of 20 never rejects genuine noise.

    A request that exhausts its attempts raises
    :class:`MeasurementFailedError` and appends a dead-letter record (the
    request identity plus every attempt's error) to :attr:`dead_letters`
    and, when ``dead_letter_path`` is set, to that JSONL file.
    """

    def __init__(
        self,
        inner: MeasurementBroker,
        max_retries: int = 3,
        timeout: Optional[float] = None,
        backoff_base: float = 0.01,
        backoff_factor: float = 2.0,
        backoff_max: float = 1.0,
        backoff_jitter: float = 0.25,
        seed: int = 0,
        outlier_factor: float = 20.0,
        outlier_min_prior: int = 1,
        sleep: Callable[[float], None] = time.sleep,
        dead_letter_path: Optional[os.PathLike] = None,
        unit: Optional[str] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive when given")
        if outlier_factor <= 1:
            raise ValueError("outlier_factor must exceed 1")
        self._inner = inner
        self._max_retries = max_retries
        self._timeout = timeout
        self._backoff_base = backoff_base
        self._backoff_factor = backoff_factor
        self._backoff_max = backoff_max
        self._backoff_jitter = backoff_jitter
        self._rng = random.Random(seed)
        self._outlier_factor = outlier_factor
        self._outlier_min_prior = outlier_min_prior
        self._sleep = sleep
        self._dead_letter_path = dead_letter_path
        self._unit = unit
        self.retries = 0
        self.timeouts = 0
        self.rejections = 0
        self.dead_letters: List[dict] = []

    @property
    def inner(self) -> MeasurementBroker:
        return self._inner

    def _backoff(self, attempt: int) -> float:
        delay = min(
            self._backoff_base * self._backoff_factor ** attempt,
            self._backoff_max,
        )
        return delay * (1.0 + self._backoff_jitter * self._rng.random())

    def _attempt(self, request: MeasurementRequest) -> MeasurementResult:
        if self._timeout is None:
            return self._inner.measure(request)
        box: Dict[str, object] = {}

        def work() -> None:
            try:
                box["result"] = self._inner.measure(request)
            except BaseException as exc:  # propagated to the caller below
                box["error"] = exc

        worker = threading.Thread(target=work, daemon=True)
        worker.start()
        worker.join(self._timeout)
        if worker.is_alive():
            self.timeouts += 1
            raise MeasurementTimeoutError(
                f"measurement of {request.configuration} exceeded the "
                f"{self._timeout:g}s deadline"
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]  # type: ignore[return-value]

    def _check_sane(
        self, request: MeasurementRequest, result: MeasurementResult
    ) -> None:
        prior = request.prior_stats
        if (
            prior is None
            or prior.count < self._outlier_min_prior
            or not prior.mean > 0
        ):
            return
        low = prior.mean / self._outlier_factor
        high = prior.mean * self._outlier_factor
        for runtime in result.runtimes:
            if not low <= runtime <= high:
                self.rejections += 1
                raise CorruptMeasurementError(
                    f"runtime {runtime:g} for {request.configuration} is "
                    f"more than {self._outlier_factor:g}x away from the "
                    f"prior mean {prior.mean:g} over {prior.count} "
                    f"observations"
                )

    def _record_dead_letter(self, request: MeasurementRequest,
                            attempts: List[str]) -> dict:
        record = {
            "unit": self._unit,
            "benchmark": request.benchmark,
            "configuration": list(request.configuration),
            "prior": request.prior_observations,
            "repetitions": request.repetitions,
            "attempts": attempts,
        }
        self.dead_letters.append(record)
        if self._dead_letter_path is not None:
            line = (json.dumps(record) + "\n").encode("utf-8")
            fd = os.open(
                self._dead_letter_path,
                os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, line)
                os.fsync(fd)
            finally:
                os.close(fd)
        return record

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        attempts: List[str] = []
        for attempt in range(self._max_retries + 1):
            try:
                result = self._attempt(request)
                self._check_sane(request, result)
                return result
            except TransientMeasurementError as exc:
                attempts.append(f"{type(exc).__name__}: {exc}")
                logger.warning(
                    "measurement attempt %d/%d for %s failed: %s",
                    attempt + 1,
                    self._max_retries + 1,
                    request.configuration,
                    exc,
                )
                if attempt >= self._max_retries:
                    break
                self.retries += 1
                self._sleep(self._backoff(attempt))
        record = self._record_dead_letter(request, attempts)
        raise MeasurementFailedError(
            f"measurement of {request.configuration} "
            f"(benchmark {request.benchmark!r}) failed permanently after "
            f"{len(attempts)} attempts: {attempts[-1]}",
            record,
        )

    def measure_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> List[MeasurementResult]:
        """Serve a batch in request order, each member independently
        retried under the same policy."""
        return [self.measure(request) for request in requests]


def _stable_seed(text: str) -> int:
    """A deterministic, process-independent seed from a unit identity."""
    value = 0
    for ch in text:
        value = (value * 1000003 + ord(ch)) % (2 ** 31)
    return value


@dataclass(frozen=True)
class BrokerPolicy:
    """The fault-tolerance knobs threaded from the CLI to each work unit.

    ``inject_faults`` is a :meth:`FaultPlan.parse` spec string (kept as a
    string so the policy pickles across worker processes and round-trips
    through the CLI).  :meth:`wrap` composes the chain around a base
    broker: fault injection innermost (when configured), the resilient
    retry/deadline/sanity wrapper outermost.
    """

    max_retries: int = 0
    measure_timeout: Optional[float] = None
    inject_faults: Optional[str] = None
    dead_letter_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.measure_timeout is not None and self.measure_timeout <= 0:
            raise ValueError("measure_timeout must be positive when given")
        if self.inject_faults is not None:
            FaultPlan.parse(self.inject_faults)  # validate eagerly

    @property
    def active(self) -> bool:
        return (
            self.max_retries > 0
            or self.measure_timeout is not None
            or self.inject_faults is not None
        )

    def fault_plan(self) -> Optional[FaultPlan]:
        if self.inject_faults is None:
            return None
        return FaultPlan.parse(self.inject_faults)

    def wrap(
        self, broker: MeasurementBroker, unit: Optional[str] = None
    ) -> MeasurementBroker:
        """The policy's broker chain around ``broker`` for work unit
        ``unit`` (fault injection, then retries/deadline/sanity)."""
        plan = self.fault_plan()
        if plan is not None:
            broker = FaultInjectingBroker(broker, plan, unit=unit)
        return ResilientBroker(
            broker,
            max_retries=self.max_retries,
            timeout=self.measure_timeout,
            seed=_stable_seed(unit or ""),
            dead_letter_path=self.dead_letter_path,
            unit=unit,
        )
