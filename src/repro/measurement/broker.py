"""Measurement brokers: the execution side of the ask/tell learning loop.

The inverted-control core (:class:`repro.core.session.TuningSession`) never
calls a profiler itself — it emits :class:`MeasurementRequest`\\ s and
consumes :class:`MeasurementResult`\\ s, and *how* a request is satisfied is
a :class:`MeasurementBroker`'s business:

* :class:`ProfilerBroker` is the live broker: it wraps a
  :class:`~repro.measurement.profiler.Profiler` and compiles-and-runs the
  requested configuration, applying the request's CI stopping rule;
* :class:`ReplayBroker` memoises ``(unit, benchmark, configuration, prior
  observation count) -> observations`` to an on-disk trace: a request this
  *same unit* recorded before is served from the trace without touching a
  profiler, and a miss is delegated to a fallback broker (typically a
  :class:`ProfilerBroker`) and recorded for next time.  Records are
  namespaced by the recording session's unit identity, so many units
  recording into one trace directory stay statistically independent — a
  recording run takes exactly the measurements a live run would.
  Re-running a recorded experiment therefore profiles nothing, and
  re-*scoring* a different strategy against a recorded trace is an
  explicit opt-in (``rescore_from`` names the artifacts whose records may
  be shared): shared records serve their observations common-random-numbers
  style but never their RNG or noise state, and only the configurations the
  recorded artifact never visited are profiled live.

A request is self-contained: it carries the configuration, the initial
repetition count, the CI stopping rule (threshold and per-example cap) and
a snapshot of the statistics of every observation the configuration has
received so far.  Brokers therefore hold no adaptive state of their own,
which is what keeps them trivially replaceable mid-run (checkpoint/resume
reconstructs a fresh broker and loses nothing).

This module deliberately does not import anything from :mod:`repro.core`:
the session layer depends on the measurement layer, never the reverse.
"""

from __future__ import annotations

import json
import logging
import math
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .noise import NoiseModel
from .profiler import Profiler
from .stats import RunningStats

__all__ = [
    "MeasurementRequest",
    "MeasurementResult",
    "MeasurementBroker",
    "ProfilerBroker",
    "ReplayBroker",
    "ReplayTrace",
    "ReplayMissError",
    "measure_batch",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MeasurementRequest:
    """One self-contained "compile and run this configuration" order.

    Attributes
    ----------
    benchmark:
        Name of the benchmark the configuration belongs to (the broker may
        serve several sessions from one trace).
    configuration:
        The configuration to profile.
    repetitions:
        How many runs to take unconditionally (the plan's
        ``observations_per_selection``, or ``seed_observations`` while
        seeding).
    ci_threshold:
        When set, keep profiling one run at a time after the initial
        ``repetitions`` until the 95% CI/mean ratio over *all* of the
        configuration's observations falls below this value or the
        configuration reaches ``max_observations`` total — the sampling
        plan's stopping rule, carried in the request so the broker needs no
        knowledge of plans.
    max_observations:
        Total per-configuration observation cap for the stopping rule
        (prior observations included).
    prior_stats:
        Snapshot of the running statistics of every observation the
        configuration received in earlier selections (``None`` when it was
        never measured).  The broker evaluates the CI rule against prior
        plus new observations, exactly as an inline loop reading the
        profiler's own statistics would, and a configuration with prior
        observations is never charged its compile time again.
    """

    benchmark: str
    configuration: Tuple[int, ...]
    repetitions: int
    ci_threshold: Optional[float] = None
    max_observations: Optional[int] = None
    prior_stats: Optional[RunningStats] = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        object.__setattr__(
            self, "configuration", tuple(int(v) for v in self.configuration)
        )
        if self.ci_threshold is not None and self.max_observations is None:
            raise ValueError("a ci_threshold request needs max_observations")

    @property
    def prior_observations(self) -> int:
        """How many times the configuration was measured before this request."""
        return self.prior_stats.count if self.prior_stats is not None else 0


@dataclass(frozen=True)
class MeasurementResult:
    """A broker's answer: the observed runtimes plus the cost charged.

    ``compile_seconds`` lists the compile charges the request incurred (one
    entry on the configuration's first build, empty afterwards — binaries
    are cached); ``runtimes`` charges one execution each.  The session
    replays these into its own cost ledger in order, which reproduces the
    inline loop's float accumulation bit for bit.

    Construction is the sanity boundary of the measurement pipeline: a
    non-finite or non-positive runtime, or a non-finite or negative
    compile charge, is rejected (and logged) here rather than silently
    fed into the Welford statistics and the model update — a clock can
    glitch, a broker can lie, but a result object always holds usable
    observations.  Finite-but-absurd outliers pass construction and are
    the business of :class:`~repro.measurement.faults.ResilientBroker`'s
    prior-statistics check.
    """

    configuration: Tuple[int, ...]
    runtimes: Tuple[float, ...]
    compile_seconds: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "configuration", tuple(int(v) for v in self.configuration)
        )
        object.__setattr__(
            self, "runtimes", tuple(float(v) for v in self.runtimes)
        )
        object.__setattr__(
            self, "compile_seconds", tuple(float(v) for v in self.compile_seconds)
        )
        if not self.runtimes:
            raise ValueError("a measurement result needs at least one runtime")
        for runtime in self.runtimes:
            if not math.isfinite(runtime) or runtime <= 0:
                logger.warning(
                    "rejecting measurement result for %s: runtime %r is "
                    "not a finite positive number",
                    self.configuration,
                    runtime,
                )
                raise ValueError(
                    f"runtime {runtime!r} is not a finite positive number"
                )
        for charge in self.compile_seconds:
            if not math.isfinite(charge) or charge < 0:
                logger.warning(
                    "rejecting measurement result for %s: compile charge "
                    "%r is not a finite non-negative number",
                    self.configuration,
                    charge,
                )
                raise ValueError(
                    f"compile charge {charge!r} is not a finite "
                    f"non-negative number"
                )


class MeasurementBroker(Protocol):
    """Anything that can satisfy a :class:`MeasurementRequest`.

    Brokers may additionally expose ``measure_batch(requests)`` returning
    one result per request in request order; drivers go through
    :func:`measure_batch`, which falls back to per-request :meth:`measure`
    calls for brokers without batch support, so implementing ``measure``
    alone is always sufficient.
    """

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        """Satisfy ``request`` and return the observations and charges."""
        ...


def measure_batch(
    broker: MeasurementBroker, requests: Sequence[MeasurementRequest]
) -> List[MeasurementResult]:
    """Satisfy a batch of requests, one result per request in request order.

    Prefers the broker's own ``measure_batch`` (a parallel measurement
    service can overlap the work); any broker exposing only ``measure``
    is served sequentially.  Either way the i-th result answers the i-th
    request — callers relying on the session's ask-order fold can ``tell``
    the results in any order they like.
    """
    batch = getattr(broker, "measure_batch", None)
    if batch is not None:
        results = list(batch(requests))
        if len(results) != len(requests):
            raise ValueError(
                f"broker returned {len(results)} results for "
                f"{len(requests)} requests"
            )
        return results
    return [broker.measure(request) for request in requests]


def _stats_after(request: MeasurementRequest) -> RunningStats:
    """A private working copy of the request's prior statistics."""
    if request.prior_stats is None:
        return RunningStats()
    return request.prior_stats.copy()


class ProfilerBroker:
    """The live broker: compile-and-run through a :class:`Profiler`.

    The profiler supplies the noise stream (it shares the session's
    generator) and the benchmark's cost model; the CI stopping rule is
    evaluated against the request's ``prior_stats`` plus the runs taken
    here, so the broker behaves identically whether the profiler is the
    original one or a fresh instance reconstructed after a resume.
    """

    def __init__(self, profiler: Profiler) -> None:
        self._profiler = profiler

    @property
    def profiler(self) -> Profiler:
        return self._profiler

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        key = request.configuration
        compile_seconds: Tuple[float, ...] = ()
        if request.prior_observations == 0:
            # First build of this configuration anywhere in the session —
            # the (memoised, deterministic) compile time is charged once.
            compile_seconds = (float(self._profiler.program.compile_time(key)),)
        stats = _stats_after(request)
        observations = list(
            self._profiler.measure(key, repetitions=request.repetitions)
        )
        stats.extend(observations)
        if request.ci_threshold is not None:
            while (
                stats.count < request.max_observations
                and not stats.summary().passes_ci_validation(request.ci_threshold)
            ):
                more = self._profiler.measure(key, repetitions=1)
                observations.extend(more)
                stats.extend(more)
        return MeasurementResult(
            configuration=key,
            runtimes=tuple(observations),
            compile_seconds=compile_seconds,
        )

    def measure_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> List[MeasurementResult]:
        """Serve a batch sequentially, in request order.

        A single profiler owns one noise stream, so batch members are
        measured one after another — the deterministic reference any
        genuinely parallel measurement service must reproduce per request.
        """
        return [self.measure(request) for request in requests]


class ReplayMissError(KeyError):
    """A replay-only broker was asked for a request its trace cannot serve."""


class ReplayTrace:
    """On-disk memo of measurement results, one JSONL file per benchmark.

    Records are keyed by ``(unit, configuration, prior observation
    count)``.  ``unit`` is the recording session's identity (a work-unit
    id from the experiment registry, or ``None`` for anonymous
    single-session use); namespacing by it means sessions recording into
    one trace directory never see each other's records through
    :meth:`lookup`, so a *recording* run takes exactly the measurements a
    live run would — observations are never silently reused across plans,
    repetitions or ablation arms.  The same configuration revisited later
    in a run has a different ``prior`` and therefore a different key, so a
    sequential-analysis trajectory replays observation-for-observation.
    Cross-unit serving exists only through :meth:`lookup_shared`, the
    explicit re-scoring path of :class:`ReplayBroker`.

    Files are append-only and written with single ``O_APPEND`` writes, so
    several worker processes can record into one trace directory; lookups
    that miss the in-memory index re-read any lines appended since the
    last read (by this or any other process).  On conflicting duplicate
    keys the first record in file order wins — with unit-namespaced keys a
    duplicate only arises when two hosts executed the same unit (a claim
    takeover), where either trajectory is valid and only one was published.

    Each record also stores the measuring generator's state (and the
    benchmark noise model's drift-walk state) *after* the request was
    satisfied.  Live measurements consume noise draws from the session's
    generator and replayed ones do not, so on a full same-unit replay hit
    the broker restores the recorded states — a re-run of the recorded
    session then follows the recorded trajectory exactly even when parts
    of the trace are missing and the run falls back to live profiling
    mid-way.
    """

    def __init__(self, directory: os.PathLike) -> None:
        self._directory = pathlib.Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        #: (unit, configuration, prior) -> first record, per benchmark.
        self._exact: Dict[
            str, Dict[Tuple[Optional[str], Tuple[int, ...], int], dict]
        ] = {}
        #: (configuration, prior) -> records of every unit in file order,
        #: per benchmark — the re-scoring index.
        self._shared: Dict[str, Dict[Tuple[Tuple[int, ...], int], List[dict]]] = {}
        #: Bytes of complete lines consumed from each benchmark's file.
        self._offsets: Dict[str, int] = {}

    @property
    def directory(self) -> pathlib.Path:
        return self._directory

    def _path(self, benchmark: str) -> pathlib.Path:
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in benchmark)
        return self._directory / f"{safe}.jsonl"

    def _ingest(self, benchmark: str, record: dict) -> None:
        try:
            key = (
                record.get("unit"),
                tuple(int(v) for v in record["configuration"]),
                int(record["prior"]),
            )
        except (KeyError, TypeError, ValueError):
            return  # malformed record: skip, as with torn lines
        exact = self._exact[benchmark]
        if key in exact:
            return  # first record wins; re-reads of our own appends too
        exact[key] = record
        self._shared[benchmark].setdefault(key[1:], []).append(record)

    def _refresh(self, benchmark: str) -> None:
        """Index any complete lines appended since the last read — by this
        process or a concurrent recorder sharing the trace directory."""
        path = self._path(benchmark)
        offset = self._offsets[benchmark]
        try:
            size = path.stat().st_size
        except OSError:
            return
        if size <= offset:
            return
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
        # Only consume up to the last newline: a torn tail (a recorder
        # mid-append, or killed mid-write) is left for a later refresh.
        end = data.rfind(b"\n")
        if end < 0:
            return
        self._offsets[benchmark] = offset + end + 1
        for line in data[: end + 1].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue  # torn/corrupt line of a killed recorder
            self._ingest(benchmark, record)

    def _load(self, benchmark: str) -> None:
        if benchmark not in self._exact:
            self._exact[benchmark] = {}
            self._shared[benchmark] = {}
            self._offsets[benchmark] = 0
            self._refresh(benchmark)

    def lookup(
        self,
        benchmark: str,
        configuration: Sequence[int],
        prior: int,
        unit: Optional[str] = None,
    ) -> Optional[dict]:
        """The result ``unit`` recorded for ``(configuration, prior)``, or
        ``None``.  Only records written under the same unit identity match
        (``None`` matches the anonymous namespace)."""
        key = (unit, tuple(int(v) for v in configuration), int(prior))
        self._load(benchmark)
        record = self._exact[benchmark].get(key)
        if record is None:
            self._refresh(benchmark)
            record = self._exact[benchmark].get(key)
        return record

    def lookup_shared(
        self, benchmark: str, configuration: Sequence[int], prior: int
    ) -> List[dict]:
        """Every unit's records for ``(configuration, prior)``, in file
        order — the cross-unit re-scoring index (see
        :class:`ReplayBroker`'s ``rescore_from``)."""
        key = (tuple(int(v) for v in configuration), int(prior))
        self._load(benchmark)
        records = self._shared[benchmark].get(key)
        if not records:
            self._refresh(benchmark)
            records = self._shared[benchmark].get(key)
        return list(records) if records else []

    def record(
        self,
        benchmark: str,
        configuration: Sequence[int],
        prior: int,
        result: MeasurementResult,
        rng_state: Optional[dict] = None,
        unit: Optional[str] = None,
        artifact: Optional[str] = None,
        noise_state: Optional[List[float]] = None,
    ) -> None:
        """Append one result to the trace (and the in-memory index)."""
        record = {
            "unit": unit,
            "artifact": artifact,
            "configuration": [int(v) for v in configuration],
            "prior": int(prior),
            "runtimes": list(result.runtimes),
            "compile": list(result.compile_seconds),
            "rng_state": rng_state,
            "noise_state": noise_state,
        }
        line = (json.dumps(record) + "\n").encode("utf-8")
        fd = os.open(
            self._path(benchmark), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        self._load(benchmark)
        self._ingest(benchmark, record)

    def __len__(self) -> int:
        """Recorded entries across every benchmark file in the directory."""
        total = 0
        for path in self._directory.glob("*.jsonl"):
            with open(path, "r", encoding="utf-8") as handle:
                total += sum(1 for line in handle if line.strip())
        return total


def _replay_length(request: MeasurementRequest, runtimes: List[float]) -> Optional[int]:
    """How many recorded runtimes the request's stopping rule consumes.

    Returns ``None`` when the record cannot satisfy the request (too few
    runtimes for the rule to terminate) — the broker treats that as a miss.
    """
    if len(runtimes) < request.repetitions:
        return None
    taken = request.repetitions
    if request.ci_threshold is None:
        return taken
    stats = _stats_after(request)
    stats.extend(runtimes[:taken])
    while (
        stats.count < request.max_observations
        and not stats.summary().passes_ci_validation(request.ci_threshold)
    ):
        if taken >= len(runtimes):
            return None
        stats.add(runtimes[taken])
        taken += 1
    return taken


class ReplayBroker:
    """Serve measurement requests from a recorded trace; record on miss.

    ``fallback`` (typically a :class:`ProfilerBroker`) satisfies and
    records requests the trace cannot answer; without one a miss raises
    :class:`ReplayMissError`.

    ``unit`` is the session's identity (a work-unit id, or ``None`` for
    anonymous single-session use) and namespaces everything the broker
    records: requests only replay against records *this same unit* wrote,
    so concurrent or sequential units sharing one trace directory never
    contaminate each other's measurement streams.  ``rng`` is the
    session's generator and ``noise_model`` the benchmark's (stateful)
    noise model: their states are recorded after every live measurement
    and restored on every full same-unit replay hit, which keeps a
    replayed session on the recorded trajectory — including any live
    fallback after a partial replay — without consuming noise draws.
    Recorded states are never restored from another unit's records.

    ``rescore_from`` opts in to the explicit cross-unit re-scoring mode:
    a request missing from the unit's own namespace may be served from a
    record one of the named *artifacts* wrote (any unit).  Shared records
    supply their observations common-random-numbers style but never their
    RNG or noise state, which belong to the session that recorded them.
    Record a trace first and re-score against it in a later run:
    re-scoring against a trace that is still being recorded serves
    whatever happens to be on disk at lookup time and is therefore not
    deterministic.

    ``hits``/``shared_hits``/``misses`` count same-unit replays,
    cross-unit re-scoring serves and fell-back requests.
    """

    def __init__(
        self,
        trace: "ReplayTrace | os.PathLike",
        fallback: Optional[MeasurementBroker] = None,
        rng: Optional[np.random.Generator] = None,
        noise_model: Optional[NoiseModel] = None,
        unit: Optional[str] = None,
        artifact: Optional[str] = None,
        rescore_from: Sequence[str] = (),
    ) -> None:
        self._trace = trace if isinstance(trace, ReplayTrace) else ReplayTrace(trace)
        self._fallback = fallback
        self._rng = rng
        self._noise_model = noise_model
        self._unit = unit
        self._artifact = artifact
        self._rescore_from = tuple(rescore_from)
        self.hits = 0
        self.shared_hits = 0
        self.misses = 0

    @property
    def trace(self) -> ReplayTrace:
        return self._trace

    @property
    def unit(self) -> Optional[str]:
        return self._unit

    def _serve(
        self, request: MeasurementRequest, runtimes: List[float], taken: int,
        record: dict,
    ) -> MeasurementResult:
        return MeasurementResult(
            configuration=request.configuration,
            runtimes=tuple(runtimes[:taken]),
            compile_seconds=tuple(float(v) for v in record.get("compile", ())),
        )

    def measure(self, request: MeasurementRequest) -> MeasurementResult:
        record = self._trace.lookup(
            request.benchmark,
            request.configuration,
            request.prior_observations,
            unit=self._unit,
        )
        if record is not None:
            runtimes = [float(v) for v in record["runtimes"]]
            taken = _replay_length(request, runtimes)
            if taken is not None:
                self.hits += 1
                if taken == len(runtimes):
                    # Full same-unit replay: put the generator and the
                    # noise model's drift walk where the recording left
                    # them, so a live fallback later in the run continues
                    # the recorded trajectory exactly.
                    if (
                        self._rng is not None
                        and record.get("rng_state") is not None
                    ):
                        self._rng.bit_generator.state = record["rng_state"]
                    if (
                        self._noise_model is not None
                        and record.get("noise_state") is not None
                    ):
                        self._noise_model.restore_drift_state(
                            record["noise_state"]
                        )
                return self._serve(request, runtimes, taken, record)
        for shared in self._shared_candidates(request):
            runtimes = [float(v) for v in shared["runtimes"]]
            taken = _replay_length(request, runtimes)
            if taken is not None:
                # Cross-unit re-scoring: serve the foreign observations,
                # but never the foreign RNG/noise state — injecting
                # another session's mid-run state would correlate draws
                # across units.
                self.shared_hits += 1
                return self._serve(request, runtimes, taken, shared)
        if self._fallback is None:
            raise ReplayMissError(
                f"trace at {self._trace.directory} has no record for "
                f"benchmark {request.benchmark!r}, configuration "
                f"{request.configuration} at prior count "
                f"{request.prior_observations} (unit {self._unit!r}), and no "
                f"fallback broker was given"
            )
        self.misses += 1
        result = self._fallback.measure(request)
        rng_state = None
        if self._rng is not None:
            state = self._rng.bit_generator.state
            rng_state = json.loads(json.dumps(state))  # plain-JSON deep copy
        noise_state = None
        if self._noise_model is not None:
            noise_state = list(self._noise_model.drift_state())
        self._trace.record(
            request.benchmark,
            request.configuration,
            request.prior_observations,
            result,
            rng_state=rng_state,
            unit=self._unit,
            artifact=self._artifact,
            noise_state=noise_state,
        )
        return result

    def measure_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> List[MeasurementResult]:
        """Serve a batch in request order, each member replay-or-record.

        Trace keys stay per-request — ``(unit, configuration, prior
        count)`` — so a batch records exactly the same lines a sequential
        run over the same requests would, and a recorded batch replays
        member by member (including mixed hit/miss batches, where the
        misses fall through to the live broker in request order).
        """
        return [self.measure(request) for request in requests]

    def _shared_candidates(self, request: MeasurementRequest) -> List[dict]:
        if not self._rescore_from:
            return []
        return [
            record
            for record in self._trace.lookup_shared(
                request.benchmark,
                request.configuration,
                request.prior_observations,
            )
            if record.get("artifact") in self._rescore_from
        ]
