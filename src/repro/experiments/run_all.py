"""Run every experiment and emit a single consolidated report.

``python -m repro.experiments.run_all [--scale smoke|laptop|paper] [--output FILE]
[--workers N] [--paper-scale-smoke] [--paper-run --run-dir DIR [--resume]]``

regenerates, in order, Table 2, Figure 1, Figure 2, Table 1, Figure 5 and
Figure 6 (the last two are derived from the Table 1 comparisons so nothing
is recomputed twice) and prints — or writes to ``--output`` — the rendered
rows/series for all of them.  This is the one-command entry point for
filling in EXPERIMENTS.md.

``--paper-scale-smoke`` instead runs one benchmark end-to-end at the
paper's model scale (5 000 dynamic-tree particles, 500 candidates — see
:mod:`repro.experiments.paper_scale`) and reports its timings.

``--paper-run`` instead drives the paper's full evaluation — every
benchmark × sampling plan × repetition at the selected scale (default:
``paper``, i.e. 2 500 examples × 10 repetitions) — through the sharded,
checkpointed backend of :mod:`repro.experiments.runner`, with live
progress/ETA on stderr and the merged Table 1 / Figure 5 / Figure 6 report
on completion.  The run is resumable: re-invoke with the same ``--run-dir``
plus ``--resume`` after a crash or kill and it continues from the last
per-unit checkpoint, bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .config import ExperimentScale
from .figure1 import run_figure1
from .figure2 import run_figure2
from .figure5 import figure5_from_table1
from .figure6 import Figure6Panel, Figure6Result
from .paper_scale import run_paper_scale_smoke
from .runner import run_paper_run
from .table1 import run_table1
from .table2 import run_table2

__all__ = ["run_all", "main"]

_EPILOG = """\
paper-run workflow:
  # launch the full paper configuration (2500 examples x 10 repetitions,
  # all benchmarks), sharded over 8 worker processes:
  python -m repro.experiments.run_all --paper-run --run-dir paper_run --workers 8

  # killed or crashed? resume from the per-unit checkpoints — completed
  # units are never re-run and the merged results are bit-identical to an
  # uninterrupted run:
  python -m repro.experiments.run_all --paper-run --run-dir paper_run --workers 8 --resume

  # a fast end-to-end rehearsal of the same backend at smoke scale:
  python -m repro.experiments.run_all --paper-run --scale smoke --run-dir /tmp/rehearsal

  --run-dir holds the task queue (manifest.jsonl), one result file per
  completed (benchmark x plan x repetition) unit, and the in-flight
  checkpoints; see docs/reproduction.md for runtimes and output layout.
"""


def _scale_from_name(name: str) -> ExperimentScale:
    factories = {
        "smoke": ExperimentScale.smoke,
        "laptop": ExperimentScale.laptop,
        "paper": ExperimentScale.paper,
    }
    if name not in factories:
        raise ValueError(f"unknown scale {name!r}; expected one of {sorted(factories)}")
    return factories[name]()


def run_all(scale: Optional[ExperimentScale] = None, workers: int = 1) -> str:
    """Run every table/figure driver and return the consolidated text report.

    ``workers > 1`` distributes the learner runs behind Table 1 (and hence
    Figures 5-6) over a process pool — one job per (benchmark × plan ×
    repetition).  Results are deterministic and worker-count invariant;
    benchmarks with stateful drift noise start each run with a fresh noise
    state in pool mode, so those rows can differ slightly from a serial run.
    """
    scale = scale if scale is not None else ExperimentScale.laptop()
    sections = []
    started = time.time()

    table2 = run_table2(scale)
    sections.append(table2.render())

    figure1 = run_figure1(scale)
    sections.append(figure1.render())

    figure2 = run_figure2(scale)
    sections.append(figure2.render())

    table1 = run_table1(scale, workers=workers)
    sections.append(table1.render())
    sections.append(figure5_from_table1(table1).render())

    panels = {
        name: Figure6Panel(benchmark=name, curves=comparison.curves, comparison=comparison)
        for name, comparison in table1.comparisons.items()
    }
    sections.append(Figure6Result(panels=panels).render())

    elapsed = time.time() - started
    header = (
        f"Experiment report (scale: {scale.name}, benchmarks: {', '.join(scale.benchmarks)}, "
        f"wall time {elapsed:.0f}s)"
    )
    return "\n\n".join([header] + sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "laptop", "paper"],
        help=(
            "experiment scale (default: laptop; with --paper-run the default "
            "is the paper's full configuration)"
        ),
    )
    parser.add_argument("--output", default=None, help="write the report to this file")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes executing the (benchmark x plan x repetition) "
            "learner runs: the Table 1 process pool for a report run, or the "
            "sharded task-queue workers for --paper-run"
        ),
    )
    parser.add_argument(
        "--paper-scale-smoke",
        action="store_true",
        help="run one benchmark end-to-end at 5000 particles and report timings",
    )
    parser.add_argument(
        "--smoke-benchmark",
        default="mm",
        help="benchmark used by --paper-scale-smoke (default: mm)",
    )
    parser.add_argument(
        "--smoke-examples",
        type=int,
        default=40,
        help="training examples for --paper-scale-smoke (default: 40)",
    )
    parser.add_argument(
        "--paper-run",
        action="store_true",
        help=(
            "drive the full benchmark x plan x repetition evaluation through "
            "the sharded, checkpointed backend (see the epilog)"
        ),
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help="task-queue directory for --paper-run (default: ./paper_run)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue a --paper-run whose --run-dir already holds a manifest: "
            "completed units are kept, the in-flight unit restarts from its "
            "last checkpoint"
        ),
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the scale's repetition count for --paper-run",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=25,
        help=(
            "training examples between per-unit checkpoints for --paper-run "
            "(default: 25)"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.checkpoint_interval < 1:
        parser.error("--checkpoint-interval must be at least 1")
    if args.repetitions is not None and args.repetitions < 1:
        parser.error("--repetitions must be at least 1")
    if args.paper_run and args.paper_scale_smoke:
        parser.error("--paper-run and --paper-scale-smoke are mutually exclusive")
    if not args.paper_run:
        # Refuse rather than silently ignore: a user resuming a killed
        # paper run who forgets --paper-run would otherwise get a fresh
        # report run and no resumption.
        for flag, value in (
            ("--run-dir", args.run_dir),
            ("--resume", args.resume or None),
            ("--repetitions", args.repetitions),
        ):
            if value is not None:
                parser.error(f"{flag} only makes sense together with --paper-run")
    if args.paper_run:
        scale = _scale_from_name(args.scale if args.scale is not None else "paper")
        report = run_paper_run(
            scale,
            run_dir=args.run_dir if args.run_dir is not None else "paper_run",
            workers=args.workers,
            resume=args.resume,
            repetitions=args.repetitions,
            checkpoint_interval=args.checkpoint_interval,
        )
    elif args.paper_scale_smoke:
        report = run_paper_scale_smoke(
            benchmark=args.smoke_benchmark, training_examples=args.smoke_examples
        ).render()
    else:
        scale = _scale_from_name(args.scale if args.scale is not None else "laptop")
        report = run_all(scale, workers=args.workers)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
