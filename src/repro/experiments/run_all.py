"""Thin dispatcher over the experiment registry: run artifacts, emit a report.

``python -m repro.experiments.run_all [--scale smoke|laptop|paper]
[--only table2,figure1,...] [--output FILE] [--workers N]
[--replay-trace DIR] [--profile [DIR]] [--paper-scale-smoke]
[--paper-run --run-dir DIR [--resume]] [--max-retries N]
[--measure-timeout SECONDS] [--inject-faults SPEC]
[--max-unit-attempts N]``

Every artifact — table1, table2, figure1, figure2, figure5, figure6,
noise_robustness, acquisition-ablation, model-ablation,
batch-acquisition — is declared in
:mod:`repro.experiments.registry`; this module merely selects artifacts
(``--only``, default: the consolidated report), picks a backend, and
streams each artifact's rendered section to ``--output``/stdout *as it
completes* (atomic appends), so a killed report run still leaves the
finished sections on disk.

Backends:

* default — in-memory execution, the degenerate one-worker path of the
  sharded backend (``--workers N`` fans the work units of each artifact
  over a process pool; results are worker-count invariant);
* ``--paper-run`` — the sharded, checkpointed, multi-host task queue of
  :mod:`repro.experiments.runner` (``--run-dir``, ``--resume``), the
  backend for the paper's full 2 500-example × 10-repetition evaluation;
* ``--paper-scale-smoke`` — one benchmark end-to-end at the paper's model
  scale (5 000 particles, 500 candidates) to sanity-check throughput.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, List, Optional, Sequence

from ..measurement.faults import BrokerPolicy, FaultPlan
from .config import ExperimentScale
from .paper_scale import run_paper_scale_smoke
from .profiling import write_profile_summary
from .registry import DEFAULT_ARTIFACTS, run_artifacts, spec_names
from .runner import run_paper_run

__all__ = ["run_all", "main"]

_EPILOG = """\
artifacts:
  --only takes a comma-separated subset of the registered artifacts
  (default: %(default_artifacts)s).
  Dependencies are resolved automatically: --only figure6 runs the
  Table 1 work units it folds from, but renders only Figure 6.
  Registered: %(all_artifacts)s.

paper-run workflow:
  # launch the full paper configuration (2500 examples x 10 repetitions,
  # all benchmarks, every report artifact), sharded over 8 worker processes:
  python -m repro.experiments.run_all --paper-run --run-dir paper_run --workers 8

  # killed or crashed? resume from the per-unit checkpoints — completed
  # units are never re-run and the merged results are bit-identical to an
  # uninterrupted run:
  python -m repro.experiments.run_all --paper-run --run-dir paper_run --workers 8 --resume

  # several machines can share one queue over a network filesystem:
  # create the run on one host, then point the others at it with --resume.
  # per-unit claim files (atomic O_EXCL create + stale-lease takeover)
  # keep two hosts from executing the same unit.

  # a fast end-to-end rehearsal of the same backend at smoke scale:
  python -m repro.experiments.run_all --paper-run --scale smoke --run-dir /tmp/rehearsal

  --run-dir holds the task queue (manifest.jsonl), one result file per
  completed work unit, in-flight checkpoints, claim files and an events
  journal; see docs/reproduction.md for runtimes and output layout.

batch-acquisition workflow:
  # the batch-acquisition ablation (k in {1,2,5} x {greedy-alc-fantasy,
  # diversity-penalty, random}) at smoke scale on the sharded runner:
  python -m repro.experiments.run_all --paper-run --scale smoke \\
      --only batch-acquisition --run-dir /tmp/batch_smoke

profile workflow:
  # where does a smoke-scale table1 run spend its time?  per-unit cProfile
  # dumps plus a merged top-25 cumulative summary land in ./profile:
  python -m repro.experiments.run_all --scale smoke --only table1 --profile

  # same on the sharded backend (profiles merge across workers and hosts
  # inside the run dir):
  python -m repro.experiments.run_all --paper-run --scale smoke \\
      --run-dir /tmp/prof_run --profile

  # drill into one unit interactively:
  python -m pstats profile/<unit_id>.prof

fault-tolerance workflow:
  # harden live measurements: retry each one up to 5 times on timeout or
  # corrupt result, with a 30 s per-measurement deadline; a unit that
  # still fails 3 times is quarantined to <run-dir>/failed/<unit>.json
  # and the report folds the survivors with an explicit coverage note:
  python -m repro.experiments.run_all --paper-run --run-dir paper_run \\
      --max-retries 5 --measure-timeout 30 --max-unit-attempts 3

  # chaos-test the pipeline: deterministically inject transient faults
  # (rates per measurement, seeded — same SPEC, same faults) and check
  # the report is bit-identical to a fault-free run:
  python -m repro.experiments.run_all --paper-run --scale smoke \\
      --run-dir /tmp/chaos --max-retries 5 \\
      --inject-faults "seed=7,transient=0.2,timeout=0.1,corrupt=0.1"

  # simulate a permanently broken unit (every measurement fails):
  #   --inject-faults "fail-units=<unit-id>" --max-retries 1
  # the run completes, quarantines the unit, and the report lists it.

  SPEC keys: seed=N, transient=RATE, timeout=RATE, corrupt=RATE,
  crash=RATE, hang=SECONDS, max-faults=N (per-request fault budget),
  fail-units=UNIT+UNIT (permanent failures).  Injection happens before
  the real measurement, so retried faults consume nothing from the
  profiler's random stream — except crash faults, which measure and
  then lose the result (use them to exercise quarantine, not
  bit-identity).  Dead-lettered requests land in
  <run-dir>/failed/dead-letters.jsonl.

replay-trace workflow:
  # record every measurement of a table1 run into a trace directory:
  python -m repro.experiments.run_all --only table1 --replay-trace traces/t1

  # re-score the acquisition ablation arms (ALC/ALM/random) against the
  # completed table1 trace — configurations table1 measured are served
  # from disk (observation sharing only; RNG state never crosses units),
  # the rest are profiled live and appended:
  python -m repro.experiments.run_all --only acquisition-ablation \\
      --replay-trace traces/t1
""" % {
    "default_artifacts": ",".join(DEFAULT_ARTIFACTS),
    "all_artifacts": ",".join(spec_names()),
}


def _scale_from_name(name: str) -> ExperimentScale:
    factories = {
        "smoke": ExperimentScale.smoke,
        "laptop": ExperimentScale.laptop,
        "paper": ExperimentScale.paper,
    }
    if name not in factories:
        raise ValueError(f"unknown scale {name!r}; expected one of {sorted(factories)}")
    return factories[name]()


def _write_report(path: str, sections: Sequence[str]) -> None:
    """Atomically rewrite the report from its accumulated sections.

    Every streamed section rewrites the whole file through the
    write-tmp / fsync / rename / fsync-directory dance, so the report on
    disk is always a complete prefix of the final one — a power loss
    mid-write can never leave a torn or half-appended section, and a
    killed run still keeps every section that finished.  Each invocation
    starts from its own first section, so re-running into the same
    ``--output`` never mixes two reports.
    """
    payload = "".join(section + "\n\n" for section in sections).encode("utf-8")
    tmp = f"{path}.{os.getpid()}.tmp"
    fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    directory = os.path.dirname(os.path.abspath(path))
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. a platform without directory opens; rename still atomic
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def run_all(
    scale: Optional[ExperimentScale] = None,
    workers: int = 1,
    artifacts: Optional[Sequence[str]] = None,
    section_sink: Optional[Callable[[str, str], None]] = None,
    replay_trace: Optional[str] = None,
    profile_dir: Optional[str] = None,
    broker_policy: Optional[BrokerPolicy] = None,
) -> str:
    """Run the selected artifacts in memory and return the text report.

    ``workers > 1`` distributes each artifact's work units over a process
    pool; results are deterministic and worker-count invariant (every unit
    is seeded independently of execution order).  ``section_sink`` receives
    ``(artifact_name, rendered_section)`` as each artifact completes —
    the streaming hook the CLI uses for ``--output``.  ``replay_trace``
    serves measurements from a recorded
    :class:`~repro.measurement.broker.ReplayTrace` directory instead of
    live profiling — the re-scoring path for, e.g., running the
    acquisition ablation over a recorded Table 1 trace.  ``profile_dir``
    wraps every work unit in cProfile, dumps per-unit stats there and
    merges them into ``profile_dir/profile.txt`` at the end.
    ``broker_policy`` arms the fault-tolerance broker chain (retries,
    deadlines, chaos injection) around every unit's measurements; note
    the in-memory backend has no quarantine — a permanently failed
    measurement aborts the run (use ``--paper-run`` for graceful
    degradation).
    """
    scale = scale if scale is not None else ExperimentScale.laptop()
    selected = list(artifacts) if artifacts is not None else list(DEFAULT_ARTIFACTS)
    requested = set(selected)
    started = time.time()
    header = (
        f"Experiment report (scale: {scale.name}, benchmarks: "
        f"{', '.join(scale.benchmarks)}, artifacts: {', '.join(selected)})"
    )
    sections: List[str] = [header]
    if section_sink is not None:
        section_sink("header", header)

    def on_result(spec, result) -> None:
        if spec.name not in requested:
            return
        text = result.render()
        sections.append(text)
        if section_sink is not None:
            section_sink(spec.name, text)

    run_artifacts(
        scale,
        selected,
        workers=workers,
        on_result=on_result,
        replay_trace=replay_trace,
        profile_dir=profile_dir,
        broker_policy=broker_policy,
    )
    if profile_dir is not None:
        summary = write_profile_summary(profile_dir)
        if summary is not None:
            print(f"profile summary: {summary}", file=sys.stderr, flush=True)
    footer = f"wall time {time.time() - started:.0f}s"
    sections.append(footer)
    if section_sink is not None:
        section_sink("footer", footer)
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "laptop", "paper"],
        help=(
            "experiment scale (default: laptop; with --paper-run the default "
            "is the paper's full configuration)"
        ),
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="ARTIFACTS",
        help=(
            "comma-separated artifact subset to run and render "
            "(see the epilog for the registered names)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "append each artifact's rendered section to this file as it "
            "completes (a killed run keeps its finished sections)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes executing each artifact's work units: an "
            "in-memory process pool for a report run, or the sharded "
            "task-queue workers for --paper-run"
        ),
    )
    parser.add_argument(
        "--paper-scale-smoke",
        action="store_true",
        help="run one benchmark end-to-end at 5000 particles and report timings",
    )
    parser.add_argument(
        "--smoke-benchmark",
        default="mm",
        help="benchmark used by --paper-scale-smoke (default: mm)",
    )
    parser.add_argument(
        "--smoke-examples",
        type=int,
        default=40,
        help="training examples for --paper-scale-smoke (default: 40)",
    )
    parser.add_argument(
        "--paper-run",
        action="store_true",
        help=(
            "drive the selected artifacts' work units through the sharded, "
            "checkpointed, multi-host backend (see the epilog)"
        ),
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help="task-queue directory for --paper-run (default: ./paper_run)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue a --paper-run whose --run-dir already holds a manifest: "
            "completed units are kept, the in-flight unit restarts from its "
            "last checkpoint (also how additional hosts join a shared run)"
        ),
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the scale's repetition count for --paper-run",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=25,
        help=(
            "training examples between per-unit checkpoints for --paper-run "
            "(default: 25)"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="profile",
        default=None,
        metavar="DIR",
        help=(
            "wrap every work unit in cProfile; per-unit .prof dumps plus a "
            "merged top-25 cumulative summary (profile.txt) land in DIR "
            "(default: ./profile, or <run-dir>/profile with --paper-run, "
            "where DIR must not be given)"
        ),
    )
    parser.add_argument(
        "--replay-trace",
        default=None,
        metavar="DIR",
        help=(
            "serve measurements from a recorded trace directory instead of "
            "live profiling; measurements missing from the trace are "
            "profiled live and appended to it (e.g. re-score the "
            "acquisition ablation from a table1 trace)"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry each measurement up to N times on transient failure "
            "(timeout, corrupt result, injected fault) with seeded "
            "exponential backoff before giving up on the unit (default: 0)"
        ),
    )
    parser.add_argument(
        "--measure-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-measurement deadline; a measurement still running after "
            "SECONDS counts as a transient failure and is retried under "
            "--max-retries"
        ),
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help=(
            "chaos-inject deterministic faults into every measurement "
            "broker; SPEC is comma-separated key=value pairs, e.g. "
            "'seed=7,transient=0.2,timeout=0.1,corrupt=0.1,hang=0.05,"
            "max-faults=2,fail-units=UNIT+UNIT' (see the epilog)"
        ),
    )
    parser.add_argument(
        "--max-unit-attempts",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --paper-run: quarantine a work unit after N failed "
            "attempts instead of retrying it forever; the report then "
            "folds the surviving units and lists the quarantined ones "
            "(default: 3)"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.checkpoint_interval < 1:
        parser.error("--checkpoint-interval must be at least 1")
    if args.repetitions is not None and args.repetitions < 1:
        parser.error("--repetitions must be at least 1")
    if args.paper_run and args.paper_scale_smoke:
        parser.error("--paper-run and --paper-scale-smoke are mutually exclusive")
    if args.paper_scale_smoke and args.only is not None:
        # Refuse rather than silently drop the artifact selection.
        parser.error("--only does not apply to --paper-scale-smoke")
    if args.paper_scale_smoke and args.replay_trace is not None:
        parser.error("--replay-trace does not apply to --paper-scale-smoke")
    if args.paper_scale_smoke and args.profile is not None:
        parser.error("--profile does not apply to --paper-scale-smoke")
    if args.paper_run and args.profile not in (None, "profile"):
        # The sharded backend keeps profiles inside the run directory so a
        # multi-host run merges every host's dumps; a custom location would
        # silently split them.
        parser.error("--profile takes no DIR with --paper-run "
                     "(profiles go to <run-dir>/profile)")
    if args.max_retries < 0:
        parser.error("--max-retries must be at least 0")
    if args.measure_timeout is not None and args.measure_timeout <= 0:
        parser.error("--measure-timeout must be positive")
    if args.max_unit_attempts is not None and args.max_unit_attempts < 1:
        parser.error("--max-unit-attempts must be at least 1")
    if args.inject_faults is not None:
        try:
            FaultPlan.parse(args.inject_faults)
        except ValueError as error:
            parser.error(f"--inject-faults: {error}")
    if args.paper_scale_smoke:
        for flag, value in (
            ("--max-retries", args.max_retries or None),
            ("--measure-timeout", args.measure_timeout),
            ("--inject-faults", args.inject_faults),
        ):
            if value is not None:
                parser.error(f"{flag} does not apply to --paper-scale-smoke")
    if not args.paper_run:
        # Refuse rather than silently ignore: a user resuming a killed
        # paper run who forgets --paper-run would otherwise get a fresh
        # report run and no resumption.
        for flag, value in (
            ("--run-dir", args.run_dir),
            ("--resume", args.resume or None),
            ("--repetitions", args.repetitions),
            ("--max-unit-attempts", args.max_unit_attempts),
        ):
            if value is not None:
                parser.error(f"{flag} only makes sense together with --paper-run")
    artifacts: Optional[List[str]] = None
    if args.only is not None:
        artifacts = [name.strip() for name in args.only.split(",") if name.strip()]
        if not artifacts:
            parser.error("--only needs at least one artifact name")
        known = set(spec_names())
        unknown = [name for name in artifacts if name not in known]
        if unknown:
            parser.error(
                f"unknown artifact(s): {', '.join(unknown)}; "
                f"registered: {', '.join(spec_names())}"
            )

    streamed: List[str] = []

    def section_sink(name: str, text: str) -> None:
        if args.output:
            streamed.append(text)
            _write_report(args.output, streamed)
        else:
            print(text, end="\n\n", flush=True)

    broker_policy: Optional[BrokerPolicy] = None
    if args.max_retries or args.measure_timeout is not None or args.inject_faults:
        broker_policy = BrokerPolicy(
            max_retries=args.max_retries,
            measure_timeout=args.measure_timeout,
            inject_faults=args.inject_faults,
        )

    if args.paper_run:
        scale = _scale_from_name(args.scale if args.scale is not None else "paper")
        run_paper_run(
            scale,
            run_dir=args.run_dir if args.run_dir is not None else "paper_run",
            artifacts=artifacts,
            workers=args.workers,
            resume=args.resume,
            repetitions=args.repetitions,
            checkpoint_interval=args.checkpoint_interval,
            section_sink=section_sink,
            replay_trace=args.replay_trace,
            profile=args.profile is not None,
            broker_policy=broker_policy,
            max_unit_attempts=(
                args.max_unit_attempts if args.max_unit_attempts is not None else 3
            ),
        )
    elif args.paper_scale_smoke:
        report = run_paper_scale_smoke(
            benchmark=args.smoke_benchmark, training_examples=args.smoke_examples
        ).render()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        else:
            print(report)
    else:
        scale = _scale_from_name(args.scale if args.scale is not None else "laptop")
        run_all(
            scale,
            workers=args.workers,
            artifacts=artifacts,
            section_sink=section_sink,
            replay_trace=args.replay_trace,
            profile_dir=args.profile,
            broker_policy=broker_policy,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
