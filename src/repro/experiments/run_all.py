"""Run every experiment and emit a single consolidated report.

``python -m repro.experiments.run_all [--scale smoke|laptop|paper] [--output FILE]
[--workers N] [--paper-scale-smoke]``

regenerates, in order, Table 2, Figure 1, Figure 2, Table 1, Figure 5 and
Figure 6 (the last two are derived from the Table 1 comparisons so nothing
is recomputed twice) and prints — or writes to ``--output`` — the rendered
rows/series for all of them.  This is the one-command entry point for
filling in EXPERIMENTS.md.

``--paper-scale-smoke`` instead runs one benchmark end-to-end at the
paper's model scale (5 000 dynamic-tree particles, 500 candidates — see
:mod:`repro.experiments.paper_scale`) and reports its timings.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .config import ExperimentScale
from .figure1 import run_figure1
from .figure2 import run_figure2
from .figure5 import figure5_from_table1
from .figure6 import Figure6Panel, Figure6Result
from .paper_scale import run_paper_scale_smoke
from .table1 import run_table1
from .table2 import run_table2

__all__ = ["run_all", "main"]


def _scale_from_name(name: str) -> ExperimentScale:
    factories = {
        "smoke": ExperimentScale.smoke,
        "laptop": ExperimentScale.laptop,
        "paper": ExperimentScale.paper,
    }
    if name not in factories:
        raise ValueError(f"unknown scale {name!r}; expected one of {sorted(factories)}")
    return factories[name]()


def run_all(scale: Optional[ExperimentScale] = None, workers: int = 1) -> str:
    """Run every table/figure driver and return the consolidated text report.

    ``workers > 1`` distributes the learner runs behind Table 1 (and hence
    Figures 5-6) over a process pool — one job per (benchmark × plan ×
    repetition).  Results are deterministic and worker-count invariant;
    benchmarks with stateful drift noise start each run with a fresh noise
    state in pool mode, so those rows can differ slightly from a serial run.
    """
    scale = scale if scale is not None else ExperimentScale.laptop()
    sections = []
    started = time.time()

    table2 = run_table2(scale)
    sections.append(table2.render())

    figure1 = run_figure1(scale)
    sections.append(figure1.render())

    figure2 = run_figure2(scale)
    sections.append(figure2.render())

    table1 = run_table1(scale, workers=workers)
    sections.append(table1.render())
    sections.append(figure5_from_table1(table1).render())

    panels = {
        name: Figure6Panel(benchmark=name, curves=comparison.curves, comparison=comparison)
        for name, comparison in table1.comparisons.items()
    }
    sections.append(Figure6Result(panels=panels).render())

    elapsed = time.time() - started
    header = (
        f"Experiment report (scale: {scale.name}, benchmarks: {', '.join(scale.benchmarks)}, "
        f"wall time {elapsed:.0f}s)"
    )
    return "\n\n".join([header] + sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="laptop", choices=["smoke", "laptop", "paper"])
    parser.add_argument("--output", default=None, help="write the report to this file")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the (benchmark x plan x repetition) learner runs",
    )
    parser.add_argument(
        "--paper-scale-smoke",
        action="store_true",
        help="run one benchmark end-to-end at 5000 particles and report timings",
    )
    parser.add_argument(
        "--smoke-benchmark",
        default="mm",
        help="benchmark used by --paper-scale-smoke (default: mm)",
    )
    parser.add_argument(
        "--smoke-examples",
        type=int,
        default=40,
        help="training examples for --paper-scale-smoke (default: 40)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.paper_scale_smoke:
        report = run_paper_scale_smoke(
            benchmark=args.smoke_benchmark, training_examples=args.smoke_examples
        ).render()
    else:
        report = run_all(_scale_from_name(args.scale), workers=args.workers)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
