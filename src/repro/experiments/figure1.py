"""Figure 1: error and optimal sample size over the mm unroll plane.

The paper's motivation study fixes every mm parameter except the unroll
factors of the two outer loops, profiles each point of the resulting 30x30
plane 35 times, and shows

* (a) the Mean Absolute Error that a *single* observation would incur
  relative to the 35-observation mean,
* (b) the MAE of a post-hoc "optimal" sampling plan that keeps removing
  observations while the error stays below a threshold (0.1 ms in the
  paper), and
* (c) how many observations that optimal plan keeps at each point.

The take-away is that for most points one observation suffices, but not for
all of them, and the points that need more cannot be known in advance —
hence sequential analysis.  The threshold here is expressed as a fraction of
the benchmark's mean runtime so the figure is scale-free with respect to the
simulated runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..measurement.profiler import Profiler
from ..spapt.suite import SpaptBenchmark, get_benchmark
from .config import ExperimentScale
from .registry import ExperimentSpec, UnitContext, WorkUnit, register
from .reporting import format_table

__all__ = ["Figure1Cell", "Figure1Result", "Figure1Spec", "run_figure1"]


@dataclass(frozen=True)
class Figure1Cell:
    """One point of the unroll-factor plane."""

    unroll_i: int
    unroll_j: int
    mean_runtime: float
    single_sample_mae: float
    optimal_samples: int
    optimal_mae: float


@dataclass
class Figure1Result:
    benchmark: str
    cells: List[Figure1Cell]
    observations_per_point: int
    mae_threshold: float

    @property
    def total_fixed_plan_runs(self) -> int:
        """Executions a fixed plan would need for the whole plane."""
        return len(self.cells) * self.observations_per_point

    @property
    def total_optimal_runs(self) -> int:
        """Executions the post-hoc optimal plan needs (the paper: ~half)."""
        return sum(cell.optimal_samples for cell in self.cells)

    def grid(self, field: str) -> np.ndarray:
        """The requested field as a 2-D grid indexed by (unroll_i, unroll_j)."""
        unroll_i_values = sorted({cell.unroll_i for cell in self.cells})
        unroll_j_values = sorted({cell.unroll_j for cell in self.cells})
        grid = np.zeros((len(unroll_i_values), len(unroll_j_values)))
        for cell in self.cells:
            i = unroll_i_values.index(cell.unroll_i)
            j = unroll_j_values.index(cell.unroll_j)
            grid[i, j] = getattr(cell, field)
        return grid

    def render(self) -> str:
        single = self.grid("single_sample_mae")
        samples = self.grid("optimal_samples")
        rows = [
            ["points in the plane", len(self.cells)],
            ["observations per point (fixed plan)", self.observations_per_point],
            ["total runs, fixed plan", self.total_fixed_plan_runs],
            ["total runs, optimal plan", self.total_optimal_runs],
            ["run reduction", f"{self.total_fixed_plan_runs / max(self.total_optimal_runs, 1):.2f}x"],
            ["single-sample MAE max", f"{single.max():.4g}"],
            ["single-sample MAE mean", f"{single.mean():.4g}"],
            ["points needing only 1 sample", int(np.sum(samples == 1))],
            ["points needing > 5 samples", int(np.sum(samples > 5))],
            ["max samples needed", int(samples.max())],
        ]
        return format_table(
            headers=["quantity", "value"],
            rows=rows,
            title=f"Figure 1 summary ({self.benchmark} unroll plane)",
        )


def _optimal_sample_count(
    observations: np.ndarray, threshold: float, rng: np.random.Generator
) -> Tuple[int, float]:
    """Smallest random subsample whose mean stays within ``threshold`` of the full mean.

    Mirrors the paper's procedure: starting from the full sample, remove
    observations at random while the absolute deviation of the reduced mean
    from the full mean stays below the threshold; report how many samples
    survive.
    """
    full_mean = float(observations.mean())
    order = rng.permutation(observations.size)
    shuffled = observations[order]
    kept = observations.size
    while kept > 1:
        candidate = shuffled[: kept - 1]
        if abs(float(candidate.mean()) - full_mean) > threshold:
            break
        kept -= 1
    return kept, abs(float(shuffled[:kept].mean()) - full_mean)


def run_figure1(
    scale: Optional[ExperimentScale] = None,
    benchmark: Optional[SpaptBenchmark] = None,
    mae_threshold_fraction: float = 0.002,
) -> Figure1Result:
    """Regenerate the Figure 1 data (mm unroll plane) at the requested scale."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    benchmark = benchmark if benchmark is not None else get_benchmark("mm")
    rng = np.random.default_rng(scale.seed + 101)
    profiler = Profiler(benchmark, rng=rng)
    space = benchmark.search_space

    parameter_names = [p.name for p in space.parameters]
    if "U_i" not in parameter_names or "U_j" not in parameter_names:
        raise ValueError(
            f"benchmark {benchmark.name!r} does not expose U_i/U_j unroll parameters"
        )
    index_i = parameter_names.index("U_i")
    index_j = parameter_names.index("U_j")
    baseline = list(space.default_configuration())

    grid = scale.figure1_grid
    unroll_values = np.unique(
        np.linspace(1, 30, num=min(grid, 30), dtype=int)
    )
    observations_per_point = scale.dataset_observations

    cells: List[Figure1Cell] = []
    threshold = None
    for unroll_i in unroll_values:
        for unroll_j in unroll_values:
            configuration = list(baseline)
            configuration[index_i] = int(unroll_i)
            configuration[index_j] = int(unroll_j)
            observations = profiler.measure(
                tuple(configuration), repetitions=observations_per_point
            )
            mean = float(observations.mean())
            if threshold is None:
                threshold = mae_threshold_fraction * mean
            single_mae = float(np.mean(np.abs(observations - mean)))
            optimal_samples, optimal_mae = _optimal_sample_count(
                observations, threshold, rng
            )
            cells.append(
                Figure1Cell(
                    unroll_i=int(unroll_i),
                    unroll_j=int(unroll_j),
                    mean_runtime=mean,
                    single_sample_mae=single_mae,
                    optimal_samples=optimal_samples,
                    optimal_mae=optimal_mae,
                )
            )
    return Figure1Result(
        benchmark=benchmark.name,
        cells=cells,
        observations_per_point=observations_per_point,
        mae_threshold=float(threshold if threshold is not None else 0.0),
    )


class Figure1Spec(ExperimentSpec):
    """Figure 1 as a registry artifact.

    The plane sweep threads one RNG through every cell (the profiler and
    the optimal-plan subsampling draw from the same stream in cell order),
    so the computation is inherently sequential and the declared
    decomposition is a single unit — the registry still gives it the
    manifest/result/resume machinery, it just cannot shard internally.
    """

    name = "figure1"
    title = "Figure 1"

    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        return [WorkUnit(artifact=self.name, key=("plane",))]

    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> Figure1Result:
        return run_figure1(scale)

    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> Figure1Result:
        (_, result), = payloads
        return result


register(Figure1Spec())


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
