"""Experiment harness: a declarative registry of the paper's artifacts.

==================  ====================================================
Artifact            Spec / driver
==================  ====================================================
Table 1             ``table1`` (:func:`repro.experiments.table1.run_table1`)
Table 2             ``table2`` (:func:`repro.experiments.table2.run_table2`)
Figure 1            ``figure1`` (:func:`repro.experiments.figure1.run_figure1`)
Figure 2            ``figure2`` (:func:`repro.experiments.figure2.run_figure2`)
Figure 5            ``figure5`` (derived from Table 1)
Figure 6            ``figure6`` (derived from Table 1)
Noise robustness    ``noise_robustness``
Acquisition study   ``acquisition-ablation`` (ALC vs ALM vs random)
Model study         ``model-ablation`` (dynamic tree vs GP vs k-NN)
==================  ====================================================

Every artifact registers an :class:`~repro.experiments.registry.ExperimentSpec`
declaring how it decomposes into seeded, order-independent,
checkpointable work units and how completed units fold into its report.
The same units run on two backends: in memory
(:func:`~repro.experiments.registry.run_artifacts`, what plain
``run_all`` uses) or through the sharded, resumable, multi-host task
queue of :mod:`repro.experiments.runner` (``run_all --paper-run``).
Every driver takes an :class:`repro.experiments.config.ExperimentScale`
(``smoke``, ``laptop`` or ``paper``) and returns structured results with
a ``render()`` method that prints the same rows/series the paper reports.
"""

from .ablations import (
    AblationResult,
    AblationRow,
    run_acquisition_ablation,
    run_model_ablation,
)
from .config import ExperimentScale
from .figure1 import Figure1Result, run_figure1
from .figure2 import Figure2Result, run_figure2
from .figure5 import Figure5Result, figure5_from_table1, run_figure5
from .figure6 import PAPER_FIGURE6_BENCHMARKS, Figure6Result, run_figure6
from .noise_robustness import NoiseRobustnessResult, run_noise_robustness, scaled_benchmark
from .paper_scale import PaperScaleSmokeResult, run_paper_scale_smoke
from .registry import (
    DEFAULT_ARTIFACTS,
    ExperimentSpec,
    UnitContext,
    WorkUnit,
    get_spec,
    run_artifacts,
    spec_names,
)
from .run_all import run_all
from .runner import ExperimentRunner, RunManifest, RunnerError, run_paper_run
from .table1 import PAPER_TABLE1_SPEEDUPS, Table1Result, run_table1, table1_from_comparisons
from .table2 import Table2Result, run_table2

__all__ = [
    "ExperimentScale",
    "Figure1Result",
    "run_figure1",
    "Figure2Result",
    "run_figure2",
    "Figure5Result",
    "figure5_from_table1",
    "run_figure5",
    "PAPER_FIGURE6_BENCHMARKS",
    "Figure6Result",
    "run_figure6",
    "NoiseRobustnessResult",
    "run_noise_robustness",
    "scaled_benchmark",
    "AblationResult",
    "AblationRow",
    "run_acquisition_ablation",
    "run_model_ablation",
    "PaperScaleSmokeResult",
    "run_paper_scale_smoke",
    "run_all",
    "DEFAULT_ARTIFACTS",
    "ExperimentSpec",
    "UnitContext",
    "WorkUnit",
    "get_spec",
    "run_artifacts",
    "spec_names",
    "ExperimentRunner",
    "RunManifest",
    "RunnerError",
    "run_paper_run",
    "PAPER_TABLE1_SPEEDUPS",
    "Table1Result",
    "run_table1",
    "table1_from_comparisons",
    "Table2Result",
    "run_table2",
]
