"""Experiment harness: one driver per table/figure of the paper.

========  ===============================================================
Artifact  Driver
========  ===============================================================
Table 1   :func:`repro.experiments.table1.run_table1`
Table 2   :func:`repro.experiments.table2.run_table2`
Figure 1  :func:`repro.experiments.figure1.run_figure1`
Figure 2  :func:`repro.experiments.figure2.run_figure2`
Figure 5  :func:`repro.experiments.figure5.run_figure5`
Figure 6  :func:`repro.experiments.figure6.run_figure6`
========  ===============================================================

Every driver takes an :class:`repro.experiments.config.ExperimentScale`
(``smoke``, ``laptop`` or ``paper``) and returns structured results with a
``render()`` method that prints the same rows/series the paper reports.

:mod:`repro.experiments.runner` is the sharded, checkpointed backend for
paper-scale runs (``run_all --paper-run``): it decomposes the evaluation
into (benchmark × plan × repetition) work units served from an on-disk
task queue, checkpoints each in-flight learner so killed runs resume
bit-identically, and merges completed units back into the same
:class:`~repro.core.comparison.PlanComparison` structures the drivers
above consume.
"""

from .config import ExperimentScale
from .figure1 import Figure1Result, run_figure1
from .figure2 import Figure2Result, run_figure2
from .figure5 import Figure5Result, figure5_from_table1, run_figure5
from .figure6 import PAPER_FIGURE6_BENCHMARKS, Figure6Result, run_figure6
from .noise_robustness import NoiseRobustnessResult, run_noise_robustness, scaled_benchmark
from .paper_scale import PaperScaleSmokeResult, run_paper_scale_smoke
from .run_all import run_all
from .runner import ExperimentRunner, RunManifest, RunnerError, WorkUnit, run_paper_run
from .table1 import PAPER_TABLE1_SPEEDUPS, Table1Result, run_table1, table1_from_comparisons
from .table2 import Table2Result, run_table2

__all__ = [
    "ExperimentScale",
    "Figure1Result",
    "run_figure1",
    "Figure2Result",
    "run_figure2",
    "Figure5Result",
    "figure5_from_table1",
    "run_figure5",
    "PAPER_FIGURE6_BENCHMARKS",
    "Figure6Result",
    "run_figure6",
    "NoiseRobustnessResult",
    "run_noise_robustness",
    "scaled_benchmark",
    "PaperScaleSmokeResult",
    "run_paper_scale_smoke",
    "run_all",
    "ExperimentRunner",
    "RunManifest",
    "RunnerError",
    "WorkUnit",
    "run_paper_run",
    "PAPER_TABLE1_SPEEDUPS",
    "Table1Result",
    "run_table1",
    "table1_from_comparisons",
    "Table2Result",
    "run_table2",
]
