"""Declarative experiment registry: every paper artifact as work units.

Before this module existed only the Table 1 family ran on the sharded,
resumable backend; the other drivers were bespoke, serial and in-process.
The registry turns *every* artifact — tables, figures, the
noise-robustness study, the ablations — into the same shape:

* an :class:`ExperimentSpec` declares how the artifact **decomposes** into
  seeded, order-independent, checkpointable :class:`WorkUnit`\\ s for a
  given :class:`~repro.experiments.config.ExperimentScale`, how one unit
  **executes** (a picklable payload per unit), and how completed payloads
  **fold** back into the artifact's report object;
* the registry maps artifact names (``table1`` … ``figure6``,
  ``noise_robustness``, ``acquisition-ablation``, ``model-ablation``) to
  their specs and resolves dependency closures (Figures 5 and 6 fold from
  Table 1's comparisons instead of recomputing them);
* :func:`run_artifacts` is the in-memory executor — the degenerate
  one-worker path of the sharded backend
  (:mod:`repro.experiments.runner`), which executes the *same* units from
  an on-disk queue across processes and hosts.

Unit payloads must be picklable and model-free (surrogate models are
stripped before publication); unit parameters must be JSON-serialisable so
the manifest can round-trip them.

:func:`execute_learner_run` is the shared work-unit body for every
artifact whose unit is "one active-learner run" (Table 1, the ablations):
it reproduces the pool-schedule seeding of
:func:`repro.core.comparison.compare_sampling_plans_suite` exactly and
supports mid-unit checkpoint/resume through a :class:`UnitContext`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.comparison import ComparisonConfig, resolve_acquisition
from ..core.evaluation import build_test_set
from ..core.learner import ActiveLearner, LearningResult
from ..core.plans import SamplingPlan
from ..core.session import TuningSession
from ..measurement.broker import ReplayBroker, ReplayTrace
from ..measurement.faults import BrokerPolicy
from ..spapt.suite import get_benchmark
from .config import ExperimentScale
from .profiling import profile_unit_call

__all__ = [
    "WorkUnit",
    "UnitContext",
    "ExperimentSpec",
    "register",
    "get_spec",
    "spec_names",
    "resolve_artifacts",
    "run_artifacts",
    "execute_learner_run",
    "group_learner_results",
    "DEFAULT_ARTIFACTS",
    "slugify",
]

#: The artifacts of the consolidated report, in report order (Figures 5
#: and 6 come last because they fold from Table 1's comparisons).
DEFAULT_ARTIFACTS: Tuple[str, ...] = (
    "table2",
    "figure1",
    "figure2",
    "table1",
    "figure5",
    "figure6",
)

#: Modules that register the built-in specs when imported.
_BUILTIN_MODULES: Tuple[str, ...] = (
    "table1",
    "table2",
    "figure1",
    "figure2",
    "figure5",
    "figure6",
    "noise_robustness",
    "ablations",
)


def slugify(text: str) -> str:
    """Filesystem-safe identifier component (used in unit ids and paths)."""
    return "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in text)


@dataclass(frozen=True)
class WorkUnit:
    """One independent, seeded slice of an artifact's computation.

    ``key`` is the human-readable identity (it becomes the unit's
    filesystem id); ``params`` carries whatever the spec's
    ``execute_unit`` needs and must round-trip through JSON.
    """

    artifact: str
    key: Tuple[str, ...]
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def unit_id(self) -> str:
        """Filesystem-safe identifier, stable across runs and hosts."""
        parts = (self.artifact,) + tuple(self.key)
        return "--".join(slugify(str(part)) for part in parts)

    def to_record(self) -> dict:
        return {
            "kind": "unit",
            "artifact": self.artifact,
            "key": list(self.key),
            "params": dict(self.params),
        }

    @classmethod
    def from_record(cls, record: dict) -> "WorkUnit":
        return cls(
            artifact=record["artifact"],
            key=tuple(str(part) for part in record["key"]),
            params=dict(record.get("params", {})),
        )


class UnitContext:
    """Checkpoint/progress facilities handed to an executing unit.

    The base class is the in-memory no-op (no checkpointing, no progress
    files); the sharded runner substitutes a file-backed context that
    persists checkpoints atomically, feeds the ETA display and renews the
    unit's claim lease.  Specs whose units are long learner runs route
    these through :func:`execute_learner_run`; short units ignore them.
    """

    #: Training examples between checkpoints; 0 disables checkpointing.
    checkpoint_interval: int = 0

    #: Directory of a measurement trace (see
    #: :class:`~repro.measurement.broker.ReplayTrace`); when set, learner
    #: units measure through a :class:`~repro.measurement.broker.ReplayBroker`
    #: over this trace — requests this unit recorded before replay without
    #: profiling, misses fall back to the live profiler and are recorded.
    #: ``None`` measures live (the default).
    replay_trace: Optional[str] = None

    #: Identity of the executing work unit (:attr:`WorkUnit.unit_id`) and
    #: its artifact name.  Trace records are namespaced by the unit id, so
    #: the many units of a recording run stay statistically independent of
    #: each other; both executors (in-memory and sharded) set these.
    #: Direct API callers that leave them ``None`` get a per-run namespace
    #: derived from the run's identity by :func:`execute_learner_run`.
    unit_id: Optional[str] = None
    artifact: Optional[str] = None

    #: Artifacts whose recorded trace entries this unit may *re-score*
    #: from: a request missing from the unit's own namespace is served
    #: from a record one of these artifacts wrote (observations only —
    #: never the foreign RNG/noise state).  Copied from the executing
    #: spec's :attr:`ExperimentSpec.replay_rescore_from`.
    replay_rescore_from: Tuple[str, ...] = ()

    #: Fault-tolerance policy for the unit's measurements (see
    #: :class:`~repro.measurement.faults.BrokerPolicy`): retries with
    #: backoff, per-request deadlines, and — for chaos testing — seeded
    #: fault injection.  ``None`` (or an inactive policy) measures through
    #: the bare broker chain.
    broker_policy: Optional[BrokerPolicy] = None

    def load_checkpoint(self) -> Optional[Any]:
        """The unit's most recent checkpoint, or None to start fresh."""
        return None

    def save_checkpoint(self, state: Any) -> None:
        """Persist ``state`` (must serialise before returning)."""

    def progress(self, done: int, target: int) -> None:
        """Report intra-unit progress (e.g. training examples so far)."""


class ExperimentSpec(ABC):
    """How one paper artifact decomposes, executes and folds.

    Subclasses declare ``name`` (the registry key), ``title`` (for report
    headers) and optionally ``depends_on`` (artifacts whose folded results
    this artifact's fold consumes — e.g. Figure 5 folds from Table 1 and
    contributes no units of its own).
    """

    name: str = "abstract"
    title: str = "abstract"
    depends_on: Tuple[str, ...] = ()

    #: Artifacts whose recorded measurement traces this artifact's learner
    #: units may re-score from when running with a replay trace (see
    #: :attr:`UnitContext.replay_rescore_from`).  Empty (the default)
    #: means units only ever replay records they wrote themselves — the
    #: safe record/replay mode.  The ablation specs set ``("table1",)`` to
    #: enable the record-table1-then-re-score workflow; re-score against a
    #: *completed* trace, not one still being recorded.
    replay_rescore_from: Tuple[str, ...] = ()

    @abstractmethod
    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        """Decompose the artifact into order-independent units."""

    @abstractmethod
    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> Any:
        """Run one unit to completion and return its picklable payload."""

    @abstractmethod
    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> Any:
        """Fold completed unit payloads (manifest order) into the report
        object; ``deps`` maps each name in ``depends_on`` to that
        artifact's folded result.  The returned object must expose
        ``render() -> str``."""

    def fingerprint_extras(self) -> Tuple:
        """Extra spec constants that belong in the fingerprint (e.g. an
        ablation's variant list).  Override this, not :meth:`fingerprint`,
        so the hashing scheme stays in one place."""
        return ()

    def fingerprint(self, scale: ExperimentScale) -> str:
        """Digest identifying this artifact's configuration at ``scale``.

        Used by the sharded runner to refuse resuming a run directory
        with a different experiment.  Folds the spec identity, the full
        scale repr and :meth:`fingerprint_extras`.
        """
        blob = repr(
            (type(self).__qualname__, self.name, self.fingerprint_extras(), scale)
        ).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]


_REGISTRY: Dict[str, ExperimentSpec] = {}
_BUILTINS_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry (idempotent per name; re-registration
    replaces, which keeps module reloads harmless)."""
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    for module in _BUILTIN_MODULES:
        importlib.import_module(f"{__package__}.{module}")


def spec_names() -> List[str]:
    """Every registered artifact name (sorted: registration order depends
    on module import order, which is an implementation detail)."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def get_spec(name: str) -> ExperimentSpec:
    """Look up an artifact spec by name."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown artifact {name!r}; registered: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[name]


def resolve_artifacts(
    names: Optional[Sequence[str]] = None,
) -> List[ExperimentSpec]:
    """Specs for ``names`` (default: the consolidated report) plus their
    dependency closure, in execution order (dependencies first, requested
    order otherwise preserved)."""
    requested = list(names) if names is not None else list(DEFAULT_ARTIFACTS)
    ordered: List[ExperimentSpec] = []
    seen: Dict[str, bool] = {}  # name -> fully resolved (False = in progress)

    def visit(name: str) -> None:
        if seen.get(name):
            return
        if name in seen:
            raise ValueError(f"artifact dependency cycle through {name!r}")
        seen[name] = False
        spec = get_spec(name)
        for dependency in spec.depends_on:
            visit(dependency)
        seen[name] = True
        ordered.append(spec)

    for name in requested:
        visit(name)
    return ordered


# --------------------------------------------------------------- execution


def _memory_context(
    replay_trace: Optional[str],
    unit: Optional[WorkUnit] = None,
    spec: Optional[ExperimentSpec] = None,
    broker_policy: Optional[BrokerPolicy] = None,
) -> UnitContext:
    context = UnitContext()
    context.replay_trace = replay_trace
    context.broker_policy = broker_policy
    if unit is not None:
        context.unit_id = unit.unit_id
        context.artifact = unit.artifact
    if spec is not None:
        context.replay_rescore_from = tuple(spec.replay_rescore_from)
    return context


def _execute_unit_job(
    args: Tuple[
        str,
        ExperimentScale,
        dict,
        Optional[str],
        Optional[str],
        Optional[BrokerPolicy],
    ]
) -> Any:
    """Worker-process entry point for the in-memory pool path."""
    spec_name, scale, record, replay_trace, profile_dir, broker_policy = args
    spec = get_spec(spec_name)
    unit = WorkUnit.from_record(record)
    return profile_unit_call(
        profile_dir,
        unit.unit_id,
        lambda: spec.execute_unit(
            unit,
            scale,
            _memory_context(replay_trace, unit, spec, broker_policy),
        ),
    )


def execute_artifact_units(
    spec: ExperimentSpec,
    scale: ExperimentScale,
    workers: int = 1,
    replay_trace: Optional[str] = None,
    profile_dir: Optional[str] = None,
    broker_policy: Optional[BrokerPolicy] = None,
) -> List[Tuple[WorkUnit, Any]]:
    """Execute every unit of ``spec`` and return (unit, payload) pairs.

    ``workers == 1`` runs in-process; larger values fan the units out over
    a process pool.  Units are seeded independently of execution order, so
    the pairs are identical either way.  ``replay_trace`` routes learner
    units through a recorded measurement trace (see :class:`UnitContext`).
    ``profile_dir`` wraps each unit in cProfile and dumps per-unit stats
    there (see :mod:`repro.experiments.profiling`).  ``broker_policy``
    arms the fault-tolerance broker chain around each unit's measurements
    (see :class:`~repro.measurement.faults.BrokerPolicy`); note the
    in-memory executor has no quarantine — a permanently failed
    measurement propagates and aborts the run (graceful degradation is
    the sharded runner's job).
    """
    units = spec.work_units(scale)
    if workers <= 1 or len(units) <= 1:
        return [
            (
                unit,
                profile_unit_call(
                    profile_dir,
                    unit.unit_id,
                    lambda unit=unit: spec.execute_unit(
                        unit,
                        scale,
                        _memory_context(replay_trace, unit, spec, broker_policy),
                    ),
                ),
            )
            for unit in units
        ]
    jobs = [
        (
            spec.name,
            scale,
            unit.to_record(),
            replay_trace,
            profile_dir,
            broker_policy,
        )
        for unit in units
    ]
    with ProcessPoolExecutor(max_workers=min(workers, len(units))) as pool:
        payloads = list(pool.map(_execute_unit_job, jobs))
    return list(zip(units, payloads))


def run_artifacts(
    scale: ExperimentScale,
    artifacts: Optional[Sequence[str]] = None,
    workers: int = 1,
    on_result: Optional[Callable[[ExperimentSpec, Any], None]] = None,
    replay_trace: Optional[str] = None,
    profile_dir: Optional[str] = None,
    broker_policy: Optional[BrokerPolicy] = None,
) -> Dict[str, Any]:
    """Execute and fold artifacts in dependency order, in memory.

    This is the degenerate one-worker path of the sharded backend: the
    same units, the same seeding, the same folds — just without the
    on-disk queue, claims and checkpoints.  ``on_result`` fires after each
    artifact folds (dependency-closure artifacts included), which is what
    lets the report stream section by section.  ``replay_trace`` names a
    measurement-trace directory: learner runs replay recorded measurements
    and record whatever they had to measure live, so a second run (or a
    re-scoring of different acquisition arms) profiles only what the trace
    does not already hold.  ``profile_dir`` turns on per-unit cProfile
    dumps (the caller is responsible for merging them into a summary, see
    :func:`repro.experiments.profiling.write_profile_summary`).
    """
    results: Dict[str, Any] = {}
    for spec in resolve_artifacts(artifacts):
        pairs = execute_artifact_units(
            spec,
            scale,
            workers=workers,
            replay_trace=replay_trace,
            profile_dir=profile_dir,
            broker_policy=broker_policy,
        )
        deps = {name: results[name] for name in spec.depends_on}
        results[spec.name] = spec.fold(scale, pairs, deps)
        if on_result is not None:
            on_result(spec, results[spec.name])
    return results


def group_learner_results(
    payloads: Sequence[Tuple[WorkUnit, Any]],
    benchmarks: Sequence[str],
    labels: Sequence[str],
    axis_param: str,
) -> Dict[str, Dict[str, List[Any]]]:
    """Group learner-run payloads by (benchmark × axis label), each list
    sorted by repetition — the shape
    :func:`~repro.core.comparison.assemble_comparison` consumes.

    ``axis_param`` names the unit parameter carrying the label:
    ``"plan_name"`` for Table 1, ``"variant"`` for the ablation specs.
    """
    grouped: Dict[str, Dict[str, List[Tuple[int, Any]]]] = {
        name: {label: [] for label in labels} for name in benchmarks
    }
    for unit, result in payloads:
        grouped[str(unit.params["benchmark"])][str(unit.params[axis_param])].append(
            (int(unit.params["repetition"]), result)
        )
    return {
        name: {
            label: [result for _, result in sorted(runs, key=lambda item: item[0])]
            for label, runs in per_label.items()
        }
        for name, per_label in grouped.items()
    }


def execute_learner_run(
    benchmark_name: str,
    plan: SamplingPlan,
    plan_index: int,
    repetition: int,
    config: ComparisonConfig,
    acquisition: Optional[object] = None,
    model_factory: Optional[Callable] = None,
    context: Optional[UnitContext] = None,
    batch_size: int = 1,
) -> LearningResult:
    """One seeded active-learner run — the shared learner-unit body.

    Rebuilds the benchmark and the repetition's held-out test set from
    their deterministic seeds (matching the pool schedule of
    ``compare_sampling_plans_suite`` exactly: the test seed depends only
    on the repetition, the run seed on repetition × ``plan_index``),
    resumes from the context's checkpoint when one exists — a pickled
    :class:`~repro.core.session.TuningSession`, whose
    ``attach_benchmark`` restores the benchmark's stateful noise
    components only *after* the test set is rebuilt here, since building
    it advances the drift walk — and returns the result with the
    surrogate model stripped (payloads must stay small and picklable).
    ``plan_index`` is whatever position the run occupies on its
    comparison axis: the sampling-plan index for Table 1, the variant
    index for the ablation specs.  When the context carries a
    ``replay_trace`` directory, measurements go through a
    :class:`~repro.measurement.broker.ReplayBroker` over that trace
    (replay recorded requests, record live-measured misses).
    ``batch_size > 1`` drives the run through batch acquisition
    (``TuningSession.ask(k)``) — the ``batch-acquisition`` ablation's
    axis; the default of 1 is the paper's sequential loop.
    """
    context = context if context is not None else UnitContext()
    benchmark = get_benchmark(benchmark_name)
    test_rng = np.random.default_rng(config.seed + 7919 * repetition)
    test_set = build_test_set(
        benchmark,
        size=config.test_size,
        observations=config.test_observations,
        rng=test_rng,
    )
    resume: Optional[TuningSession] = context.load_checkpoint()
    run_rng = np.random.default_rng(
        config.seed + 104729 * repetition + 1299709 * plan_index + 1
    )
    learner = ActiveLearner(
        benchmark,
        plan=plan,
        acquisition=resolve_acquisition(acquisition),
        config=config.learner,
        model_factory=model_factory,
        rng=run_rng,
    )

    def sink(session: TuningSession) -> None:
        context.save_checkpoint(session)
        context.progress(
            session.training_examples, config.learner.max_training_examples
        )

    policy = context.broker_policy
    policy_active = policy is not None and policy.active
    trace = (
        ReplayTrace(context.replay_trace)
        if context.replay_trace is not None
        else None
    )
    broker_factory = None
    if trace is not None or policy_active:
        # Trace records are namespaced by the unit identity, so parallel or
        # sequential units recording into one directory never replay each
        # other's measurements.  Direct API callers without a registry unit
        # id get a namespace derived from the run's identity coordinates.
        # The fault-tolerance policy reuses the same identity for its
        # fail-unit matching, jitter seeding and dead-letter records.
        unit_id = context.unit_id
        if unit_id is None:
            unit_id = "--".join(
                (
                    slugify(benchmark_name),
                    slugify(plan.name),
                    f"p{plan_index:02d}",
                    f"r{repetition:03d}",
                )
            )

        def broker_factory(base, rng):
            # Called after ``attach_benchmark`` on resume, so the noise
            # model read here is the (restored) one measurements go through.
            # Chain order: fault injection and retries wrap the *live*
            # broker; the replay broker sits outermost, so replayed hits
            # never consult the policy (a disk read has nothing to retry)
            # while misses fall through to the resilient live chain.
            broker = base
            if policy_active:
                broker = policy.wrap(broker, unit=unit_id)
            if trace is not None:
                broker = ReplayBroker(
                    trace,
                    fallback=broker,
                    rng=rng,
                    noise_model=benchmark.noise_model,
                    unit=unit_id,
                    artifact=context.artifact,
                    rescore_from=context.replay_rescore_from,
                )
            return broker

    interval = context.checkpoint_interval
    result = learner.run(
        test_set,
        resume=resume,
        checkpoint_interval=interval if interval > 0 else None,
        checkpoint_sink=sink if interval > 0 else None,
        broker_factory=broker_factory,
        batch_size=batch_size,
    )
    return dataclasses.replace(result, model=None)
