"""Table 1: lowest common RMSE, profiling cost and speed-up per benchmark.

For every benchmark the paper reports the size of its search space, the
lowest RMSE level reached by both the 35-observation baseline and the
variable-observation approach, the profiling cost (seconds of simulated
compilation + execution) each needed to first reach that level, the
resulting speed-up, and the geometric-mean speed-up across all 11
benchmarks (3.97x in the paper, with a maximum of 26x on gemver and one
regression, adi at 0.29x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.comparison import (
    PlanComparison,
    assemble_comparison,
    compare_sampling_plans_suite,
)
from ..core.curves import speedup_factor
from ..core.learner import LearningResult
from ..core.plans import standard_plans
from ..measurement.stats import geometric_mean
from ..spapt.suite import get_benchmark
from .config import ExperimentScale
from .registry import (
    ExperimentSpec,
    UnitContext,
    WorkUnit,
    execute_learner_run,
    group_learner_results,
    register,
    slugify,
)
from .reporting import format_scientific, format_table

__all__ = [
    "Table1Row",
    "Table1Result",
    "Table1Spec",
    "run_table1",
    "table1_from_comparisons",
    "PAPER_TABLE1_SPEEDUPS",
]

BASELINE_PLAN = "all observations"
VARIABLE_PLAN = "variable observations"

#: Speed-ups reported in Table 1 of the paper, for side-by-side reporting.
PAPER_TABLE1_SPEEDUPS: Dict[str, float] = {
    "adi": 0.29,
    "atax": 13.93,
    "bicgkernel": 3.59,
    "correlation": 7.07,
    "dgemv3": 23.52,
    "gemver": 26.00,
    "hessian": 3.69,
    "jacobi": 3.55,
    "lu": 3.62,
    "mm": 1.11,
    "mvt": 1.18,
}


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's row of Table 1.

    ``speedup`` is the paper's single-level metric (cost ratio at the
    lowest common RMSE); ``speedup_factor`` is the multi-level AUC-ratio
    of :func:`repro.core.curves.speedup_factor`, reported alongside it.
    """

    benchmark: str
    search_space_size: float
    paper_search_space_size: float
    lowest_common_rmse: float
    baseline_cost_seconds: float
    our_cost_seconds: float
    speedup: float
    speedup_factor: float
    paper_speedup: float


@dataclass
class Table1Result:
    """All rows plus the geometric-mean speed-up."""

    rows: List[Table1Row]
    comparisons: Dict[str, PlanComparison]

    @property
    def geometric_mean_speedup(self) -> float:
        return geometric_mean([row.speedup for row in self.rows])

    @property
    def paper_geometric_mean_speedup(self) -> float:
        return geometric_mean([row.paper_speedup for row in self.rows])

    @property
    def geometric_mean_speedup_factor(self) -> float:
        return geometric_mean([row.speedup_factor for row in self.rows])

    def to_rows(self) -> List[List[object]]:
        data: List[List[object]] = []
        for row in self.rows:
            data.append(
                [
                    row.benchmark,
                    format_scientific(row.search_space_size),
                    f"{row.lowest_common_rmse:.4g}",
                    f"{row.baseline_cost_seconds:.4g}",
                    f"{row.our_cost_seconds:.4g}",
                    f"{row.speedup:.2f}",
                    f"{row.speedup_factor:.2f}",
                    f"{row.paper_speedup:.2f}",
                ]
            )
        data.append(
            [
                "geometric mean",
                "",
                "",
                "",
                "",
                f"{self.geometric_mean_speedup:.2f}",
                f"{self.geometric_mean_speedup_factor:.2f}",
                f"{self.paper_geometric_mean_speedup:.2f}",
            ]
        )
        return data

    def render(self) -> str:
        return format_table(
            headers=[
                "benchmark",
                "search space",
                "lowest common RMSE",
                "cost of the baseline (s)",
                "cost of our approach (s)",
                "speed-up",
                "speed-up factor",
                "paper speed-up",
            ],
            rows=self.to_rows(),
            title="Table 1: profiling cost to reach the lowest common error",
        )


def run_table1(
    scale: Optional[ExperimentScale] = None,
    benchmarks: Optional[Sequence[str]] = None,
    workers: int = 1,
) -> Table1Result:
    """Regenerate Table 1 at the requested scale.

    ``workers > 1`` fans the (benchmark × plan × repetition) learner runs
    out over a process pool.  The rows are deterministic and independent of
    the worker count; benchmarks whose noise model carries state across
    runs (frequency drift, e.g. adi/correlation) get a fresh noise state
    per run in pool mode, so their rows can differ slightly from the
    serial schedule (see :func:`repro.core.comparison.compare_sampling_plans_suite`).
    """
    scale = scale if scale is not None else ExperimentScale.laptop()
    names = list(benchmarks) if benchmarks is not None else list(scale.benchmarks)
    comparisons: Dict[str, PlanComparison] = compare_sampling_plans_suite(
        names,
        plans=standard_plans(),
        config=scale.comparison_config(),
        workers=workers,
    )
    return table1_from_comparisons(names, comparisons)


def table1_from_comparisons(
    names: Sequence[str], comparisons: Dict[str, PlanComparison]
) -> Table1Result:
    """Fold finished plan comparisons into Table 1 rows.

    Shared by :func:`run_table1` and the sharded paper-run backend
    (:mod:`repro.experiments.runner`), whose merge step produces the same
    per-benchmark :class:`~repro.core.comparison.PlanComparison` mapping.
    """
    rows: List[Table1Row] = []
    for name in names:
        benchmark = get_benchmark(name)
        comparison = comparisons[name]
        rows.append(
            Table1Row(
                benchmark=name,
                search_space_size=float(benchmark.search_space.size),
                paper_search_space_size=benchmark.paper_search_space_size,
                lowest_common_rmse=comparison.lowest_common_rmse,
                baseline_cost_seconds=comparison.cost_to_reach[BASELINE_PLAN],
                our_cost_seconds=comparison.cost_to_reach[VARIABLE_PLAN],
                speedup=comparison.speedup(BASELINE_PLAN, VARIABLE_PLAN),
                speedup_factor=speedup_factor(
                    comparison.curves[BASELINE_PLAN],
                    comparison.curves[VARIABLE_PLAN],
                ),
                paper_speedup=PAPER_TABLE1_SPEEDUPS.get(name, float("nan")),
            )
        )
    return Table1Result(rows=rows, comparisons=comparisons)


class Table1Spec(ExperimentSpec):
    """Table 1 as registry work units: one learner run per
    (benchmark × sampling plan × repetition) cell, seeded exactly like the
    pool schedule of ``compare_sampling_plans_suite`` (so the sharded fold
    equals the pool backend bit-for-bit; benchmarks with stateful drift
    noise start each unit with a fresh noise state, like the pool)."""

    name = "table1"
    title = "Table 1"

    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        plans = standard_plans()
        return [
            WorkUnit(
                artifact=self.name,
                key=(name, slugify(plan.name), f"r{repetition:03d}"),
                params={
                    "benchmark": name,
                    "plan_name": plan.name,
                    "plan_index": plan_index,
                    "repetition": repetition,
                },
            )
            for name in scale.benchmarks
            for repetition in range(scale.repetitions)
            for plan_index, plan in enumerate(plans)
        ]

    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> LearningResult:
        plan_index = int(unit.params["plan_index"])
        return execute_learner_run(
            benchmark_name=str(unit.params["benchmark"]),
            plan=standard_plans()[plan_index],
            plan_index=plan_index,
            repetition=int(unit.params["repetition"]),
            config=scale.comparison_config(),
            context=context,
        )

    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> Table1Result:
        plan_names = [plan.name for plan in standard_plans()]
        names = list(scale.benchmarks)
        grouped = group_learner_results(
            payloads, names, plan_names, axis_param="plan_name"
        )
        comparisons = {
            name: assemble_comparison(name, plan_names, grouped[name])
            for name in names
        }
        return table1_from_comparisons(names, comparisons)


register(Table1Spec())


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_table1()
    print(result.render())


if __name__ == "__main__":  # pragma: no cover
    main()
