"""Noise-injection robustness study (the paper's stated future work).

The conclusion of the paper: *"We intend to test the bounds of our technique
by artificially introducing noise into the system to see how robustly it
performs in extreme cases.  Success would allow our strategies to be used in
heavily loaded multi-user environments."*

The simulated substrate makes that study straightforward: this driver scales
a benchmark's calibrated noise profile by a sequence of multipliers (0.5x …
8x, where 1x is the calibration of Table 2) and, at every noise level, runs
the Table 1 comparison between the 35-observation baseline and the variable
plan.  The questions it answers:

* does the variable plan keep reaching the common error level cheaper as
  the environment gets noisier (the "heavily loaded machine" scenario)?
* how does the achievable error level itself degrade with noise for each
  plan?
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..core.comparison import PlanComparison, compare_sampling_plans
from ..core.plans import standard_plans
from ..measurement.noise import NoiseProfile
from ..spapt.suite import BENCHMARK_SPECS, SpaptBenchmark
from .config import ExperimentScale
from .reporting import format_table

__all__ = ["NoiseLevelResult", "NoiseRobustnessResult", "scaled_benchmark", "run_noise_robustness"]

BASELINE_PLAN = "all observations"
VARIABLE_PLAN = "variable observations"


def _scale_profile(profile: NoiseProfile, multiplier: float) -> NoiseProfile:
    """Scale every stochastic component of a noise profile by ``multiplier``."""
    if multiplier <= 0:
        raise ValueError("noise multiplier must be positive")
    return NoiseProfile(
        interference_sigma=profile.interference_sigma * multiplier,
        layout_sigma_high=profile.layout_sigma_high * multiplier,
        spike_probability=min(profile.spike_probability * multiplier, 0.5),
        spike_scale=profile.spike_scale * multiplier,
        jitter_seconds=profile.jitter_seconds * multiplier,
        drift_sigma=profile.drift_sigma * multiplier,
    )


def scaled_benchmark(name: str, noise_multiplier: float) -> SpaptBenchmark:
    """A SPAPT benchmark whose noise profile is scaled by ``noise_multiplier``."""
    if name not in BENCHMARK_SPECS:
        raise KeyError(f"unknown benchmark {name!r}")
    spec = BENCHMARK_SPECS[name]
    scaled = replace(spec, noise_profile=_scale_profile(spec.noise_profile, noise_multiplier))
    return SpaptBenchmark(scaled)


@dataclass(frozen=True)
class NoiseLevelResult:
    """Outcome of the plan comparison at one noise level."""

    noise_multiplier: float
    lowest_common_rmse: float
    baseline_cost_seconds: float
    variable_cost_seconds: float
    speedup: float
    baseline_best_rmse: float
    variable_best_rmse: float


@dataclass
class NoiseRobustnessResult:
    benchmark: str
    levels: List[NoiseLevelResult]
    comparisons: Dict[float, PlanComparison]

    def render(self) -> str:
        rows = [
            [
                f"{level.noise_multiplier:g}x",
                f"{level.lowest_common_rmse:.4g}",
                f"{level.baseline_cost_seconds:.4g}",
                f"{level.variable_cost_seconds:.4g}",
                f"{level.speedup:.2f}",
                f"{level.baseline_best_rmse:.4g}",
                f"{level.variable_best_rmse:.4g}",
            ]
            for level in self.levels
        ]
        return format_table(
            headers=[
                "noise level",
                "lowest common RMSE",
                "baseline cost (s)",
                "variable cost (s)",
                "speed-up",
                "baseline best RMSE",
                "variable best RMSE",
            ],
            rows=rows,
            title=(
                f"Noise-injection robustness ({self.benchmark}): plan comparison as the "
                "calibrated noise is scaled"
            ),
        )


def run_noise_robustness(
    scale: Optional[ExperimentScale] = None,
    benchmark_name: str = "mm",
    noise_multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
) -> NoiseRobustnessResult:
    """Run the future-work noise-injection study for one benchmark."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    levels: List[NoiseLevelResult] = []
    comparisons: Dict[float, PlanComparison] = {}
    for multiplier in noise_multipliers:
        benchmark = scaled_benchmark(benchmark_name, multiplier)
        comparison = compare_sampling_plans(
            benchmark, plans=standard_plans(), config=scale.comparison_config()
        )
        comparisons[multiplier] = comparison
        levels.append(
            NoiseLevelResult(
                noise_multiplier=float(multiplier),
                lowest_common_rmse=comparison.lowest_common_rmse,
                baseline_cost_seconds=comparison.cost_to_reach[BASELINE_PLAN],
                variable_cost_seconds=comparison.cost_to_reach[VARIABLE_PLAN],
                speedup=comparison.speedup(BASELINE_PLAN, VARIABLE_PLAN),
                baseline_best_rmse=comparison.curves[BASELINE_PLAN].best_error,
                variable_best_rmse=comparison.curves[VARIABLE_PLAN].best_error,
            )
        )
    return NoiseRobustnessResult(
        benchmark=benchmark_name, levels=levels, comparisons=comparisons
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_noise_robustness().render())


if __name__ == "__main__":  # pragma: no cover
    main()
