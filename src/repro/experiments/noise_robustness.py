"""Noise-injection robustness study (the paper's stated future work).

The conclusion of the paper: *"We intend to test the bounds of our technique
by artificially introducing noise into the system to see how robustly it
performs in extreme cases.  Success would allow our strategies to be used in
heavily loaded multi-user environments."*

The simulated substrate makes that study straightforward: this driver scales
a benchmark's calibrated noise profile by a sequence of multipliers (0.5x …
8x, where 1x is the calibration of Table 2) and, at every noise level, runs
the Table 1 comparison between the 35-observation baseline and the variable
plan.  The questions it answers:

* does the variable plan keep reaching the common error level cheaper as
  the environment gets noisier (the "heavily loaded machine" scenario)?
* how does the achievable error level itself degrade with noise for each
  plan?
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.comparison import PlanComparison, compare_sampling_plans
from ..core.plans import standard_plans
from ..measurement.noise import NoiseProfile
from ..spapt.suite import BENCHMARK_SPECS, SpaptBenchmark
from .config import ExperimentScale
from .registry import ExperimentSpec, UnitContext, WorkUnit, register
from .reporting import format_table

__all__ = [
    "NoiseLevelResult",
    "NoiseRobustnessResult",
    "NoiseRobustnessSpec",
    "scaled_benchmark",
    "run_noise_robustness",
    "DEFAULT_NOISE_MULTIPLIERS",
]

#: Noise multipliers of the robustness sweep (1x = Table 2's calibration).
DEFAULT_NOISE_MULTIPLIERS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)

BASELINE_PLAN = "all observations"
VARIABLE_PLAN = "variable observations"


def _scale_profile(profile: NoiseProfile, multiplier: float) -> NoiseProfile:
    """Scale every stochastic component of a noise profile by ``multiplier``."""
    if multiplier <= 0:
        raise ValueError("noise multiplier must be positive")
    return NoiseProfile(
        interference_sigma=profile.interference_sigma * multiplier,
        layout_sigma_high=profile.layout_sigma_high * multiplier,
        spike_probability=min(profile.spike_probability * multiplier, 0.5),
        spike_scale=profile.spike_scale * multiplier,
        jitter_seconds=profile.jitter_seconds * multiplier,
        drift_sigma=profile.drift_sigma * multiplier,
    )


def scaled_benchmark(name: str, noise_multiplier: float) -> SpaptBenchmark:
    """A SPAPT benchmark whose noise profile is scaled by ``noise_multiplier``."""
    if name not in BENCHMARK_SPECS:
        raise KeyError(f"unknown benchmark {name!r}")
    spec = BENCHMARK_SPECS[name]
    scaled = replace(spec, noise_profile=_scale_profile(spec.noise_profile, noise_multiplier))
    return SpaptBenchmark(scaled)


@dataclass(frozen=True)
class NoiseLevelResult:
    """Outcome of the plan comparison at one noise level."""

    noise_multiplier: float
    lowest_common_rmse: float
    baseline_cost_seconds: float
    variable_cost_seconds: float
    speedup: float
    baseline_best_rmse: float
    variable_best_rmse: float


@dataclass
class NoiseRobustnessResult:
    benchmark: str
    levels: List[NoiseLevelResult]
    comparisons: Dict[float, PlanComparison]

    def render(self) -> str:
        rows = [
            [
                f"{level.noise_multiplier:g}x",
                f"{level.lowest_common_rmse:.4g}",
                f"{level.baseline_cost_seconds:.4g}",
                f"{level.variable_cost_seconds:.4g}",
                f"{level.speedup:.2f}",
                f"{level.baseline_best_rmse:.4g}",
                f"{level.variable_best_rmse:.4g}",
            ]
            for level in self.levels
        ]
        return format_table(
            headers=[
                "noise level",
                "lowest common RMSE",
                "baseline cost (s)",
                "variable cost (s)",
                "speed-up",
                "baseline best RMSE",
                "variable best RMSE",
            ],
            rows=rows,
            title=(
                f"Noise-injection robustness ({self.benchmark}): plan comparison as the "
                "calibrated noise is scaled"
            ),
        )


def _level_comparison(
    benchmark_name: str, multiplier: float, scale: ExperimentScale
) -> PlanComparison:
    """The plan comparison at one noise level — the robustness work unit.

    Each level builds its own scaled benchmark and runs the comparison
    serially inside the unit (the historical schedule: stateful noise
    carries across the level's repetitions), so the levels themselves are
    order-independent and shard freely.
    """
    benchmark = scaled_benchmark(benchmark_name, multiplier)
    comparison = compare_sampling_plans(
        benchmark, plans=standard_plans(), config=scale.comparison_config()
    )
    # Unit payloads must stay small and picklable: drop the per-run models.
    stripped = {
        plan_name: [dataclasses.replace(r, model=None) for r in results]
        for plan_name, results in comparison.results.items()
    }
    return dataclasses.replace(comparison, results=stripped)


def _level_result(multiplier: float, comparison: PlanComparison) -> NoiseLevelResult:
    return NoiseLevelResult(
        noise_multiplier=float(multiplier),
        lowest_common_rmse=comparison.lowest_common_rmse,
        baseline_cost_seconds=comparison.cost_to_reach[BASELINE_PLAN],
        variable_cost_seconds=comparison.cost_to_reach[VARIABLE_PLAN],
        speedup=comparison.speedup(BASELINE_PLAN, VARIABLE_PLAN),
        baseline_best_rmse=comparison.curves[BASELINE_PLAN].best_error,
        variable_best_rmse=comparison.curves[VARIABLE_PLAN].best_error,
    )


def run_noise_robustness(
    scale: Optional[ExperimentScale] = None,
    benchmark_name: str = "mm",
    noise_multipliers: Sequence[float] = DEFAULT_NOISE_MULTIPLIERS,
) -> NoiseRobustnessResult:
    """Run the future-work noise-injection study for one benchmark."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    levels: List[NoiseLevelResult] = []
    comparisons: Dict[float, PlanComparison] = {}
    for multiplier in noise_multipliers:
        comparison = _level_comparison(benchmark_name, multiplier, scale)
        comparisons[multiplier] = comparison
        levels.append(_level_result(multiplier, comparison))
    return NoiseRobustnessResult(
        benchmark=benchmark_name, levels=levels, comparisons=comparisons
    )


class NoiseRobustnessSpec(ExperimentSpec):
    """The noise-injection study as registry work units: one per noise
    multiplier, on the study benchmark (``mm`` when the scale includes it,
    otherwise the scale's first benchmark)."""

    name = "noise_robustness"
    title = "Noise robustness"
    multipliers: Tuple[float, ...] = DEFAULT_NOISE_MULTIPLIERS

    @staticmethod
    def study_benchmark(scale: ExperimentScale) -> str:
        return "mm" if "mm" in scale.benchmarks else scale.benchmarks[0]

    def fingerprint_extras(self) -> Tuple[float, ...]:
        return self.multipliers

    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        benchmark = self.study_benchmark(scale)
        return [
            WorkUnit(
                artifact=self.name,
                key=(benchmark, f"{multiplier:g}x"),
                params={"benchmark": benchmark, "multiplier": multiplier},
            )
            for multiplier in self.multipliers
        ]

    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> PlanComparison:
        return _level_comparison(
            str(unit.params["benchmark"]), float(unit.params["multiplier"]), scale
        )

    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> NoiseRobustnessResult:
        ordered = sorted(
            payloads, key=lambda pair: float(pair[0].params["multiplier"])
        )
        levels = [
            _level_result(float(unit.params["multiplier"]), comparison)
            for unit, comparison in ordered
        ]
        comparisons = {
            float(unit.params["multiplier"]): comparison
            for unit, comparison in ordered
        }
        return NoiseRobustnessResult(
            benchmark=self.study_benchmark(scale),
            levels=levels,
            comparisons=comparisons,
        )


register(NoiseRobustnessSpec())


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_noise_robustness().render())


if __name__ == "__main__":  # pragma: no cover
    main()
