"""Ablation studies as first-class registry artifacts.

The paper fixes two design choices that deserve head-to-head evidence:
the ALC acquisition function (Section 3.3 argues it copes better with
heteroskedastic noise than ALM) and the dynamic-tree surrogate.  The
multi-strategy benchmarking practised by *Active Code Learning*
(arXiv:2306.01250) treats such choices as an experiment axis; these specs
do the same through the name-based factories
(:func:`repro.core.acquisition.make_acquisition`,
:func:`repro.models.model_factory`), so a strategy axis is literally a
list of names carried in the work-unit parameters:

* ``acquisition-ablation`` — ALC vs ALM vs random selection, everything
  else (variable-observation plan, dynamic tree) held at the paper's
  choices;
* ``model-ablation`` — dynamic tree vs Gaussian process vs k-NN under the
  identical learning loop;
* ``batch-acquisition`` — batch sizes k ∈ {1, 2, 5} crossed with the batch
  selection strategies (greedy-ALC with fantasized updates, the cheap
  diversity-penalty variant, and random top-k) driven through
  ``TuningSession.ask(k)``; the ``k1-greedy-alc-fantasy`` reference is
  bit-identical to the sequential ALC loop, so the arm isolates what a
  batch of parallel workers costs in sample efficiency.

Each variant runs under the same seeded (benchmark × variant ×
repetition) unit shape as Table 1 — the variant index takes the place of
the plan index in the seeding formula — so the ablations shard, resume
and fold on the same runner as every other artifact.  The fold reuses
:func:`repro.core.comparison.assemble_comparison` with variant names as
the comparison axis, reporting each variant's best error, the cost to
reach the lowest error *every* variant reaches, and the cost ratio versus
the paper's choice (the first variant), plus the multi-level
:func:`~repro.core.curves.speedup_factor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.comparison import PlanComparison, assemble_comparison
from ..core.curves import speedup_factor
from ..core.learner import LearningResult
from ..core.plans import sequential_plan
from ..models import model_factory
from .config import ExperimentScale
from .registry import (
    ExperimentSpec,
    UnitContext,
    WorkUnit,
    execute_learner_run,
    group_learner_results,
    register,
    run_artifacts,
    slugify,
)
from .reporting import format_table

__all__ = [
    "AblationRow",
    "AblationResult",
    "AcquisitionAblationSpec",
    "ModelAblationSpec",
    "BatchAcquisitionSpec",
    "run_acquisition_ablation",
    "run_model_ablation",
    "run_batch_acquisition_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One (benchmark × variant) summary of an ablation axis."""

    benchmark: str
    variant: str
    best_rmse: float
    lowest_common_rmse: float
    cost_to_reach_seconds: float
    cost_ratio_vs_reference: float
    speedup_factor_vs_reference: float


@dataclass
class AblationResult:
    """All rows of one ablation axis plus the per-benchmark comparisons."""

    axis: str
    reference_variant: str
    rows: List[AblationRow]
    comparisons: Dict[str, PlanComparison]

    def render(self) -> str:
        data = [
            [
                row.benchmark,
                row.variant,
                f"{row.best_rmse:.4g}",
                f"{row.lowest_common_rmse:.4g}",
                f"{row.cost_to_reach_seconds:.4g}",
                f"{row.cost_ratio_vs_reference:.2f}",
                f"{row.speedup_factor_vs_reference:.2f}",
            ]
            for row in self.rows
        ]
        return format_table(
            headers=[
                "benchmark",
                self.axis,
                "best RMSE",
                "lowest common RMSE",
                "cost to reach (s)",
                f"cost ratio vs {self.reference_variant}",
                "speed-up factor",
            ],
            rows=data,
            title=(
                f"Ablation ({self.axis}): strategies compared under the "
                "variable-observation plan"
            ),
        )


class _LearnerAblationSpec(ExperimentSpec):
    """Shared machinery: one learner run per (benchmark × variant ×
    repetition), with the variant resolved by name through the core
    factories.  Subclasses set ``variants`` (the reference/paper choice
    first) and implement :meth:`learner_kwargs`."""

    #: Strategy names on this axis; the first is the reference variant.
    variants: Tuple[str, ...] = ()
    #: Axis label used in the rendered table ("acquisition", "model").
    axis: str = "variant"
    #: Running with ``--replay-trace`` over a recorded table1 trace
    #: re-scores the ablation arms against table1's measurements
    #: (common-random-numbers observation sharing; configurations table1
    #: never visited are profiled live and recorded).
    replay_rescore_from: Tuple[str, ...] = ("table1",)

    def learner_kwargs(self, variant: str, scale: ExperimentScale) -> dict:
        """Extra ``execute_learner_run`` arguments selecting ``variant``."""
        raise NotImplementedError

    def fingerprint_extras(self) -> Tuple[str, ...]:
        return self.variants

    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        return [
            WorkUnit(
                artifact=self.name,
                key=(name, slugify(variant), f"r{repetition:03d}"),
                params={
                    "benchmark": name,
                    "variant": variant,
                    "variant_index": variant_index,
                    "repetition": repetition,
                },
            )
            for name in scale.benchmarks
            for repetition in range(scale.repetitions)
            for variant_index, variant in enumerate(self.variants)
        ]

    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> LearningResult:
        variant = str(unit.params["variant"])
        return execute_learner_run(
            benchmark_name=str(unit.params["benchmark"]),
            plan=sequential_plan(),
            plan_index=int(unit.params["variant_index"]),
            repetition=int(unit.params["repetition"]),
            config=scale.comparison_config(),
            context=context,
            **self.learner_kwargs(variant, scale),
        )

    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> AblationResult:
        names = list(scale.benchmarks)
        variant_names = list(self.variants)
        grouped = group_learner_results(
            payloads, names, variant_names, axis_param="variant"
        )
        reference = variant_names[0]
        rows: List[AblationRow] = []
        comparisons: Dict[str, PlanComparison] = {}
        for name in names:
            comparison = assemble_comparison(name, variant_names, grouped[name])
            comparisons[name] = comparison
            reference_cost = comparison.cost_to_reach[reference]
            for variant in variant_names:
                rows.append(
                    AblationRow(
                        benchmark=name,
                        variant=variant,
                        best_rmse=comparison.curves[variant].best_error,
                        lowest_common_rmse=comparison.lowest_common_rmse,
                        cost_to_reach_seconds=comparison.cost_to_reach[variant],
                        cost_ratio_vs_reference=(
                            comparison.cost_to_reach[variant] / reference_cost
                            if reference_cost > 0
                            else float("inf")
                        ),
                        # Reference as the baseline: > 1 means the variant
                        # reaches error levels cheaper than the reference.
                        speedup_factor_vs_reference=speedup_factor(
                            comparison.curves[reference],
                            comparison.curves[variant],
                        ),
                    )
                )
        return AblationResult(
            axis=self.axis,
            reference_variant=reference,
            rows=rows,
            comparisons=comparisons,
        )


class AcquisitionAblationSpec(_LearnerAblationSpec):
    """ALC (the paper's choice) vs ALM vs random selection."""

    name = "acquisition-ablation"
    title = "Acquisition ablation"
    axis = "acquisition"
    variants = ("alc", "alm", "random")

    def learner_kwargs(self, variant: str, scale: ExperimentScale) -> dict:
        return {"acquisition": variant}


class ModelAblationSpec(_LearnerAblationSpec):
    """Dynamic tree (the paper's choice) vs Gaussian process vs k-NN."""

    name = "model-ablation"
    title = "Model ablation"
    axis = "model"
    variants = ("dynamic-tree", "gp", "knn")

    def learner_kwargs(self, variant: str, scale: ExperimentScale) -> dict:
        return {
            "model_factory": model_factory(
                variant,
                tree_particles=scale.learner.tree_particles,
                tree_backend=scale.learner.tree_backend,
            )
        }


class BatchAcquisitionSpec(_LearnerAblationSpec):
    """Batch sizes k ∈ {1, 2, 5} × batch selection strategies.

    Each variant name is ``k<batch>-<strategy>``; the strategy resolves
    through :func:`~repro.core.acquisition.make_acquisition` and the batch
    size becomes ``execute_learner_run(batch_size=...)``, driving the run
    through ``TuningSession.ask(k)``.  The reference variant
    (``k1-greedy-alc-fantasy``) is bit-identical to the paper's sequential
    ALC loop — every strategy's ``k=1`` batch selection consumes the
    generator exactly like single selection — so cost ratios and speed-up
    factors against it measure the pure price of batching.
    """

    name = "batch-acquisition"
    title = "Batch acquisition ablation"
    axis = "batch strategy"
    variants = tuple(
        f"k{k}-{strategy}"
        for k in (1, 2, 5)
        for strategy in ("greedy-alc-fantasy", "diversity-penalty", "random")
    )

    @staticmethod
    def parse_variant(variant: str) -> Tuple[int, str]:
        """``"k5-greedy-alc-fantasy"`` → ``(5, "greedy-alc-fantasy")``."""
        prefix, _, strategy = variant.partition("-")
        if not prefix.startswith("k") or not prefix[1:].isdigit() or not strategy:
            raise ValueError(f"malformed batch variant name {variant!r}")
        return int(prefix[1:]), strategy

    def learner_kwargs(self, variant: str, scale: ExperimentScale) -> dict:
        batch_size, strategy = self.parse_variant(variant)
        return {"acquisition": strategy, "batch_size": batch_size}


register(AcquisitionAblationSpec())
register(ModelAblationSpec())
register(BatchAcquisitionSpec())


def run_acquisition_ablation(
    scale: Optional[ExperimentScale] = None,
) -> AblationResult:
    """Run the acquisition ablation serially, in memory."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    return run_artifacts(scale, ["acquisition-ablation"])["acquisition-ablation"]


def run_model_ablation(scale: Optional[ExperimentScale] = None) -> AblationResult:
    """Run the surrogate-model ablation serially, in memory."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    return run_artifacts(scale, ["model-ablation"])["model-ablation"]


def run_batch_acquisition_ablation(
    scale: Optional[ExperimentScale] = None,
) -> AblationResult:
    """Run the batch-acquisition ablation serially, in memory."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    return run_artifacts(scale, ["batch-acquisition"])["batch-acquisition"]
