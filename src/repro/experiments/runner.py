"""Sharded, checkpointed, multi-host backend for registry experiments.

Any artifact registered in :mod:`repro.experiments.registry` runs here:
the runner asks each selected :class:`~repro.experiments.registry.ExperimentSpec`
to decompose into seeded, order-independent work units and executes them
from a persistent on-disk queue:

* ``<run_dir>/manifest.jsonl`` — the task queue: a header fingerprinting
  the scale and the selected artifacts plus one record per work unit,
  written once when the run is created and validated on every resume (a
  manifest created for a different configuration refuses to resume rather
  than silently mixing results);
* ``<run_dir>/results/<unit>.pkl`` — one atomically written payload per
  completed unit; a unit with a result file is never re-run;
* ``<run_dir>/checkpoints/<unit>.pkl`` — the in-flight unit's most recent
  checkpoint (for learner units: a pickled
  :class:`~repro.core.session.TuningSession`), refreshed atomically
  every ``checkpoint_interval`` training examples and deleted when the
  unit completes.  A killed run resumes from the last checkpoint, and the
  resumed trajectory is bit-identical to the uninterrupted one;
* ``<run_dir>/claims/<unit>.claim`` — per-unit claim files created with
  ``O_EXCL`` (host + pid + lease timestamp), so several *machines* can
  point workers at one shared run directory: a unit is executed by
  whichever worker wins the atomic create, peers skip fresh claims and
  poll for the owner's result, and a claim whose lease expired (owner
  died) is taken over via an atomic rename — exactly one contender wins;
* ``<run_dir>/log/events.jsonl`` — an append-only journal of claim /
  execute / publish / takeover / fail / quarantine events (host, pid,
  timestamps), fsynced per event, the audit trail the contention tests
  assert on; a torn tail from a killed writer is truncated on resume;
* ``<run_dir>/failed/<unit>.json`` — the attempt history of a unit whose
  execution raised: traceback, host, pid and time per attempt.  A unit
  that fails ``max_unit_attempts`` times is *quarantined* — excluded from
  further execution, its artifact folds from the completed units and the
  report says so explicitly (see :class:`PartialArtifactResult`).
  Permanently failed *measurements* dead-letter into
  ``failed/dead-letters.jsonl`` when a fault-tolerance
  :class:`~repro.measurement.faults.BrokerPolicy` is armed.

Artifacts execute in dependency order; each one folds and (optionally)
streams its rendered report section as soon as its units are complete, so
a killed report run still leaves every finished section behind.
``run_all --paper-run`` drives this via :func:`run_paper_run`;
:class:`ExperimentRunner` is the programmatic surface.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import pickle
import random
import socket
import sys
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..measurement.faults import BrokerPolicy
from .config import ExperimentScale
from .profiling import profile_unit_call, write_profile_summary
from .registry import (
    DEFAULT_ARTIFACTS,
    ExperimentSpec,
    UnitContext,
    WorkUnit,
    get_spec,
    resolve_artifacts,
)

__all__ = [
    "WorkUnit",
    "RunManifest",
    "RunnerError",
    "ExperimentRunner",
    "PartialArtifactResult",
    "run_paper_run",
]

_MANIFEST_VERSION = 2


class RunnerError(RuntimeError):
    """A run directory cannot be created, resumed or merged."""


def _atomic_write_bytes(path: pathlib.Path, payload: bytes) -> None:
    """Write ``payload`` so that ``path`` is either absent, old or complete.

    The temporary file lives in the target directory (same filesystem) and
    carries the writer's pid, so concurrent workers never collide and a
    crash mid-write leaves at worst a stray ``*.tmp`` behind.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _host_tag() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def _append_event(run_dir: pathlib.Path, event: str, unit_id: str) -> None:
    """One journal line per event, written with a single ``O_APPEND`` write.

    On local POSIX filesystems a single small append lands as one whole
    record, so concurrent writers interleave lines, never fragments.  On
    network filesystems ``O_APPEND`` is weaker (NFS emulates it
    client-side) and a torn line is possible under cross-host contention;
    the journal is an audit trail, not a correctness mechanism — claims
    and results rely only on ``O_EXCL`` create and atomic rename, which
    hold on NFSv3+."""
    line = (
        json.dumps(
            {
                "event": event,
                "unit": unit_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "time": time.time(),
            }
        )
        + "\n"
    ).encode("utf-8")
    path = run_dir / "log" / "events.jsonl"
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
        # The journal is how a resumed run reconstructs what happened to a
        # crashed predecessor; fsync so a power loss right after an event
        # cannot lose it (a torn *partial* line is still possible and is
        # truncated away by _recover_journal on resume).
        os.fsync(fd)
    finally:
        os.close(fd)


def _recover_journal(run_dir: pathlib.Path) -> None:
    """Truncate a torn trailing line off ``log/events.jsonl``.

    A writer killed (or a machine powered off) mid-append can leave a
    partial final line.  Every complete line ends in a newline, so
    recovery is exact: cut the file back to its last newline.  Runs on
    every resume; a healthy journal is left byte-identical.
    """
    path = run_dir / "log" / "events.jsonl"
    try:
        size = path.stat().st_size
    except OSError:
        return
    if size == 0:
        return
    try:
        with open(path, "r+b") as handle:
            # A torn tail is at most one journal line; reading the last
            # 64 KiB bounds the scan on journals of any length.
            window = min(size, 65536)
            handle.seek(size - window)
            tail = handle.read()
            if tail.endswith(b"\n"):
                return
            cut = tail.rfind(b"\n")
            keep = (size - window) + (cut + 1 if cut >= 0 else 0)
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:
        return  # unreadable journal: an audit trail, never a hard failure


# ----------------------------------------------------------------- failures


def _failure_path(run_dir: pathlib.Path, unit_id: str) -> pathlib.Path:
    return run_dir / "failed" / f"{unit_id}.json"


def _load_failure_record(
    run_dir: pathlib.Path, unit_id: str
) -> Optional[dict]:
    try:
        record = json.loads(_failure_path(run_dir, unit_id).read_text("utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict) or "attempts" not in record:
        return None
    return record


def _record_unit_failure(
    run_dir: pathlib.Path, unit_id: str, error: str, max_attempts: int
) -> dict:
    """Append one failed attempt to ``failed/<unit>.json`` and return the
    updated record.  Only the claim owner writes, so the read-modify-write
    is serialised by the claim itself."""
    record = _load_failure_record(run_dir, unit_id)
    if record is None:
        record = {"unit": unit_id, "attempts": []}
    record["attempts"].append(
        {
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "time": time.time(),
            "error": error,
        }
    )
    record["quarantined"] = len(record["attempts"]) >= max_attempts
    record["max_attempts"] = max_attempts
    _atomic_write_bytes(
        _failure_path(run_dir, unit_id),
        (json.dumps(record, indent=2) + "\n").encode("utf-8"),
    )
    return record


def _clear_unit_failure(run_dir: pathlib.Path, unit_id: str) -> None:
    try:
        _failure_path(run_dir, unit_id).unlink()
    except OSError:
        pass


def _unit_is_quarantined(
    run_dir: pathlib.Path, unit_id: str, max_attempts: int
) -> bool:
    """True once the unit has failed ``max_attempts`` times.

    Judged against the *current* limit, not the one recorded at failure
    time, so resuming with a larger ``--max-unit-attempts`` releases
    previously quarantined units for another try.
    """
    record = _load_failure_record(run_dir, unit_id)
    return record is not None and len(record["attempts"]) >= max_attempts


def _failure_summary_line(record: dict) -> str:
    """One human-readable line for a quarantined unit's report entry."""
    attempts = record.get("attempts", [])
    last_error = ""
    if attempts:
        lines = [
            line
            for line in str(attempts[-1].get("error", "")).strip().splitlines()
            if line.strip()
        ]
        last_error = lines[-1].strip() if lines else ""
    return (
        f"{record.get('unit', '?')}: {len(attempts)} failed attempt(s)"
        + (f"; last error: {last_error}" if last_error else "")
    )


# ------------------------------------------------------------------- claims


def _claim_payload(lease_seconds: float) -> bytes:
    now = time.time()
    return json.dumps(
        {
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "acquired": now,
            "renewed": now,
            "lease_seconds": lease_seconds,
        }
    ).encode("utf-8")


def _claim_is_stale(path: pathlib.Path, default_lease: float) -> bool:
    try:
        record = json.loads(path.read_text("utf-8"))
        renewed = float(record["renewed"])
        lease = float(record.get("lease_seconds", default_lease))
    except (OSError, ValueError, KeyError, TypeError):
        # Unreadable or torn claim: treat as stale once it is old enough
        # that no live writer can still be mid-create.
        try:
            renewed = path.stat().st_mtime
        except OSError:
            return False  # vanished: the owner released it
        return time.time() - renewed > default_lease
    if record.get("host") == socket.gethostname():
        # A dead local owner can be detected directly instead of waiting
        # out the lease: a SIGKILLed run (claims never released) resumes
        # instantly.  An *alive* pid still falls through to the lease
        # check — the owner's heartbeat renews the lease while it works,
        # so an expired lease under a live pid means a hung owner (or a
        # recycled pid) and the unit should be taken over.
        try:
            os.kill(int(record["pid"]), 0)
        except (ProcessLookupError, ValueError, TypeError):
            return True
        except PermissionError:
            pass  # alive, owned by another user
    return time.time() - renewed > lease


def _try_claim(path: pathlib.Path, lease_seconds: float) -> bool:
    """Atomically claim a unit; returns False when a peer holds a live claim.

    The create is ``O_EXCL``, so exactly one contender wins a free unit.
    A stale claim (owner's lease expired — it died without releasing) is
    taken over by renaming it aside first: rename is atomic and succeeds
    for exactly one contender, so two hosts discovering the same dead
    claim cannot both take it.
    """
    run_dir = path.parent.parent
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        if not _claim_is_stale(path, lease_seconds):
            return False
        graveyard = path.with_name(f"{path.name}.stale.{_host_tag()}")
        try:
            os.rename(path, graveyard)
        except OSError:
            return False  # another contender won the takeover race
        try:
            graveyard.unlink()
        except OSError:
            pass
        _append_event(run_dir, "takeover", path.stem)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
    try:
        os.write(fd, _claim_payload(lease_seconds))
    finally:
        os.close(fd)
    _append_event(run_dir, "claim", path.stem)
    return True


def _renew_claim(path: pathlib.Path, lease_seconds: float) -> None:
    """Refresh the lease timestamp of a claim this worker owns."""
    _atomic_write_bytes(path, _claim_payload(lease_seconds))


def _release_claim(path: pathlib.Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


# ------------------------------------------------------------------ manifest


@dataclass(frozen=True)
class RunManifest:
    """The persistent task queue: configuration fingerprint plus work units."""

    fingerprint: str
    units: Tuple[WorkUnit, ...]

    @classmethod
    def build(
        cls, scale: ExperimentScale, specs: Sequence[ExperimentSpec]
    ) -> "RunManifest":
        units: List[WorkUnit] = []
        for spec in specs:
            units.extend(spec.work_units(scale))
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            # Two unit keys that differ only in slugged-away characters
            # would share result/checkpoint paths and silently drop units.
            raise RunnerError(
                "work-unit ids collide after filesystem slugging; "
                "rename the offending plan/variant names"
            )
        fingerprint = sha256(
            repr(
                tuple((spec.name, spec.fingerprint(scale)) for spec in specs)
            ).encode("utf-8")
        ).hexdigest()[:16]
        return cls(fingerprint=fingerprint, units=tuple(units))

    def write(
        self, path: pathlib.Path, scale: ExperimentScale,
        artifacts: Sequence[str],
    ) -> None:
        lines = [
            json.dumps(
                {
                    "kind": "header",
                    "version": _MANIFEST_VERSION,
                    "fingerprint": self.fingerprint,
                    "scale": scale.name,
                    "artifacts": list(artifacts),
                    "units": len(self.units),
                }
            )
        ]
        lines.extend(json.dumps(unit.to_record()) for unit in self.units)
        _atomic_write_bytes(path, ("\n".join(lines) + "\n").encode("utf-8"))

    @classmethod
    def read(cls, path: pathlib.Path) -> "RunManifest":
        units: List[WorkUnit] = []
        fingerprint: Optional[str] = None
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("kind") == "header":
                    if record.get("version") != _MANIFEST_VERSION:
                        raise RunnerError(
                            f"manifest {path} has version {record.get('version')!r}; "
                            f"this code reads version {_MANIFEST_VERSION}"
                        )
                    fingerprint = record["fingerprint"]
                elif record.get("kind") == "unit":
                    units.append(WorkUnit.from_record(record))
        if fingerprint is None:
            raise RunnerError(f"manifest {path} has no header record")
        return cls(fingerprint=fingerprint, units=tuple(units))


# ----------------------------------------------------------- unit execution


class _FileUnitContext(UnitContext):
    """File-backed checkpoint/progress context for one claimed unit.

    Checkpoints and progress counters are written atomically; every
    checkpoint also renews the unit's claim lease, so a live long-running
    unit is never mistaken for a dead one as long as its checkpoint
    cadence beats the lease.

    Every checkpoint carries a sha256 sidecar (``<unit>.pkl.sha256``)
    committed after the checkpoint itself: a corrupted or truncated
    checkpoint — bitrot, a torn filesystem, a partial copy — fails the
    digest check on load and the unit restarts cleanly instead of
    resuming from garbage.  The checkpoint/sidecar pair is two atomic
    renames, so a kill between them leaves a new checkpoint with the old
    digest; the mismatch is detected and the unit restarts from scratch
    (correct, merely slower), while a kill before either rename leaves
    the previous good pair intact and the unit resumes from it.
    Sidecar-less checkpoints (from runs predating the sidecar) load
    unverified.
    """

    def __init__(
        self,
        run_dir: pathlib.Path,
        unit: WorkUnit,
        checkpoint_interval: int,
        lease_seconds: float,
        replay_trace: Optional[str] = None,
        replay_rescore_from: Tuple[str, ...] = (),
        broker_policy: Optional[BrokerPolicy] = None,
    ) -> None:
        self.checkpoint_interval = checkpoint_interval
        self.replay_trace = replay_trace
        self.unit_id = unit.unit_id
        self.artifact = unit.artifact
        self.replay_rescore_from = tuple(replay_rescore_from)
        self.broker_policy = broker_policy
        self._run_dir = run_dir
        self._checkpoint_path = run_dir / "checkpoints" / f"{unit.unit_id}.pkl"
        self._digest_path = run_dir / "checkpoints" / f"{unit.unit_id}.pkl.sha256"
        self._progress_path = run_dir / "progress" / f"{unit.unit_id}.json"
        self._claim_path = run_dir / "claims" / f"{unit.unit_id}.claim"
        self._lease_seconds = lease_seconds

    def load_checkpoint(self) -> Optional[Any]:
        if not self._checkpoint_path.exists():
            return None
        try:
            payload = self._checkpoint_path.read_bytes()
        except OSError:
            return None
        try:
            expected = self._digest_path.read_text("utf-8").strip()
        except OSError:
            expected = None  # pre-sidecar checkpoint: load unverified
        if expected is not None and sha256(payload).hexdigest() != expected:
            # Corrupted or truncated checkpoint: discard the pair and
            # restart the unit cleanly rather than resume from garbage.
            _append_event(self._run_dir, "checkpoint-corrupt", self.unit_id)
            for stale in (self._checkpoint_path, self._digest_path):
                try:
                    stale.unlink()
                except OSError:
                    pass
            return None
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return None  # corrupt/stale checkpoint: restart the unit

    def save_checkpoint(self, state: Any) -> None:
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write_bytes(self._checkpoint_path, payload)
        _atomic_write_bytes(
            self._digest_path,
            (sha256(payload).hexdigest() + "\n").encode("utf-8"),
        )
        _renew_claim(self._claim_path, self._lease_seconds)

    def progress(self, done: int, target: int) -> None:
        _atomic_write_bytes(
            self._progress_path,
            json.dumps({"examples": done, "target": target}).encode("utf-8"),
        )

    def cleanup(self) -> None:
        for stale in (
            self._checkpoint_path,
            self._digest_path,
            self._progress_path,
        ):
            try:
                stale.unlink()
            except OSError:
                pass


class _ClaimHeartbeat:
    """Daemon thread renewing a claim's lease while its unit executes.

    Learner units renew on every checkpoint anyway; units that never
    checkpoint (table2's dataset sweep, the figures, a noise level) would
    otherwise outlive their lease and get taken over mid-execution by a
    polling peer.  The heartbeat renews at a third of the lease, so a
    live owner's claim is never stale no matter how long the unit runs.
    """

    def __init__(self, claim_path: pathlib.Path, lease_seconds: float) -> None:
        self._claim_path = claim_path
        self._lease_seconds = lease_seconds
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def _beat(self) -> None:
        while not self._stop.wait(self._lease_seconds / 3.0):
            _renew_claim(self._claim_path, self._lease_seconds)

    def __enter__(self) -> "_ClaimHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _execute_unit(
    run_dir: str,
    spec_name: str,
    scale: ExperimentScale,
    record: dict,
    checkpoint_interval: int,
    lease_seconds: float,
    replay_trace: Optional[str] = None,
    profile_dir: Optional[str] = None,
    broker_policy: Optional[BrokerPolicy] = None,
    max_unit_attempts: int = 3,
) -> Tuple[str, str]:
    """Claim and run one work unit (worker-process entry point).

    Returns ``(unit_id, status)`` where status is ``"done"`` (executed and
    published), ``"already"`` (result existed), ``"claimed"`` (a peer
    holds a live claim; the caller should poll for the peer's result),
    ``"failed"`` (this attempt raised; the failure is recorded and the
    unit stays retryable) or ``"quarantined"`` (the unit exhausted its
    ``max_unit_attempts`` and is excluded from further execution — its
    ``failed/<unit>.json`` holds the full attempt history).
    """
    base = pathlib.Path(run_dir)
    unit = WorkUnit.from_record(record)
    result_path = base / "results" / f"{unit.unit_id}.pkl"
    if result_path.exists():
        return unit.unit_id, "already"
    if _unit_is_quarantined(base, unit.unit_id, max_unit_attempts):
        return unit.unit_id, "quarantined"
    claim_path = base / "claims" / f"{unit.unit_id}.claim"
    if not _try_claim(claim_path, lease_seconds):
        return unit.unit_id, "claimed"
    try:
        if result_path.exists():
            # The previous owner published between our staleness check and
            # the takeover; nothing to do.
            return unit.unit_id, "already"
        _append_event(base, "execute", unit.unit_id)
        try:
            spec = get_spec(spec_name)
            context = _FileUnitContext(
                base,
                unit,
                checkpoint_interval,
                lease_seconds,
                replay_trace,
                replay_rescore_from=spec.replay_rescore_from,
                broker_policy=broker_policy,
            )
            with _ClaimHeartbeat(claim_path, lease_seconds):
                payload = profile_unit_call(
                    profile_dir,
                    unit.unit_id,
                    lambda: spec.execute_unit(unit, scale, context),
                )
        except Exception:
            # Graceful degradation: record the attempt (traceback + host +
            # time) while we still hold the claim — the claim serialises
            # the read-modify-write of the failure file — and hand the
            # unit back.  It stays retryable until max_unit_attempts, then
            # quarantines; KeyboardInterrupt and friends still propagate.
            failure = _record_unit_failure(
                base, unit.unit_id, traceback.format_exc(), max_unit_attempts
            )
            quarantined = bool(failure.get("quarantined"))
            _append_event(
                base,
                "quarantine" if quarantined else "fail",
                unit.unit_id,
            )
            return unit.unit_id, "quarantined" if quarantined else "failed"
        _atomic_write_bytes(
            result_path,
            pickle.dumps(
                {"unit": unit.to_record(), "payload": payload},
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )
        _append_event(base, "publish", unit.unit_id)
        context.cleanup()
        # A unit that failed on earlier attempts but succeeded now is not
        # a failure: keep the coverage report clean.
        _clear_unit_failure(base, unit.unit_id)
    finally:
        _release_claim(claim_path)
    return unit.unit_id, "done"


# ------------------------------------------------------------------- runner


class PartialArtifactResult:
    """A folded artifact missing some quarantined units, plus its coverage.

    Wraps the spec's folded result (built from the completed units only)
    and prepends an explicit coverage report to :meth:`render`, so a
    degraded report can never be mistaken for a complete one.  Attribute
    access delegates to the wrapped result, which keeps dependent folds
    working (Figure 5 reads ``.comparisons`` off Table 1 whether or not
    Table 1 is partial).
    """

    def __init__(
        self,
        result: Any,
        artifact: str,
        total_units: int,
        completed_units: int,
        quarantined: Sequence[dict],
    ) -> None:
        self._result = result
        self._artifact = artifact
        self._total_units = total_units
        self._completed_units = completed_units
        self._quarantined = list(quarantined)

    @property
    def result(self) -> Any:
        return self._result

    @property
    def quarantined(self) -> List[dict]:
        return list(self._quarantined)

    def coverage_report(self) -> str:
        lines = [
            f"!! PARTIAL RESULT: {self._completed_units}/{self._total_units} "
            f"units folded; {len(self._quarantined)} quarantined:"
        ]
        lines.extend(
            f"!!   {_failure_summary_line(record)}"
            for record in self._quarantined
        )
        return "\n".join(lines)

    def render(self) -> str:
        return self.coverage_report() + "\n\n" + self._result.render()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._result, name)


class ExperimentRunner:
    """Sharded executor for registry artifacts over one run directory.

    One instance owns one run directory.  :meth:`run` creates (or resumes)
    the manifest covering the selected artifacts plus their dependency
    closure, executes every pending unit over ``workers`` processes with
    per-unit claims and checkpoints, folds each artifact as soon as its
    units complete (streaming the rendered section through ``on_result``),
    and returns the folded results by artifact name.

    Several hosts may point runners at one shared ``run_dir``: create the
    run once, then start every other host with ``resume=True`` (CLI:
    ``--resume``).  The per-unit claim files keep the hosts from executing
    the same unit twice; a host that dies mid-unit loses its claim after
    ``claim_lease_seconds`` and a peer takes the unit over from its last
    checkpoint.
    """

    def __init__(
        self,
        run_dir: os.PathLike,
        scale: ExperimentScale,
        artifacts: Optional[Sequence[str]] = None,
        checkpoint_interval: int = 25,
        claim_lease_seconds: float = 900.0,
        claim_poll_seconds: float = 2.0,
        replay_trace: Optional[str] = None,
        profile: bool = False,
        broker_policy: Optional[BrokerPolicy] = None,
        max_unit_attempts: int = 3,
    ) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.scale = scale
        self.artifacts = list(artifacts) if artifacts is not None else list(
            DEFAULT_ARTIFACTS
        )
        self.specs = resolve_artifacts(self.artifacts)
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        if claim_lease_seconds <= 0:
            raise ValueError("claim_lease_seconds must be positive")
        if max_unit_attempts < 1:
            raise ValueError("max_unit_attempts must be at least 1")
        self.checkpoint_interval = checkpoint_interval
        self.claim_lease_seconds = claim_lease_seconds
        self.claim_poll_seconds = claim_poll_seconds
        self.replay_trace = replay_trace
        self.max_unit_attempts = max_unit_attempts
        # Permanently failed measurements dead-letter into the run's failed/
        # directory unless the policy already names a destination.
        if broker_policy is not None and broker_policy.dead_letter_path is None:
            broker_policy = dataclasses.replace(
                broker_policy,
                dead_letter_path=str(
                    self.run_dir / "failed" / "dead-letters.jsonl"
                ),
            )
        self.broker_policy = broker_policy
        # Profiles live inside the run dir, next to the results they explain.
        self.profile_dir: Optional[str] = (
            str(self.run_dir / "profile") if profile else None
        )
        # Each host walks the open units in its own deterministic
        # permutation, so peers sharing a run directory spread across the
        # manifest instead of racing claim-by-claim at a common frontier.
        self._claim_order_seed = int.from_bytes(
            sha256(_host_tag().encode("utf-8")).digest()[:8], "big"
        )

    # ------------------------------------------------------------ queue state

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.run_dir / "manifest.jsonl"

    def _result_path(self, unit: WorkUnit) -> pathlib.Path:
        return self.run_dir / "results" / f"{unit.unit_id}.pkl"

    def prepare(self, resume: bool = False) -> RunManifest:
        """Create the run directory and manifest, or validate an existing one.

        A fresh directory is always fine.  An existing manifest requires
        ``resume=True`` (guarding against accidentally pointing a new
        experiment at an old queue) and must fingerprint-match the current
        scale and artifact selection (guarding against silently mixing
        results from different experiments in one directory).
        """
        manifest = RunManifest.build(self.scale, self.specs)
        if self.manifest_path.exists():
            if not resume:
                raise RunnerError(
                    f"{self.run_dir} already holds a run; pass resume=True "
                    "(CLI: --resume) to continue it, or choose a fresh --run-dir"
                )
            existing = RunManifest.read(self.manifest_path)
            if existing.fingerprint != manifest.fingerprint:
                raise RunnerError(
                    f"{self.run_dir} was created for a different experiment "
                    f"configuration (fingerprint {existing.fingerprint} != "
                    f"{manifest.fingerprint}); refusing to mix results"
                )
            # The failed/ directory postdates early run layouts; create it
            # so failure recording works on resumed legacy directories.
            (self.run_dir / "failed").mkdir(parents=True, exist_ok=True)
            # A predecessor killed mid-append may have left a torn final
            # journal line; cut it before this run appends to the file.
            _recover_journal(self.run_dir)
            return existing
        for sub in ("results", "checkpoints", "progress", "claims", "log",
                    "failed"):
            (self.run_dir / sub).mkdir(parents=True, exist_ok=True)
        manifest.write(self.manifest_path, self.scale, self.artifacts)
        return manifest

    def pending_units(
        self, manifest: Optional[RunManifest] = None
    ) -> List[WorkUnit]:
        """Units without a published result, in manifest order."""
        if manifest is None:
            manifest = RunManifest.read(self.manifest_path)
        return [
            unit for unit in manifest.units if not self._result_path(unit).exists()
        ]

    def quarantined_units(
        self, manifest: Optional[RunManifest] = None
    ) -> List[WorkUnit]:
        """Units quarantined after exhausting their attempts, manifest order."""
        if manifest is None:
            manifest = RunManifest.read(self.manifest_path)
        return [
            unit
            for unit in manifest.units
            if not self._result_path(unit).exists()
            and _unit_is_quarantined(
                self.run_dir, unit.unit_id, self.max_unit_attempts
            )
        ]

    def failure_records(self, units: Sequence[WorkUnit]) -> List[dict]:
        """The ``failed/<unit>.json`` records for ``units`` (existing ones)."""
        records = (
            _load_failure_record(self.run_dir, unit.unit_id) for unit in units
        )
        return [record for record in records if record is not None]

    # -------------------------------------------------------------- execution

    def run(
        self,
        workers: int = 1,
        resume: bool = False,
        progress: Optional[Callable[[str], None]] = None,
        progress_interval: float = 10.0,
        on_result: Optional[Callable[[ExperimentSpec, Any], None]] = None,
    ) -> Dict[str, Any]:
        """Execute every pending unit, fold every artifact, return results.

        ``workers == 1`` executes units in-process (still claiming and
        checkpointing); larger values fan the units out over a process
        pool.  ``progress`` receives human-readable status lines; pass
        ``print`` — or leave ``None`` for silence.  ``on_result`` fires
        with ``(spec, folded_result)`` as each artifact completes.
        """
        if workers < 1:
            raise ValueError("workers must be at least 1")
        manifest = self.prepare(resume=resume)
        say = progress if progress is not None else (lambda line: None)
        total = len(manifest.units)
        state = {"total": total, "started": time.monotonic()}
        say(
            f"run {self.run_dir}: {total} units across "
            f"{len(self.specs)} artifact(s) "
            f"({total - len(self.pending_units(manifest))} already complete, "
            f"{workers} worker{'s' if workers != 1 else ''})"
        )
        units_by_artifact: Dict[str, List[WorkUnit]] = {}
        for unit in manifest.units:
            units_by_artifact.setdefault(unit.artifact, []).append(unit)
        results: Dict[str, Any] = {}
        for index, spec in enumerate(self.specs):
            units = units_by_artifact.get(spec.name, [])
            later_units = [
                unit
                for later in self.specs[index + 1 :]
                for unit in units_by_artifact.get(later.name, [])
            ]
            self._execute_artifact(
                spec, units, later_units, workers, say, state, progress_interval
            )
            completed = [
                unit for unit in units if self._result_path(unit).exists()
            ]
            quarantined = [
                unit for unit in units if unit not in completed
            ]
            results[spec.name] = self._fold_artifact(spec, completed, results)
            if quarantined:
                # Graceful degradation: fold what completed, but wrap the
                # result so the report carries an explicit coverage section
                # instead of passing a partial fold off as complete.
                results[spec.name] = PartialArtifactResult(
                    results[spec.name],
                    spec.name,
                    total_units=len(units),
                    completed_units=len(completed),
                    quarantined=self.failure_records(quarantined),
                )
                say(
                    f"  artifact {spec.name}: folded PARTIAL "
                    f"({len(completed)}/{len(units)} unit(s), "
                    f"{len(quarantined)} quarantined)"
                )
            else:
                say(f"  artifact {spec.name}: folded ({len(units)} unit(s))")
            if on_result is not None:
                on_result(spec, results[spec.name])
        if self.profile_dir is not None:
            summary = write_profile_summary(self.profile_dir)
            if summary is not None:
                say(f"  profile summary: {summary}")
            else:
                say("  profile: no units executed on this host, nothing to merge")
        return results

    def _execute_artifact(
        self,
        spec: ExperimentSpec,
        units: Sequence[WorkUnit],
        later_units: Sequence[WorkUnit],
        workers: int,
        say: Callable[[str], None],
        state: dict,
        progress_interval: float,
    ) -> None:
        """Drive one artifact's units to completion, sharing with peers.

        Rounds of claim-and-execute alternate with polling: units claimed
        by another host are left to their owner, and the round loop exits
        only once every unit has a published result — either ours or a
        peer's.  A peer that dies mid-unit loses its claim after the lease
        and the next round takes the unit over.  While this artifact's
        remaining units are all claimed by peers, the host works *ahead*
        on later artifacts' unclaimed units instead of idling (the fold
        barrier gates only the fold, not execution).

        A unit whose execution keeps raising is retried (its attempts
        accumulate in ``failed/<unit>.json``) until it exhausts
        ``max_unit_attempts`` and quarantines; quarantined units leave
        the pending set, so a permanently broken unit degrades the
        artifact instead of hanging the run.
        """
        waiting_logged = False
        while True:
            pending = [
                u
                for u in units
                if not self._result_path(u).exists()
                and not self._unit_is_quarantined(u)
            ]
            if not pending:
                return
            # Only dispatch units that look claimable right now — checking
            # a claim file in-process is cheap, spinning a process pool up
            # every poll just to discover peers hold every claim is not.
            # (The check races benignly: the claim itself is arbitrated by
            # the atomic create inside _execute_unit.)
            executed = 0
            claimable = self._claim_order(
                [u for u in pending if self._unit_is_open(u)]
            )
            if claimable:
                executed = self._execute_round(
                    claimable, workers, say, state, progress_interval
                )
            if executed:
                waiting_logged = False
                continue
            ahead = self._claim_order(
                [
                    u
                    for u in later_units
                    if not self._result_path(u).exists()
                    and not self._unit_is_quarantined(u)
                    and self._unit_is_open(u)
                ]
            )
            if ahead and self._execute_round(
                ahead, workers, say, state, progress_interval
            ):
                continue
            if not waiting_logged:
                say(
                    f"  artifact {spec.name}: "
                    f"{len(pending)} unit(s) claimed by other hosts; waiting"
                )
                waiting_logged = True
            time.sleep(self.claim_poll_seconds)

    def _unit_is_open(self, unit: WorkUnit) -> bool:
        """True when the unit has no live claim (free, or stale takeover)."""
        claim = self.run_dir / "claims" / f"{unit.unit_id}.claim"
        return not claim.exists() or _claim_is_stale(claim, self.claim_lease_seconds)

    def _unit_is_quarantined(self, unit: WorkUnit) -> bool:
        return _unit_is_quarantined(
            self.run_dir, unit.unit_id, self.max_unit_attempts
        )

    def _claim_order(self, units: List[WorkUnit]) -> List[WorkUnit]:
        """Permute ``units`` into this host's deterministic claim order.

        Every host sees the same open units but attempts them in a
        host-specific shuffle (seeded from :func:`_host_tag`), so two
        runners sharing a directory mostly claim disjoint units instead
        of colliding on the O_EXCL create one unit at a time.  The
        permutation is a pure reordering — completion of every unit is
        unaffected, and a single-host run stays deterministic because
        results are keyed by unit, not by execution order.
        """
        if len(units) < 2:
            return units
        shuffled = list(units)
        random.Random(self._claim_order_seed).shuffle(shuffled)
        return shuffled

    def _execute_round(
        self,
        pending: Sequence[WorkUnit],
        workers: int,
        say: Callable[[str], None],
        state: dict,
        progress_interval: float,
    ) -> int:
        """One claim-and-execute pass over ``pending`` (units may belong
        to different artifacts — each resolves its spec by name); returns
        how many units this invocation actually ran (claimed elsewhere →
        0).  Failed and quarantined attempts count as activity — they
        advanced the unit's attempt history — so the caller re-plans
        immediately instead of sleeping on the claim-poll interval."""
        executed = 0
        active = ("done", "failed", "quarantined")
        if workers == 1:
            for unit in pending:
                _, status = _execute_unit(
                    str(self.run_dir),
                    unit.artifact,
                    self.scale,
                    unit.to_record(),
                    self.checkpoint_interval,
                    self.claim_lease_seconds,
                    self.replay_trace,
                    self.profile_dir,
                    self.broker_policy,
                    self.max_unit_attempts,
                )
                if status in ("done", "already"):
                    say(self._status_line(state))
                elif status in ("failed", "quarantined"):
                    say(f"  unit {unit.unit_id}: attempt failed ({status})")
                executed += status in active
            return executed
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {
                pool.submit(
                    _execute_unit,
                    str(self.run_dir),
                    unit.artifact,
                    self.scale,
                    unit.to_record(),
                    self.checkpoint_interval,
                    self.claim_lease_seconds,
                    self.replay_trace,
                    self.profile_dir,
                    self.broker_policy,
                    self.max_unit_attempts,
                ): unit
                for unit in pending
            }
            outstanding = set(futures)
            try:
                while outstanding:
                    finished, outstanding = wait(
                        outstanding,
                        timeout=progress_interval,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in finished:
                        # Unit execution errors come back as "failed"/
                        # "quarantined" statuses; .result() re-raises only
                        # infrastructure failures (a dead worker process).
                        _, status = future.result()
                        executed += status in active
                    if finished or outstanding:
                        say(self._status_line(state))
            except BaseException:
                # Fail fast: without this, leaving the executor context
                # would silently run every queued unit to completion before
                # the error surfaces — hours of doomed compute at paper
                # scale.  (Checkpoints and published results survive, so a
                # fixed-and-resumed run loses nothing.)
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return executed

    def _status_line(self, state: dict) -> str:
        """One progress line: units, in-flight example counts, elapsed, ETA.

        The completed count comes from the results directory, so units
        published by peer hosts show up too.
        """
        total = state["total"]
        results_dir = self.run_dir / "results"
        done = (
            len(list(results_dir.glob("*.pkl"))) if results_dir.is_dir() else 0
        )
        elapsed = time.monotonic() - state["started"]
        inflight = []
        progress_dir = self.run_dir / "progress"
        if progress_dir.is_dir():
            for path in progress_dir.glob("*.json"):
                try:
                    record = json.loads(path.read_text("utf-8"))
                    inflight.append(
                        (int(record.get("examples", 0)), int(record.get("target", 0)))
                    )
                except (OSError, ValueError):
                    continue
        # ETA from whole-unit completion rate plus fractional credit for
        # in-flight learner units (their progress files report examples).
        fractional = sum(
            examples / target for examples, target in inflight if target > 0
        )
        effective = done + fractional
        if effective > 0 and elapsed > 0 and total > done:
            eta = (total - effective) * (elapsed / effective)
            eta_text = f", ETA {eta / 60.0:.1f} min"
        else:
            eta_text = ""
        inflight_text = (
            f", in flight {sum(e for e, _ in inflight)} examples"
            if inflight
            else ""
        )
        return (
            f"  units {done}/{total}{inflight_text}, "
            f"elapsed {elapsed / 60.0:.1f} min{eta_text}"
        )

    # ------------------------------------------------------------------ merge

    def _load_payload(self, unit: WorkUnit) -> Any:
        with open(self._result_path(unit), "rb") as handle:
            return pickle.load(handle)["payload"]

    def _fold_artifact(
        self,
        spec: ExperimentSpec,
        units: Sequence[WorkUnit],
        results: Dict[str, Any],
    ) -> Any:
        """Fold one artifact from its published unit payloads; ``results``
        must already hold every artifact in ``spec.depends_on``."""
        payloads = [(unit, self._load_payload(unit)) for unit in units]
        deps = {name: results[name] for name in spec.depends_on}
        return spec.fold(self.scale, payloads, deps)

    def merge(self, manifest: Optional[RunManifest] = None) -> Dict[str, Any]:
        """Fold every artifact from the completed results on disk.

        Raises :class:`RunnerError` when any unit is missing a result for
        a reason other than quarantine — folding a merely *incomplete* run
        would silently bias averaged curves.  Quarantined units (execution
        failed ``max_unit_attempts`` times) are the explicit exception:
        their artifacts fold from the completed units and come back
        wrapped in :class:`PartialArtifactResult`, whose rendering leads
        with the coverage report.
        """
        if manifest is None:
            manifest = RunManifest.read(self.manifest_path)
        missing = self.pending_units(manifest)
        quarantined_ids = {
            unit.unit_id for unit in self.quarantined_units(manifest)
        }
        incomplete = [
            unit for unit in missing if unit.unit_id not in quarantined_ids
        ]
        if incomplete:
            raise RunnerError(
                f"cannot merge {self.run_dir}: {len(incomplete)} unit(s) "
                f"incomplete (first: {incomplete[0].unit_id})"
            )
        units_by_artifact: Dict[str, List[WorkUnit]] = {}
        for unit in manifest.units:
            units_by_artifact.setdefault(unit.artifact, []).append(unit)
        results: Dict[str, Any] = {}
        for spec in self.specs:
            units = units_by_artifact.get(spec.name, [])
            completed = [
                unit for unit in units if self._result_path(unit).exists()
            ]
            results[spec.name] = self._fold_artifact(spec, completed, results)
            if len(completed) < len(units):
                results[spec.name] = PartialArtifactResult(
                    results[spec.name],
                    spec.name,
                    total_units=len(units),
                    completed_units=len(completed),
                    quarantined=self.failure_records(
                        [unit for unit in units if unit not in completed]
                    ),
                )
        return results


def run_paper_run(
    scale: ExperimentScale,
    run_dir: os.PathLike,
    artifacts: Optional[Sequence[str]] = None,
    workers: int = 1,
    resume: bool = False,
    repetitions: Optional[int] = None,
    checkpoint_interval: int = 25,
    progress: Optional[Callable[[str], None]] = None,
    section_sink: Optional[Callable[[str, str], None]] = None,
    replay_trace: Optional[str] = None,
    profile: bool = False,
    broker_policy: Optional[BrokerPolicy] = None,
    max_unit_attempts: int = 3,
) -> str:
    """Drive registry artifacts through the sharded backend; return the report.

    ``artifacts`` defaults to the consolidated report
    (:data:`~repro.experiments.registry.DEFAULT_ARTIFACTS`); any registered
    artifact name — including the ablation specs — is accepted.  Each
    artifact's rendered section goes to ``section_sink`` as soon as it
    folds (dependency-only artifacts are computed but not rendered), and
    the full report is returned at the end.  ``replay_trace`` points every
    unit's measurement broker at a recorded
    :class:`~repro.measurement.broker.ReplayTrace` directory, so matching
    measurements are served from disk instead of re-profiled.  ``profile``
    wraps every unit in cProfile and leaves per-unit dumps plus a merged
    top-25 summary under ``<run_dir>/profile/`` (see
    :mod:`repro.experiments.profiling`).

    ``broker_policy`` arms the fault-tolerance chain (retries, deadlines,
    chaos injection — see :class:`~repro.measurement.faults.BrokerPolicy`)
    around every unit's measurements, and ``max_unit_attempts`` bounds how
    often a failing unit is retried before it is quarantined to
    ``failed/<unit>.json``.  A run with quarantined units still completes:
    affected artifacts fold from the units that succeeded and the report
    ends with a "Quarantined units" section enumerating what is missing.
    """
    if repetitions is not None:
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        scale = dataclasses.replace(scale, repetitions=repetitions)
    selected = list(artifacts) if artifacts is not None else list(DEFAULT_ARTIFACTS)
    runner = ExperimentRunner(
        run_dir,
        scale,
        artifacts=selected,
        checkpoint_interval=checkpoint_interval,
        replay_trace=replay_trace,
        profile=profile,
        broker_policy=broker_policy,
        max_unit_attempts=max_unit_attempts,
    )
    say = progress if progress is not None else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    header = (
        f"Paper run (scale: {scale.name}, benchmarks: "
        f"{', '.join(scale.benchmarks)}, repetitions: {scale.repetitions}, "
        f"artifacts: {', '.join(selected)}, run dir: {run_dir})"
    )
    sections = [header]
    if section_sink is not None:
        section_sink("header", header)
    requested = set(selected)

    def on_result(spec: ExperimentSpec, result: Any) -> None:
        if spec.name not in requested:
            return
        text = result.render()
        sections.append(text)
        if section_sink is not None:
            section_sink(spec.name, text)

    runner.run(workers=workers, resume=resume, progress=say, on_result=on_result)
    quarantined = runner.quarantined_units()
    if quarantined:
        lines = [
            "Quarantined units",
            "-----------------",
            f"{len(quarantined)} unit(s) failed {runner.max_unit_attempts} "
            "time(s) and were excluded from the folds above (full attempt "
            "histories in failed/<unit>.json):",
        ]
        lines.extend(
            f"  - {_failure_summary_line(record)}"
            for record in runner.failure_records(quarantined)
        )
        text = "\n".join(lines)
        sections.append(text)
        if section_sink is not None:
            section_sink("quarantine", text)
    return "\n\n".join(sections)
