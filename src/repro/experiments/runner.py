"""Sharded, checkpointed experiment backend for paper-scale runs.

The paper's headline evaluation — every SPAPT benchmark × three sampling
plans × ten repetitions at 2 500 training examples each — is hours of
compute even with the batched SMC kernel, and a single crash near the end
of a monolithic ``compare_sampling_plans_suite`` call used to throw all of
it away.  This module decomposes the suite into order-independent
**work units** (one ``benchmark × plan × repetition`` learner run each) and
executes them from a persistent on-disk queue:

* ``<run_dir>/manifest.jsonl`` — the task queue: a header fingerprinting
  the experiment configuration plus one record per work unit, written once
  when the run is created and validated on every resume (a manifest created
  for a different configuration refuses to resume rather than silently
  mixing results);
* ``<run_dir>/results/<unit>.pkl`` — one atomically written file per
  completed unit (the unit's :class:`~repro.core.learner.LearningResult`
  with the model stripped); a unit with a result file is never re-run;
* ``<run_dir>/checkpoints/<unit>.pkl`` — the in-flight unit's most recent
  :class:`~repro.core.learner.LearnerCheckpoint`, refreshed atomically
  every ``checkpoint_interval`` training examples and deleted when the unit
  completes.  A killed run resumes from the last checkpoint instead of
  restarting the unit, and the resumed trajectory is bit-identical to the
  uninterrupted one (pinned by ``tests/test_runner.py``).

Units are seeded exactly like the process-pool schedule of
:func:`repro.core.comparison.compare_sampling_plans_suite` (each unit
rebuilds its benchmark and held-out test set from the repetition's
deterministic seed), so a sharded run merges to the same comparisons the
pool backend produces, and the merge feeds the existing
``reporting``/``curves`` aggregation unchanged.

``run_all --paper-run`` drives the full paper configuration through
:func:`run_paper_run`; :class:`ExperimentRunner` is the programmatic
surface for anything in between (smoke-scale resumability tests, partial
benchmark subsets, multi-invocation runs sharing one queue directory).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.acquisition import AcquisitionFunction, ALCAcquisition
from ..core.comparison import ComparisonConfig, PlanComparison, _assemble
from ..core.evaluation import build_test_set
from ..core.learner import ActiveLearner, LearnerCheckpoint, LearningResult
from ..core.plans import SamplingPlan, standard_plans
from ..spapt.suite import BENCHMARK_SPECS, get_benchmark

__all__ = [
    "WorkUnit",
    "RunManifest",
    "RunnerError",
    "ExperimentRunner",
    "run_paper_run",
]

_MANIFEST_VERSION = 1


class RunnerError(RuntimeError):
    """A run directory cannot be created, resumed or merged."""


@dataclass(frozen=True)
class WorkUnit:
    """One independent learner run: a (benchmark × plan × repetition) cell."""

    benchmark: str
    plan_name: str
    plan_index: int
    repetition: int

    @property
    def unit_id(self) -> str:
        """Filesystem-safe identifier, stable across runs."""
        plan_slug = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in self.plan_name
        )
        return f"{self.benchmark}--{plan_slug}--r{self.repetition:03d}"

    def to_record(self) -> dict:
        return {
            "kind": "unit",
            "benchmark": self.benchmark,
            "plan_name": self.plan_name,
            "plan_index": self.plan_index,
            "repetition": self.repetition,
        }

    @classmethod
    def from_record(cls, record: dict) -> "WorkUnit":
        return cls(
            benchmark=record["benchmark"],
            plan_name=record["plan_name"],
            plan_index=int(record["plan_index"]),
            repetition=int(record["repetition"]),
        )


def _atomic_write_bytes(path: pathlib.Path, payload: bytes) -> None:
    """Write ``payload`` so that ``path`` is either absent, old or complete.

    The temporary file lives in the target directory (same filesystem) and
    carries the writer's pid, so concurrent workers never collide and a
    crash mid-write leaves at worst a stray ``*.tmp`` behind.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _config_fingerprint(
    config: ComparisonConfig,
    plans: Sequence[SamplingPlan],
    benchmarks: Sequence[str],
    acquisition: Optional[AcquisitionFunction] = None,
) -> str:
    """Digest identifying the experiment a run directory belongs to.

    The acquisition enters by class identity (its instances have no stable
    repr), so resuming with a different acquisition function is refused
    like any other configuration change.
    """
    acquisition_tag = (
        f"{type(acquisition).__module__}.{type(acquisition).__qualname__}"
        if acquisition is not None
        else ""
    )
    blob = repr(
        (config, tuple(plans), tuple(benchmarks), acquisition_tag)
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """The persistent task queue: configuration fingerprint plus work units."""

    fingerprint: str
    units: Tuple[WorkUnit, ...]

    @classmethod
    def build(
        cls,
        benchmarks: Sequence[str],
        plans: Sequence[SamplingPlan],
        config: ComparisonConfig,
        acquisition: Optional[AcquisitionFunction] = None,
    ) -> "RunManifest":
        units = tuple(
            WorkUnit(
                benchmark=name,
                plan_name=plan.name,
                plan_index=plan_index,
                repetition=repetition,
            )
            for name in benchmarks
            for repetition in range(config.repetitions)
            for plan_index, plan in enumerate(plans)
        )
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            # Two plan names that differ only in slugged-away characters
            # would share result/checkpoint paths and silently drop units.
            raise RunnerError(
                "plan names collide after filesystem slugging; rename the plans"
            )
        return cls(
            fingerprint=_config_fingerprint(config, plans, benchmarks, acquisition),
            units=units,
        )

    def write(self, path: pathlib.Path) -> None:
        lines = [
            json.dumps(
                {
                    "kind": "header",
                    "version": _MANIFEST_VERSION,
                    "fingerprint": self.fingerprint,
                    "units": len(self.units),
                }
            )
        ]
        lines.extend(json.dumps(unit.to_record()) for unit in self.units)
        _atomic_write_bytes(path, ("\n".join(lines) + "\n").encode("utf-8"))

    @classmethod
    def read(cls, path: pathlib.Path) -> "RunManifest":
        units: List[WorkUnit] = []
        fingerprint: Optional[str] = None
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("kind") == "header":
                    if record.get("version") != _MANIFEST_VERSION:
                        raise RunnerError(
                            f"manifest {path} has version {record.get('version')!r}; "
                            f"this code reads version {_MANIFEST_VERSION}"
                        )
                    fingerprint = record["fingerprint"]
                elif record.get("kind") == "unit":
                    units.append(WorkUnit.from_record(record))
        if fingerprint is None:
            raise RunnerError(f"manifest {path} has no header record")
        return cls(fingerprint=fingerprint, units=tuple(units))


def _execute_unit(
    run_dir: str,
    unit: WorkUnit,
    plan: SamplingPlan,
    config: ComparisonConfig,
    acquisition: AcquisitionFunction,
    checkpoint_interval: int,
) -> Tuple[str, int]:
    """Run one work unit to completion (worker-process entry point).

    Rebuilds the benchmark and the repetition's held-out test set from their
    deterministic seeds (matching ``compare_sampling_plans_suite``'s pool
    schedule exactly), resumes from the unit's checkpoint when one exists —
    restoring the benchmark's stateful noise components only *after* the
    test set is rebuilt, since building it advances the drift walk — and
    atomically publishes the result.  Returns ``(unit_id, examples_run)``.
    """
    base = pathlib.Path(run_dir)
    result_path = base / "results" / f"{unit.unit_id}.pkl"
    checkpoint_path = base / "checkpoints" / f"{unit.unit_id}.pkl"
    progress_path = base / "progress" / f"{unit.unit_id}.json"
    if result_path.exists():
        return unit.unit_id, 0

    benchmark = get_benchmark(unit.benchmark)
    test_rng = np.random.default_rng(config.seed + 7919 * unit.repetition)
    test_set = build_test_set(
        benchmark,
        size=config.test_size,
        observations=config.test_observations,
        rng=test_rng,
    )

    resume: Optional[LearnerCheckpoint] = None
    if checkpoint_path.exists():
        try:
            with open(checkpoint_path, "rb") as handle:
                resume = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            resume = None  # corrupt/stale checkpoint: restart the unit
    if resume is not None:
        benchmark.restore_noise_model(resume.noise_model)

    run_rng = np.random.default_rng(
        config.seed + 104729 * unit.repetition + 1299709 * unit.plan_index + 1
    )
    learner = ActiveLearner(
        benchmark,
        plan=plan,
        acquisition=acquisition,
        config=config.learner,
        rng=run_rng,
    )

    def sink(checkpoint: LearnerCheckpoint) -> None:
        _atomic_write_bytes(
            checkpoint_path,
            pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL),
        )
        _atomic_write_bytes(
            progress_path,
            json.dumps(
                {
                    "examples": checkpoint.training_examples,
                    "target": config.learner.max_training_examples,
                }
            ).encode("utf-8"),
        )

    result = learner.run(
        test_set,
        resume=resume,
        checkpoint_interval=checkpoint_interval,
        checkpoint_sink=sink,
    )
    payload = {
        "unit": unit.to_record(),
        "result": dataclasses.replace(result, model=None),
    }
    _atomic_write_bytes(
        result_path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    )
    for stale in (checkpoint_path, progress_path):
        try:
            stale.unlink()
        except OSError:
            pass
    return unit.unit_id, result.training_examples


class ExperimentRunner:
    """Sharded executor for a suite of (benchmark × plan × repetition) runs.

    One instance owns one run directory.  :meth:`run` creates (or resumes)
    the manifest, executes every pending unit over ``workers`` processes
    with per-unit checkpointing, and returns the merged per-benchmark
    :class:`~repro.core.comparison.PlanComparison` dictionary — the same
    structure ``compare_sampling_plans_suite`` returns, so Table 1 /
    Figure 5 / Figure 6 aggregation applies unchanged.
    """

    def __init__(
        self,
        run_dir: os.PathLike,
        benchmarks: Sequence[str],
        config: Optional[ComparisonConfig] = None,
        plans: Optional[Sequence[SamplingPlan]] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        checkpoint_interval: int = 25,
    ) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.benchmarks = list(benchmarks)
        unknown = [name for name in self.benchmarks if name not in BENCHMARK_SPECS]
        if unknown:
            raise KeyError(f"unknown benchmarks: {', '.join(unknown)}")
        self.config = config if config is not None else ComparisonConfig()
        self.plans = list(plans) if plans is not None else standard_plans()
        if not self.plans:
            raise ValueError("at least one sampling plan is required")
        self.acquisition = (
            acquisition if acquisition is not None else ALCAcquisition()
        )
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        self.checkpoint_interval = checkpoint_interval

    # ------------------------------------------------------------ queue state

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.run_dir / "manifest.jsonl"

    def _result_path(self, unit: WorkUnit) -> pathlib.Path:
        return self.run_dir / "results" / f"{unit.unit_id}.pkl"

    def prepare(self, resume: bool = False) -> RunManifest:
        """Create the run directory and manifest, or validate an existing one.

        A fresh directory is always fine.  An existing manifest requires
        ``resume=True`` (guarding against accidentally pointing a new
        experiment at an old queue) and must fingerprint-match the current
        configuration (guarding against silently mixing results from
        different experiments in one directory).
        """
        manifest = RunManifest.build(
            self.benchmarks, self.plans, self.config, self.acquisition
        )
        if self.manifest_path.exists():
            if not resume:
                raise RunnerError(
                    f"{self.run_dir} already holds a run; pass resume=True "
                    "(CLI: --resume) to continue it, or choose a fresh --run-dir"
                )
            existing = RunManifest.read(self.manifest_path)
            if existing.fingerprint != manifest.fingerprint:
                raise RunnerError(
                    f"{self.run_dir} was created for a different experiment "
                    f"configuration (fingerprint {existing.fingerprint} != "
                    f"{manifest.fingerprint}); refusing to mix results"
                )
            return existing
        for sub in ("results", "checkpoints", "progress"):
            (self.run_dir / sub).mkdir(parents=True, exist_ok=True)
        manifest.write(self.manifest_path)
        return manifest

    def pending_units(self, manifest: Optional[RunManifest] = None) -> List[WorkUnit]:
        """Units without a published result, in manifest order."""
        if manifest is None:
            manifest = RunManifest.read(self.manifest_path)
        return [
            unit for unit in manifest.units if not self._result_path(unit).exists()
        ]

    # -------------------------------------------------------------- execution

    def run(
        self,
        workers: int = 1,
        resume: bool = False,
        progress: Optional[Callable[[str], None]] = None,
        progress_interval: float = 10.0,
    ) -> Dict[str, PlanComparison]:
        """Execute every pending unit, then merge and return the comparisons.

        ``workers == 1`` executes units in-process (still checkpointing);
        larger values fan the units out over a process pool.  ``progress``
        receives human-readable status lines (unit completions and periodic
        ETA summaries); pass ``print`` — or leave ``None`` for silence.
        """
        if workers < 1:
            raise ValueError("workers must be at least 1")
        manifest = self.prepare(resume=resume)
        pending = self.pending_units(manifest)
        total = len(manifest.units)
        done = total - len(pending)
        say = progress if progress is not None else (lambda line: None)
        say(
            f"run {self.run_dir}: {total} units "
            f"({done} already complete, {len(pending)} pending, "
            f"{workers} worker{'s' if workers != 1 else ''})"
        )
        started = time.monotonic()
        if pending:
            if workers == 1:
                for unit in pending:
                    _execute_unit(
                        str(self.run_dir),
                        unit,
                        self.plans[unit.plan_index],
                        self.config,
                        self.acquisition,
                        self.checkpoint_interval,
                    )
                    done += 1
                    say(self._status_line(done, total, started))
            else:
                self._run_pool(pending, workers, done, total, started, say,
                               progress_interval)
        say(f"run {self.run_dir}: all {total} units complete; merging")
        return self.merge(manifest)

    def _run_pool(
        self,
        pending: Sequence[WorkUnit],
        workers: int,
        done: int,
        total: int,
        started: float,
        say: Callable[[str], None],
        progress_interval: float,
    ) -> None:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {
                pool.submit(
                    _execute_unit,
                    str(self.run_dir),
                    unit,
                    self.plans[unit.plan_index],
                    self.config,
                    self.acquisition,
                    self.checkpoint_interval,
                ): unit
                for unit in pending
            }
            outstanding = set(futures)
            try:
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, timeout=progress_interval,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in finished:
                        future.result()  # propagate worker failures
                        done += 1
                    if finished or outstanding:
                        say(self._status_line(done, total, started))
            except BaseException:
                # Fail fast: without this, leaving the executor context
                # would silently run every queued unit to completion before
                # the error surfaces — hours of doomed compute at paper
                # scale.  (Checkpoints and published results survive, so a
                # fixed-and-resumed run loses nothing.)
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    def _status_line(self, done: int, total: int, started: float) -> str:
        """One progress line: units, in-flight example counts, elapsed, ETA."""
        elapsed = time.monotonic() - started
        target = self.config.learner.max_training_examples
        inflight_examples = 0
        progress_dir = self.run_dir / "progress"
        if progress_dir.is_dir():
            for path in progress_dir.glob("*.json"):
                try:
                    inflight_examples += int(
                        json.loads(path.read_text("utf-8")).get("examples", 0)
                    )
                except (OSError, ValueError):
                    continue
        done_examples = done * target + inflight_examples
        total_examples = total * target
        if done_examples > 0 and elapsed > 0:
            rate = done_examples / elapsed
            eta = (total_examples - done_examples) / rate
            eta_text = f", ETA {eta / 60.0:.1f} min"
        else:
            eta_text = ""
        return (
            f"  units {done}/{total}, examples ~{done_examples}/{total_examples}, "
            f"elapsed {elapsed / 60.0:.1f} min{eta_text}"
        )

    # ------------------------------------------------------------------ merge

    def merge(
        self, manifest: Optional[RunManifest] = None
    ) -> Dict[str, PlanComparison]:
        """Fold every completed unit into per-benchmark plan comparisons.

        Raises :class:`RunnerError` when any unit is missing a result —
        merging a partial run would silently bias the averaged curves.
        """
        if manifest is None:
            manifest = RunManifest.read(self.manifest_path)
        missing = self.pending_units(manifest)
        if missing:
            raise RunnerError(
                f"cannot merge {self.run_dir}: {len(missing)} unit(s) incomplete "
                f"(first: {missing[0].unit_id})"
            )
        grouped: Dict[str, Dict[str, List[Tuple[int, LearningResult]]]] = {
            name: {plan.name: [] for plan in self.plans} for name in self.benchmarks
        }
        for unit in manifest.units:
            with open(self._result_path(unit), "rb") as handle:
                payload = pickle.load(handle)
            grouped[unit.benchmark][unit.plan_name].append(
                (unit.repetition, payload["result"])
            )
        comparisons: Dict[str, PlanComparison] = {}
        for name in self.benchmarks:
            per_plan = {
                plan_name: [
                    result for _, result in sorted(runs, key=lambda item: item[0])
                ]
                for plan_name, runs in grouped[name].items()
            }
            comparisons[name] = _assemble(name, self.plans, per_plan)
        return comparisons


def run_paper_run(
    scale,
    run_dir: os.PathLike,
    workers: int = 1,
    resume: bool = False,
    repetitions: Optional[int] = None,
    checkpoint_interval: int = 25,
    progress: Optional[Callable[[str], None]] = None,
) -> str:
    """Drive the paper's full evaluation through the sharded backend.

    ``scale`` is an :class:`~repro.experiments.config.ExperimentScale`
    (``ExperimentScale.paper()`` for the real thing; the smoke scale makes
    this a fast end-to-end test of the backend).  Executes — or resumes —
    the (benchmark × plan × repetition) queue under ``run_dir``, then
    merges and renders the Table 1 / Figure 5 / Figure 6 sections from the
    existing aggregation code.  Returns the rendered report.
    """
    from .figure5 import figure5_from_table1
    from .figure6 import Figure6Panel, Figure6Result
    from .table1 import table1_from_comparisons

    config = scale.comparison_config()
    if repetitions is not None:
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        config = dataclasses.replace(config, repetitions=repetitions)
    runner = ExperimentRunner(
        run_dir,
        benchmarks=scale.benchmarks,
        config=config,
        checkpoint_interval=checkpoint_interval,
    )
    say = progress if progress is not None else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    comparisons = runner.run(workers=workers, resume=resume, progress=say)
    names = list(scale.benchmarks)
    table1 = table1_from_comparisons(names, comparisons)
    panels = {
        name: Figure6Panel(
            benchmark=name, curves=comparison.curves, comparison=comparison
        )
        for name, comparison in comparisons.items()
    }
    sections = [
        (
            f"Paper run (scale: {scale.name}, benchmarks: {', '.join(names)}, "
            f"repetitions: {config.repetitions}, "
            f"examples/run: {config.learner.max_training_examples}, "
            f"run dir: {run_dir})"
        ),
        table1.render(),
        figure5_from_table1(table1).render(),
        Figure6Result(panels=panels).render(),
    ]
    return "\n\n".join(sections)
