"""cProfile plumbing for the experiment backends (``run_all --profile``).

Hot-path claims about the learner ("the SMC update dominates", "scoring is
30% of a unit") should be reproducible from the repository without ad-hoc
scripts.  ``--profile`` wraps every work unit's execution in a
:class:`cProfile.Profile` and dumps one binary stats file per unit into a
profile directory; when the run completes the driver merges them and writes
``profile.txt`` — the top functions by cumulative time across the whole
run.  The per-unit ``.prof`` files stay behind for ad-hoc drilling
(``python -m pstats <file>``).

Both execution backends thread the same directory through: the in-memory
pool of :mod:`repro.experiments.registry` and the sharded task queue of
:mod:`repro.experiments.runner` (where the directory lives inside the run
dir, next to the results it explains).  Profiles are additive across
worker processes because each unit writes its own file keyed by unit id —
no cross-process aggregation happens until the final merge.
"""

from __future__ import annotations

import cProfile
import io
import os
import pathlib
import pstats
from typing import Any, Callable, Optional

__all__ = ["profile_unit_call", "write_profile_summary", "PROFILE_TOP_N"]

#: Number of functions the merged ``profile.txt`` lists (by cumulative time).
PROFILE_TOP_N = 25


def profile_unit_call(
    profile_dir: Optional[str],
    unit_id: str,
    call: Callable[[], Any],
) -> Any:
    """Run ``call`` and, when profiling is on, dump its stats.

    With ``profile_dir`` set, executes ``call`` under :class:`cProfile`
    and writes ``<profile_dir>/<unit_id>.prof`` (binary ``pstats`` format);
    with ``None`` it is a transparent passthrough, so call sites need no
    branching.  Exceptions propagate either way — a failed unit leaves no
    partial profile behind.
    """
    if profile_dir is None:
        return call()
    path = pathlib.Path(profile_dir)
    path.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = call()
    finally:
        profiler.disable()
    profiler.dump_stats(str(path / f"{unit_id}.prof"))
    return result


def write_profile_summary(
    profile_dir: os.PathLike, top: int = PROFILE_TOP_N
) -> Optional[pathlib.Path]:
    """Merge every ``.prof`` in ``profile_dir`` into ``profile.txt``.

    Returns the summary path, or ``None`` when the directory holds no
    profiles (e.g. a resumed run where every unit was already published —
    nothing executed, nothing to profile).  The summary lists the ``top``
    functions by cumulative time over all units and workers combined.
    """
    base = pathlib.Path(profile_dir)
    dumps = sorted(base.glob("*.prof")) if base.is_dir() else []
    if not dumps:
        return None
    stats = pstats.Stats(str(dumps[0]))
    for extra in dumps[1:]:
        stats.add(str(extra))
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats("cumulative").print_stats(top)
    summary = base / "profile.txt"
    header = (
        f"Merged cProfile summary over {len(dumps)} work unit(s); "
        f"top {top} by cumulative time.\n"
        f"Per-unit binaries: {base}/<unit_id>.prof "
        f"(inspect with `python -m pstats`).\n\n"
    )
    summary.write_text(header + buffer.getvalue(), encoding="utf-8")
    return summary
