"""Shared experiment configuration: laptop-scale defaults and paper scale.

The paper's experiments use 10 000-configuration datasets, 2 500 training
instances, 500 candidates per iteration, 5 000 dynamic-tree particles and
ten repetitions of everything — weeks of simulated profiling and far more
Python time than a test run should take.  :class:`ExperimentScale` gathers
every scale knob in one place:

* :meth:`ExperimentScale.smoke` — seconds; used by the test suite.
* :meth:`ExperimentScale.laptop` — minutes; the default for the benchmark
  harness, large enough for the paper's qualitative results (orderings,
  speed-up factors) to emerge.
* :meth:`ExperimentScale.paper` — the paper's parameters, for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.comparison import ComparisonConfig
from ..core.learner import LearnerConfig
from ..spapt.suite import BENCHMARK_SPECS, benchmark_names

__all__ = ["ExperimentScale"]


@dataclass(frozen=True)
class ExperimentScale:
    """All scale knobs used by the table/figure drivers."""

    name: str
    benchmarks: Sequence[str]
    learner: LearnerConfig
    repetitions: int
    test_size: int
    test_observations: int
    dataset_configurations: int
    dataset_observations: int
    figure1_grid: int
    seed: int = 2017

    def __post_init__(self) -> None:
        unknown = [b for b in self.benchmarks if b not in BENCHMARK_SPECS]
        if unknown:
            raise KeyError(f"unknown benchmarks: {', '.join(unknown)}")
        if not self.benchmarks:
            raise ValueError("at least one benchmark is required")

    def comparison_config(self) -> ComparisonConfig:
        """The plan-comparison configuration implied by this scale."""
        return ComparisonConfig(
            learner=self.learner,
            repetitions=self.repetitions,
            test_size=self.test_size,
            test_observations=self.test_observations,
            seed=self.seed,
        )

    @classmethod
    def smoke(cls, benchmarks: Optional[Sequence[str]] = None) -> "ExperimentScale":
        """A few seconds per experiment — used by the test suite."""
        return cls(
            name="smoke",
            benchmarks=tuple(benchmarks) if benchmarks else ("mm", "adi"),
            learner=LearnerConfig(
                n_initial=4,
                seed_observations=5,
                n_candidates=20,
                max_training_examples=40,
                reference_size=15,
                evaluation_interval=8,
                tree_particles=10,
            ),
            repetitions=1,
            test_size=60,
            test_observations=5,
            dataset_configurations=60,
            dataset_observations=8,
            figure1_grid=6,
        )

    @classmethod
    def laptop(cls, benchmarks: Optional[Sequence[str]] = None) -> "ExperimentScale":
        """Minutes per experiment — the default for the benchmark harness."""
        return cls(
            name="laptop",
            benchmarks=tuple(benchmarks) if benchmarks else tuple(benchmark_names()),
            learner=LearnerConfig(
                n_initial=5,
                seed_observations=35,
                n_candidates=50,
                max_training_examples=150,
                reference_size=35,
                evaluation_interval=10,
                tree_particles=25,
            ),
            repetitions=2,
            test_size=250,
            test_observations=15,
            dataset_configurations=400,
            dataset_observations=35,
            figure1_grid=15,
        )

    @classmethod
    def paper(cls, benchmarks: Optional[Sequence[str]] = None) -> "ExperimentScale":
        """The paper's experimental scale (Sections 4.4-4.5)."""
        return cls(
            name="paper",
            benchmarks=tuple(benchmarks) if benchmarks else tuple(benchmark_names()),
            learner=LearnerConfig.paper_scale(),
            repetitions=10,
            test_size=2500,
            test_observations=35,
            dataset_configurations=10_000,
            dataset_observations=35,
            figure1_grid=30,
        )
