"""Figure 2: adi runtime versus unroll factor with a single sample per point.

The figure demonstrates that even single-sample measurements reveal the
structure of the space to a human eye: adi's runtime sits on a plateau for
small unroll factors of loop ``i1``, climbs from around a factor of 10, and
levels off at a higher plateau for large factors — despite the noise.  The
active learner exploits exactly this: points that fit the local pattern are
probably fine with one sample; points that stick out deserve more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..measurement.profiler import Profiler
from ..spapt.suite import SpaptBenchmark, get_benchmark
from .config import ExperimentScale
from .registry import ExperimentSpec, UnitContext, WorkUnit, register
from .reporting import format_table

__all__ = ["Figure2Point", "Figure2Result", "Figure2Spec", "run_figure2"]


@dataclass(frozen=True)
class Figure2Point:
    unroll_factor: int
    observed_runtime: float
    true_runtime: float


@dataclass
class Figure2Result:
    benchmark: str
    loop_parameter: str
    points: List[Figure2Point]

    @property
    def low_plateau(self) -> float:
        """Mean observed runtime over the smallest quarter of unroll factors."""
        ordered = sorted(self.points, key=lambda p: p.unroll_factor)
        quarter = max(len(ordered) // 4, 1)
        return float(np.mean([p.observed_runtime for p in ordered[:quarter]]))

    @property
    def high_plateau(self) -> float:
        """Mean observed runtime over the largest quarter of unroll factors."""
        ordered = sorted(self.points, key=lambda p: p.unroll_factor)
        quarter = max(len(ordered) // 4, 1)
        return float(np.mean([p.observed_runtime for p in ordered[-quarter:]]))

    def render(self) -> str:
        rows = [
            [p.unroll_factor, f"{p.observed_runtime:.4g}", f"{p.true_runtime:.4g}"]
            for p in sorted(self.points, key=lambda p: p.unroll_factor)
        ]
        table = format_table(
            headers=["unroll factor", "observed runtime (s)", "true mean runtime (s)"],
            rows=rows,
            title=f"Figure 2: runtime vs {self.loop_parameter} unroll factor ({self.benchmark})",
        )
        summary = (
            f"\nlow plateau ~{self.low_plateau:.3g}s, "
            f"high plateau ~{self.high_plateau:.3g}s "
            f"(ratio {self.high_plateau / self.low_plateau:.2f}x)"
        )
        return table + summary


def run_figure2(
    scale: Optional[ExperimentScale] = None,
    benchmark: Optional[SpaptBenchmark] = None,
    loop_parameter: str = "U_i1",
    max_unroll: int = 30,
) -> Figure2Result:
    """Sweep one unroll factor of adi, taking a single observation per point."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    benchmark = benchmark if benchmark is not None else get_benchmark("adi")
    rng = np.random.default_rng(scale.seed + 202)
    profiler = Profiler(benchmark, rng=rng)
    space = benchmark.search_space
    parameter_names = [p.name for p in space.parameters]
    if loop_parameter not in parameter_names:
        raise ValueError(
            f"benchmark {benchmark.name!r} has no parameter {loop_parameter!r}"
        )
    index = parameter_names.index(loop_parameter)
    parameter = space.parameters[index]
    baseline = list(space.default_configuration())
    points: List[Figure2Point] = []
    for value in parameter.values:
        if value > max_unroll:
            break
        configuration = list(baseline)
        configuration[index] = int(value)
        observed = float(profiler.measure(tuple(configuration), repetitions=1)[0])
        points.append(
            Figure2Point(
                unroll_factor=int(value),
                observed_runtime=observed,
                true_runtime=benchmark.true_runtime(tuple(configuration)),
            )
        )
    return Figure2Result(
        benchmark=benchmark.name, loop_parameter=loop_parameter, points=points
    )


class Figure2Spec(ExperimentSpec):
    """Figure 2 as a registry artifact: a single unit, because the sweep
    takes one observation per point from one sequential RNG stream."""

    name = "figure2"
    title = "Figure 2"

    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        return [WorkUnit(artifact=self.name, key=("sweep",))]

    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> Figure2Result:
        return run_figure2(scale)

    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> Figure2Result:
        (_, result), = payloads
        return result


register(Figure2Spec())


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure2().render())


if __name__ == "__main__":  # pragma: no cover
    main()
