"""Table 2: spread of measurement variance and CI/mean across benchmarks.

The paper characterises how noisy each benchmark's measurements are by
profiling its dataset (10 000 configurations x 35 observations) and
reporting, per benchmark, the min/mean/max of

* the per-configuration runtime variance,
* the 95% confidence-interval-to-mean ratio computed from 35 observations,
* the same ratio computed from only 5 observations.

The point of the table is that noise varies by orders of magnitude both
across benchmarks (``mvt`` is essentially deterministic, ``correlation`` is
extremely noisy) and across the space of a single benchmark — exactly the
situation an adaptive sampling plan exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..measurement.stats import confidence_interval_halfwidth, ci_to_mean_ratio
from ..spapt.dataset import Dataset, generate_dataset
from ..spapt.suite import get_benchmark
from .config import ExperimentScale
from .registry import ExperimentSpec, UnitContext, WorkUnit, register
from .reporting import format_scientific, format_table

__all__ = ["Table2Row", "Table2Result", "Table2Spec", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's noise-characterisation row."""

    benchmark: str
    variance_min: float
    variance_mean: float
    variance_max: float
    ci35_min: float
    ci35_mean: float
    ci35_max: float
    ci5_min: float
    ci5_mean: float
    ci5_max: float


@dataclass
class Table2Result:
    rows: List[Table2Row]
    datasets: Dict[str, Dataset]

    def to_rows(self) -> List[List[object]]:
        return [
            [
                row.benchmark,
                format_scientific(row.variance_min),
                format_scientific(row.variance_mean),
                format_scientific(row.variance_max),
                format_scientific(row.ci35_min),
                format_scientific(row.ci35_mean),
                format_scientific(row.ci35_max),
                format_scientific(row.ci5_min),
                format_scientific(row.ci5_mean),
                format_scientific(row.ci5_max),
            ]
            for row in self.rows
        ]

    def render(self) -> str:
        return format_table(
            headers=[
                "benchmark",
                "var min",
                "var mean",
                "var max",
                "35-sample CI/mean min",
                "mean",
                "max",
                "5-sample CI/mean min",
                "mean",
                "max",
            ],
            rows=self.to_rows(),
            title="Table 2: spread of variance and 95% CI relative to the mean",
        )


def _ci_ratio_for_subsample(
    observations: Sequence[float], sample_size: int, rng: np.random.Generator
) -> float:
    """CI/mean ratio of a random subsample of the stored observations."""
    values = np.asarray(observations, dtype=float)
    if sample_size >= values.size:
        sample = values
    else:
        sample = rng.choice(values, size=sample_size, replace=False)
    half = confidence_interval_halfwidth(sample)
    return ci_to_mean_ratio(float(sample.mean()), half)


def benchmark_noise_row(
    name: str, index: int, scale: ExperimentScale, small_sample: int = 5
) -> Tuple[Table2Row, Dataset]:
    """One benchmark's Table 2 row (and its profiled dataset).

    This is the Table 2 work-unit body: the RNG is seeded from the
    benchmark's *position* in the suite (``scale.seed + 31 * index``), so
    the rows are independent of execution order and a sharded run matches
    the serial sweep bit-for-bit.
    """
    benchmark = get_benchmark(name)
    rng = np.random.default_rng(scale.seed + 31 * index)
    dataset = generate_dataset(
        benchmark,
        configurations=scale.dataset_configurations,
        observations_per_configuration=scale.dataset_observations,
        rng=rng,
    )
    variances = dataset.variances()
    ci_full = []
    ci_small = []
    for entry in dataset.entries:
        observations = np.asarray(entry.observations)
        half = confidence_interval_halfwidth(observations)
        ci_full.append(ci_to_mean_ratio(float(observations.mean()), half))
        ci_small.append(_ci_ratio_for_subsample(observations, small_sample, rng))
    row = Table2Row(
        benchmark=name,
        variance_min=float(variances.min()),
        variance_mean=float(variances.mean()),
        variance_max=float(variances.max()),
        ci35_min=float(np.min(ci_full)),
        ci35_mean=float(np.mean(ci_full)),
        ci35_max=float(np.max(ci_full)),
        ci5_min=float(np.min(ci_small)),
        ci5_mean=float(np.mean(ci_small)),
        ci5_max=float(np.max(ci_small)),
    )
    return row, dataset


def run_table2(
    scale: Optional[ExperimentScale] = None,
    benchmarks: Optional[Sequence[str]] = None,
    small_sample: int = 5,
) -> Table2Result:
    """Regenerate Table 2 at the requested scale."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    names = list(benchmarks) if benchmarks is not None else list(scale.benchmarks)
    rows: List[Table2Row] = []
    datasets: Dict[str, Dataset] = {}
    for index, name in enumerate(names):
        row, dataset = benchmark_noise_row(name, index, scale, small_sample)
        rows.append(row)
        datasets[name] = dataset
    return Table2Result(rows=rows, datasets=datasets)


class Table2Spec(ExperimentSpec):
    """Table 2 as registry work units: one per benchmark (its RNG depends
    only on the benchmark's suite position, so units shard freely)."""

    name = "table2"
    title = "Table 2"

    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        return [
            WorkUnit(
                artifact=self.name,
                key=(name,),
                params={"benchmark": name, "index": index},
            )
            for index, name in enumerate(scale.benchmarks)
        ]

    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> Tuple[Table2Row, Tuple]:
        row, dataset = benchmark_noise_row(
            str(unit.params["benchmark"]), int(unit.params["index"]), scale
        )
        # Payloads must pickle: ship the entries, not the Dataset, whose
        # benchmark reference carries unpicklable memoisation caches.
        return row, dataset.entries

    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> Table2Result:
        indexed = sorted(payloads, key=lambda pair: int(pair[0].params["index"]))
        rows = [row for _, (row, _) in indexed]
        datasets = {
            str(unit.params["benchmark"]): Dataset(
                get_benchmark(str(unit.params["benchmark"])), entries
            )
            for unit, (_, entries) in indexed
        }
        return Table2Result(rows=rows, datasets=datasets)


register(Table2Spec())


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table2().render())


if __name__ == "__main__":  # pragma: no cover
    main()
