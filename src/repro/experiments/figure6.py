"""Figure 6: RMSE versus evaluation time for the three sampling plans.

Figure 6 of the paper shows, for six representative benchmarks (adi, atax,
correlation, gemver, jacobi and mvt), how the model error evolves with
cumulative profiling cost under the three plans — 35 observations, one
observation and variable observations per training point.  The qualitative
patterns it documents are:

* **adi / correlation** — noisy spaces where the single-observation plan
  plateaus at a higher error than the other two;
* **atax / bicgkernel** — quiet spaces where a single observation is enough
  and the 35-observation baseline simply wastes time;
* **gemver / dgemv3 / hessian** — large wins for the variable plan;
* **jacobi / lu / mm / mvt** — modest but consistent wins.

The driver returns the averaged curves (cost, RMSE series) for each plan so
the benchmark harness can print them and tests can assert on their shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.comparison import PlanComparison, compare_sampling_plans_suite
from ..core.curves import LearningCurve
from ..core.plans import standard_plans
from .config import ExperimentScale
from .registry import ExperimentSpec, UnitContext, WorkUnit, register
from .reporting import format_table

__all__ = [
    "Figure6Panel",
    "Figure6Result",
    "Figure6Spec",
    "run_figure6",
    "PAPER_FIGURE6_BENCHMARKS",
]

#: The six benchmarks shown in Figure 6 of the paper.
PAPER_FIGURE6_BENCHMARKS = ("adi", "atax", "correlation", "gemver", "jacobi", "mvt")


@dataclass
class Figure6Panel:
    """One sub-figure: the three learning curves of a single benchmark."""

    benchmark: str
    curves: Dict[str, LearningCurve]
    comparison: PlanComparison

    def series(self, plan_name: str) -> List[tuple]:
        """(cost_seconds, rmse) pairs for one plan's averaged curve."""
        curve = self.curves[plan_name]
        return [(p.cost_seconds, p.rmse) for p in curve.points]

    def render(self, samples: int = 8) -> str:
        rows = []
        for name, curve in self.curves.items():
            points = curve.points
            step = max(len(points) // samples, 1)
            sampled = points[::step]
            for point in sampled:
                rows.append([name, f"{point.cost_seconds:.4g}", f"{point.rmse:.4g}"])
        return format_table(
            headers=["plan", "evaluation time (s)", "RMSE (s)"],
            rows=rows,
            title=f"Figure 6 panel: {self.benchmark}",
        )


@dataclass
class Figure6Result:
    panels: Dict[str, Figure6Panel]

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels.values())


def run_figure6(
    scale: Optional[ExperimentScale] = None,
    benchmarks: Optional[Sequence[str]] = None,
    workers: int = 1,
) -> Figure6Result:
    """Regenerate the Figure 6 learning curves at the requested scale."""
    scale = scale if scale is not None else ExperimentScale.laptop()
    if benchmarks is None:
        benchmarks = [b for b in PAPER_FIGURE6_BENCHMARKS if b in scale.benchmarks]
        if not benchmarks:
            benchmarks = list(scale.benchmarks)
    comparisons = compare_sampling_plans_suite(
        list(benchmarks),
        plans=standard_plans(),
        config=scale.comparison_config(),
        workers=workers,
    )
    panels: Dict[str, Figure6Panel] = {}
    for name in benchmarks:
        comparison = comparisons[name]
        panels[name] = Figure6Panel(
            benchmark=name, curves=comparison.curves, comparison=comparison
        )
    return Figure6Result(panels=panels)


class Figure6Spec(ExperimentSpec):
    """Figure 6 as a registry artifact: derived from Table 1's per-unit
    learner runs.  The fold restricts Table 1's comparisons to the paper's
    six Figure 6 benchmarks (every scale benchmark when none of the six is
    in scope), so the learning curves come from the same work units that
    produced the Table 1 rows — nothing is recomputed."""

    name = "figure6"
    title = "Figure 6"
    depends_on = ("table1",)

    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        return []

    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> Any:
        raise RuntimeError("figure6 has no work units; it folds from table1")

    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> Figure6Result:
        comparisons: Dict[str, PlanComparison] = deps["table1"].comparisons
        names = [b for b in PAPER_FIGURE6_BENCHMARKS if b in comparisons]
        if not names:
            names = list(comparisons)
        panels = {
            name: Figure6Panel(
                benchmark=name,
                curves=comparisons[name].curves,
                comparison=comparisons[name],
            )
            for name in names
        }
        return Figure6Result(panels=panels)


register(Figure6Spec())


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure6().render())


if __name__ == "__main__":  # pragma: no cover
    main()
