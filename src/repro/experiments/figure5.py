"""Figure 5: reduction of profiling cost per benchmark (the speed-up bars).

Figure 5 is a bar chart of the Table 1 speed-ups — how much less profiling
time the variable-observation approach needs than the 35-observation
baseline to reach the same error level — ordered per benchmark, with the
geometric mean as the summary bar.  The driver reuses the Table 1
computation and renders the bars as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from ..measurement.stats import geometric_mean
from .config import ExperimentScale
from .registry import ExperimentSpec, UnitContext, WorkUnit, register
from .reporting import format_table
from .table1 import PAPER_TABLE1_SPEEDUPS, Table1Result, run_table1

__all__ = [
    "Figure5Bar",
    "Figure5Result",
    "Figure5Spec",
    "run_figure5",
    "figure5_from_table1",
]


@dataclass(frozen=True)
class Figure5Bar:
    benchmark: str
    speedup: float
    paper_speedup: float


@dataclass
class Figure5Result:
    bars: List[Figure5Bar]

    @property
    def geometric_mean_speedup(self) -> float:
        return geometric_mean([bar.speedup for bar in self.bars])

    def render(self, width: int = 40) -> str:
        """ASCII bar chart plus the underlying numbers."""
        maximum = max(max(bar.speedup for bar in self.bars), 1.0)
        rows = []
        for bar in sorted(self.bars, key=lambda b: b.speedup):
            length = max(int(round(width * bar.speedup / maximum)), 1)
            rows.append(
                [
                    bar.benchmark,
                    f"{bar.speedup:.2f}x",
                    f"{bar.paper_speedup:.2f}x",
                    "#" * length,
                ]
            )
        rows.append(
            ["geometric mean", f"{self.geometric_mean_speedup:.2f}x", "3.97x", ""]
        )
        return format_table(
            headers=["benchmark", "speed-up", "paper", "profiling-cost reduction"],
            rows=rows,
            title="Figure 5: reduction of profiling cost vs the 35-observation baseline",
        )


def figure5_from_table1(table1: Table1Result) -> Figure5Result:
    """Build the Figure 5 bars from an existing Table 1 result."""
    bars = [
        Figure5Bar(
            benchmark=row.benchmark,
            speedup=row.speedup,
            paper_speedup=row.paper_speedup,
        )
        for row in table1.rows
    ]
    return Figure5Result(bars=bars)


def run_figure5(
    scale: Optional[ExperimentScale] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Figure5Result:
    """Regenerate the Figure 5 bars (runs the Table 1 experiment)."""
    return figure5_from_table1(run_table1(scale=scale, benchmarks=benchmarks))


class Figure5Spec(ExperimentSpec):
    """Figure 5 as a registry artifact: purely derived — it contributes no
    work units and folds its bars straight from Table 1's result (the
    dependency resolver schedules ``table1`` first, and nothing is
    computed twice)."""

    name = "figure5"
    title = "Figure 5"
    depends_on = ("table1",)

    def work_units(self, scale: ExperimentScale) -> List[WorkUnit]:
        return []

    def execute_unit(
        self, unit: WorkUnit, scale: ExperimentScale, context: UnitContext
    ) -> Any:
        raise RuntimeError("figure5 has no work units; it folds from table1")

    def fold(
        self,
        scale: ExperimentScale,
        payloads: Sequence[Tuple[WorkUnit, Any]],
        deps: Mapping[str, Any],
    ) -> Figure5Result:
        return figure5_from_table1(deps["table1"])


register(Figure5Spec())


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure5().render())


if __name__ == "__main__":  # pragma: no cover
    main()
