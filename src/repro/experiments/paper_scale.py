"""Paper-scale smoke run: Algorithm 1 at the paper's particle count.

``python -m repro.experiments.paper_scale [--benchmark mm] [--examples 40]``

The paper's experiments use 5 000 dynamic-tree particles, 500 candidates
per iteration and 2 500 training examples (Section 4.4) — previously out of
reach for the per-particle Python update loop.  With the batched SMC update
kernel the per-observation cost at 5 000 particles is sub-second, so this
module runs Algorithm 1 end-to-end at the paper's model scale
(``LearnerConfig.paper_scale()`` with a configurable number of training
examples) on one benchmark and reports the resulting timings: it is the
"does paper scale actually run?" smoke check the ROADMAP calls for, and the
timing summary it prints is what CHANGES.md records.

A full 2 500-example paper run is the same command with
``--examples 2500`` — the smoke default keeps the example budget small so
the check finishes in minutes.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Optional, Sequence

import numpy as np

from ..core.evaluation import build_test_set
from ..core.learner import ActiveLearner, LearnerConfig
from ..spapt.suite import get_benchmark

__all__ = ["PaperScaleSmokeResult", "run_paper_scale_smoke", "main"]


@dataclasses.dataclass(frozen=True)
class PaperScaleSmokeResult:
    """Timing and outcome summary of one paper-scale smoke run."""

    benchmark: str
    particles: int
    candidates: int
    training_examples: int
    wall_seconds: float
    seconds_per_example: float
    final_rmse: float
    best_rmse: float
    simulated_cost_seconds: float

    def render(self) -> str:
        return "\n".join(
            [
                "Paper-scale smoke run",
                f"  benchmark            : {self.benchmark}",
                f"  particles            : {self.particles}",
                f"  candidates/iteration : {self.candidates}",
                f"  training examples    : {self.training_examples}",
                f"  wall time            : {self.wall_seconds:.1f} s"
                f" ({self.seconds_per_example:.2f} s/example)",
                f"  final RMSE           : {self.final_rmse:.4f}",
                f"  best RMSE            : {self.best_rmse:.4f}",
                f"  simulated profiling  : {self.simulated_cost_seconds:.0f} s",
            ]
        )


def run_paper_scale_smoke(
    benchmark: str = "mm",
    training_examples: int = 40,
    particles: Optional[int] = None,
    candidates: Optional[int] = None,
    test_size: int = 300,
    seed: int = 2017,
) -> PaperScaleSmokeResult:
    """Run Algorithm 1 at paper-scale model settings, end to end.

    Everything except ``max_training_examples`` (and optional overrides for
    tests) comes from :meth:`LearnerConfig.paper_scale`: 5 000 particles,
    500 candidates per iteration, 35 seed observations, reference size 100.
    """
    config = LearnerConfig.paper_scale()
    overrides = {"max_training_examples": training_examples}
    if particles is not None:
        overrides["tree_particles"] = particles
    if candidates is not None:
        overrides["n_candidates"] = candidates
    config = dataclasses.replace(config, **overrides)
    instance = get_benchmark(benchmark)
    test_set = build_test_set(
        instance, size=test_size, observations=5, rng=np.random.default_rng(seed + 1)
    )
    learner = ActiveLearner(
        instance, config=config, rng=np.random.default_rng(seed)
    )
    started = time.perf_counter()
    result = learner.run(test_set)
    wall = time.perf_counter() - started
    return PaperScaleSmokeResult(
        benchmark=benchmark,
        particles=config.tree_particles,
        candidates=config.n_candidates,
        training_examples=result.training_examples,
        wall_seconds=wall,
        seconds_per_example=wall / max(result.training_examples, 1),
        final_rmse=result.curve.points[-1].rmse,
        best_rmse=result.curve.best_error,
        simulated_cost_seconds=result.total_cost_seconds,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="mm")
    parser.add_argument(
        "--examples",
        type=int,
        default=40,
        help="training examples to absorb (the paper uses 2500; the smoke default is 40)",
    )
    parser.add_argument(
        "--particles",
        type=int,
        default=None,
        help="override the particle count (default: the paper's 5000)",
    )
    args = parser.parse_args(argv)
    if args.examples < 6:
        parser.error("--examples must leave room for the 5 seed configurations")
    result = run_paper_scale_smoke(
        benchmark=args.benchmark,
        training_examples=args.examples,
        particles=args.particles,
    )
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
