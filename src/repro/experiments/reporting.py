"""Plain-text and CSV reporting helpers shared by the experiment drivers.

Every table/figure driver returns structured data *and* can render it as an
aligned text table (the same rows/series the paper reports) so that the
benchmark harness and the examples can simply print the result.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_scientific", "to_csv"]


def format_scientific(value: float, digits: int = 2) -> str:
    """Format a number the way the paper's tables do (e.g. ``3.78e+14``)."""
    return f"{value:.{digits}e}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3g}",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (for saving results to disk)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()
