"""The 11 SPAPT search problems: kernels + search spaces + noise calibration.

A :class:`SpaptBenchmark` bundles everything the rest of the system needs to
treat a SPAPT problem like the paper does:

* the kernel (loop-nest IR) and its machine cost model,
* the tunable search space (unroll / cache-tile / register-tile parameters
  bound to specific loops), sized to approximate the per-benchmark search
  space cardinalities of Table 1,
* a noise profile calibrated so that the spread of measurement variance and
  CI/mean ratios resembles Table 2 (essentially noise-free for ``mvt``,
  ``lu`` and ``hessian``; extremely noisy for ``correlation``),
* a target mean runtime used to place the simulated runtimes in the same
  range as the paper's measurements (the cost model is auto-scaled so the
  untransformed ``-O2`` baseline configuration hits that target).

A benchmark implements the :class:`repro.measurement.profiler.TunableProgram`
protocol, so a :class:`repro.measurement.Profiler` can compile-and-measure
its configurations directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.loopnest import Kernel
from ..machine.cost_model import MachineCostModel, TransformConfiguration
from ..measurement.noise import NoiseModel, NoiseProfile, noise_model_from_profile
from .kernels import KERNEL_BUILDERS
from .search_space import ParameterKind, SearchSpace, TunableParameter

__all__ = [
    "BenchmarkSpec",
    "SpaptBenchmark",
    "BENCHMARK_SPECS",
    "benchmark_names",
    "get_benchmark",
    "load_suite",
    "PAPER_SEARCH_SPACE_SIZES",
]


#: Search-space cardinalities reported in Table 1 of the paper, used for
#: reporting alongside the cardinalities of our reproduction spaces.
PAPER_SEARCH_SPACE_SIZES: Dict[str, float] = {
    "adi": 3.78e14,
    "atax": 2.57e12,
    "bicgkernel": 5.83e8,
    "correlation": 3.78e14,
    "dgemv3": 1.33e27,
    "gemver": 1.14e16,
    "hessian": 1.95e7,
    "jacobi": 1.95e7,
    "lu": 5.83e8,
    "mm": 3.18e9,
    "mvt": 1.95e7,
}


def _unrolls(*loop_vars: str, max_factor: int = 32) -> List[TunableParameter]:
    return [
        TunableParameter.unroll(f"U_{var}", var, max_factor=max_factor)
        for var in loop_vars
    ]


def _tiles(*loop_vars: str, values: Optional[Sequence[int]] = None) -> List[TunableParameter]:
    if values is None:
        values = (1,) + tuple(range(16, 1025, 16))
    return [
        TunableParameter.cache_tile(f"T_{var}", var, values=values) for var in loop_vars
    ]


def _register_tiles(*loop_vars: str, max_factor: int = 16) -> List[TunableParameter]:
    return [
        TunableParameter.register_tile(f"RT_{var}", var, max_factor=max_factor)
        for var in loop_vars
    ]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one SPAPT search problem."""

    name: str
    kernel_builder: Callable[[], Kernel]
    parameters: Tuple[TunableParameter, ...]
    target_runtime_seconds: float
    noise_profile: NoiseProfile
    compile_base_seconds: float = 1.0
    compile_per_statement_seconds: float = 0.0015
    description: str = ""

    def build_kernel(self) -> Kernel:
        return self.kernel_builder()


def _spec(
    name: str,
    parameters: Sequence[TunableParameter],
    target_runtime: float,
    noise: NoiseProfile,
    compile_base: float,
    description: str,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        kernel_builder=KERNEL_BUILDERS[name],
        parameters=tuple(parameters),
        target_runtime_seconds=target_runtime,
        noise_profile=noise,
        compile_base_seconds=compile_base,
        description=description,
    )


def _build_specs() -> Dict[str, BenchmarkSpec]:
    """Construct the 11 benchmark specifications.

    Noise calibration follows Table 2 of the paper: the mean measurement
    variance spans eight orders of magnitude across benchmarks, from ``mvt``
    (1e-8, essentially deterministic) to ``correlation`` (0.42, so noisy that
    even 35 observations are not always enough).
    """
    specs: Dict[str, BenchmarkSpec] = {}

    specs["adi"] = _spec(
        "adi",
        _unrolls("i1", "i2", "i3", "j1", "j2")
        + _tiles("j1", "j2", "j3")
        + _register_tiles("i1"),
        target_runtime=2.3,
        noise=NoiseProfile(
            interference_sigma=0.010,
            layout_sigma_high=0.060,
            spike_probability=0.02,
            spike_scale=0.08,
            drift_sigma=0.002,
        ),
        compile_base=3.0,
        description="ADI stencil integration; noisy space with structured noisy regions",
    )
    specs["atax"] = _spec(
        "atax",
        _unrolls("i1", "j1", "i2", "j2") + _tiles("j1", "j2") + _register_tiles("i1", "i2"),
        target_runtime=0.85,
        noise=NoiseProfile(
            interference_sigma=0.004,
            layout_sigma_high=0.030,
            spike_probability=0.01,
            spike_scale=0.05,
        ),
        compile_base=1.5,
        description="A^T(Ax); comparatively low noise",
    )
    specs["bicgkernel"] = _spec(
        "bicgkernel",
        _unrolls("i1", "j1", "i2") + _tiles("j1") + _register_tiles("i1", "i2"),
        target_runtime=0.70,
        noise=NoiseProfile(
            interference_sigma=0.004,
            layout_sigma_high=0.035,
            spike_probability=0.01,
            spike_scale=0.05,
        ),
        compile_base=1.5,
        description="BiCG forward and transposed matvec",
    )
    specs["correlation"] = _spec(
        "correlation",
        _unrolls("i1", "j1", "i3", "j3", "k3")
        + _tiles("j2", "j3", "k3")
        + _register_tiles("i3"),
        target_runtime=3.0,
        noise=NoiseProfile(
            interference_sigma=0.030,
            layout_sigma_high=0.280,
            spike_probability=0.06,
            spike_scale=0.35,
            drift_sigma=0.004,
        ),
        compile_base=2.5,
        description="Correlation matrix; extremely noisy measurements (Table 2)",
    )
    specs["dgemv3"] = _spec(
        "dgemv3",
        _unrolls("i1", "j1", "i2", "j2", "i3", "j3", "i4", "i5", max_factor=64)
        + _tiles("j1", "j2", "j3")
        + _register_tiles("i1", "i2", "i3", max_factor=32)
        + _register_tiles("i4", "i5"),
        target_runtime=0.65,
        noise=NoiseProfile(
            interference_sigma=0.005,
            layout_sigma_high=0.035,
            spike_probability=0.012,
            spike_scale=0.06,
        ),
        compile_base=2.0,
        description="Three chained matvecs; very large search space",
    )
    specs["gemver"] = _spec(
        "gemver",
        _unrolls("i1", "j1", "i2", "j2", "i4", "j4")
        + _tiles("j1", "j2", "j4")
        + _register_tiles("i1"),
        target_runtime=1.6,
        noise=NoiseProfile(
            interference_sigma=0.012,
            layout_sigma_high=0.110,
            spike_probability=0.02,
            spike_scale=0.10,
        ),
        compile_base=2.0,
        description="BLAS gemver; sizeable noise but few extreme points",
    )
    specs["hessian"] = _spec(
        "hessian",
        _unrolls("i1", "j1") + _tiles("i1", "j1") + _register_tiles("i1", max_factor=4),
        target_runtime=0.16,
        noise=NoiseProfile(
            interference_sigma=0.0015,
            layout_sigma_high=0.010,
            spike_probability=0.004,
            spike_scale=0.03,
        ),
        compile_base=0.8,
        description="Hessian stencil; small and nearly noise-free",
    )
    specs["jacobi"] = _spec(
        "jacobi",
        _unrolls("i1", "j1", "i2") + _tiles("j1") + _register_tiles("i1", max_factor=8),
        target_runtime=0.80,
        noise=NoiseProfile(
            interference_sigma=0.004,
            layout_sigma_high=0.040,
            spike_probability=0.01,
            spike_scale=0.05,
        ),
        compile_base=1.2,
        description="Jacobi 2-D relaxation with copy-back",
    )
    specs["lu"] = _spec(
        "lu",
        _unrolls("i1", "i2", "j2") + _tiles("j2") + _register_tiles("i2", "k2"),
        target_runtime=0.30,
        noise=NoiseProfile(
            interference_sigma=0.0012,
            layout_sigma_high=0.008,
            spike_probability=0.003,
            spike_scale=0.02,
        ),
        compile_base=1.0,
        description="LU decomposition; essentially deterministic measurements",
    )
    specs["mm"] = _spec(
        "mm",
        _unrolls("i", "j", max_factor=30)
        + _unrolls("k")
        + _tiles("i", "j", "k", values=(1,) + tuple(range(16, 321, 16)))
        + _register_tiles("i", max_factor=8),
        target_runtime=0.50,
        noise=NoiseProfile(
            interference_sigma=0.002,
            layout_sigma_high=0.014,
            spike_probability=0.006,
            spike_scale=0.03,
        ),
        compile_base=1.0,
        description="Dense matrix multiplication (the Figure 1 motivation kernel)",
    )
    specs["mvt"] = _spec(
        "mvt",
        _unrolls("i1", "j1", "i2", "j2") + _tiles("j1", values=(1,) + tuple(range(32, 513, 32))),
        target_runtime=0.15,
        noise=NoiseProfile(
            interference_sigma=0.0008,
            layout_sigma_high=0.005,
            spike_probability=0.002,
            spike_scale=0.02,
        ),
        compile_base=0.8,
        description="mvt matvec pair; the quietest benchmark in Table 2",
    )
    return specs


BENCHMARK_SPECS: Dict[str, BenchmarkSpec] = _build_specs()


def benchmark_names() -> List[str]:
    """The 11 benchmark names in the order the paper lists them."""
    return sorted(BENCHMARK_SPECS)


class SpaptBenchmark:
    """One SPAPT search problem wired to the simulated machine.

    Implements the :class:`repro.measurement.profiler.TunableProgram`
    protocol (``true_runtime``, ``compile_time``, ``noise_sensitivity``,
    ``noise_model``) on top of the machine cost model, and exposes the
    search space and feature encoding used by the learners.
    """

    def __init__(
        self,
        spec: BenchmarkSpec,
        cache_size: int = 200_000,
    ) -> None:
        self._spec = spec
        self._kernel = spec.build_kernel()
        self._space = SearchSpace(spec.parameters)
        self._validate_parameters()
        base_model = MachineCostModel(
            self._kernel,
            compile_base_seconds=spec.compile_base_seconds,
            compile_per_statement_seconds=spec.compile_per_statement_seconds,
        )
        baseline = self._space.to_transform_configuration(
            self._space.default_configuration()
        )
        baseline_runtime = base_model.runtime_seconds(baseline)
        scale = spec.target_runtime_seconds / baseline_runtime
        self._model = MachineCostModel(
            self._kernel,
            time_scale=scale,
            compile_base_seconds=spec.compile_base_seconds,
            compile_per_statement_seconds=spec.compile_per_statement_seconds,
        )
        self._noise_model = noise_model_from_profile(spec.noise_profile)
        # Per-configuration caches: the learners revisit configurations many
        # times and dataset generation touches each configuration 35 times.
        self._runtime_cache = lru_cache(maxsize=cache_size)(self._runtime_uncached)
        self._compile_cache = lru_cache(maxsize=cache_size)(self._compile_uncached)
        self._sensitivity_cache = lru_cache(maxsize=cache_size)(
            self._sensitivity_uncached
        )
        # Normalised feature vectors, keyed by configuration tuple: the
        # learner re-features the same candidates every iteration (revisitable
        # pools, reference subsets), so each configuration is normalised once.
        self._feature_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        self._feature_cache_size = cache_size

    def _validate_parameters(self) -> None:
        loop_vars = set(self._kernel.loop_names())
        for param in self._space.parameters:
            if param.loop_var not in loop_vars:
                raise ValueError(
                    f"benchmark {self._spec.name!r}: parameter {param.name!r} refers to "
                    f"unknown loop {param.loop_var!r}"
                )

    # ------------------------------------------------------------ properties

    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def spec(self) -> BenchmarkSpec:
        return self._spec

    @property
    def kernel(self) -> Kernel:
        return self._kernel

    @property
    def search_space(self) -> SearchSpace:
        return self._space

    @property
    def cost_model(self) -> MachineCostModel:
        return self._model

    @property
    def noise_model(self) -> NoiseModel:
        return self._noise_model

    def restore_noise_model(self, noise_model: NoiseModel) -> None:
        """Install a noise model checkpointed from an earlier instance.

        The noise model is the only *stateful* part of a benchmark (the
        frequency-drift component carries a random-walk state between
        observations); everything else is rebuilt deterministically from
        the spec.  A resumed experiment (see
        :mod:`repro.experiments.runner`) rebuilds the benchmark by name and
        restores the drift state through this hook, keeping the resumed
        measurement stream bit-identical to the uninterrupted one.
        """
        self._noise_model = noise_model

    @property
    def paper_search_space_size(self) -> float:
        return PAPER_SEARCH_SPACE_SIZES[self._spec.name]

    # --------------------------------------------------- TunableProgram API

    def true_runtime(self, configuration: Sequence[int]) -> float:
        """Deterministic mean runtime (seconds) of a configuration."""
        return self._runtime_cache(self._space.validate(configuration))

    def compile_time(self, configuration: Sequence[int]) -> float:
        """Compile time (seconds) of a configuration."""
        return self._compile_cache(self._space.validate(configuration))

    def noise_sensitivity(self, configuration: Sequence[int]) -> float:
        """Heteroskedasticity knob in [0, 1] for the noise substrate."""
        return self._sensitivity_cache(self._space.validate(configuration))

    # -------------------------------------------------------------- features

    def features(self, configuration: Sequence[int]) -> np.ndarray:
        """Normalised (scaled and centred) feature vector of a configuration.

        Cached per configuration; the returned array is marked read-only
        because it is shared between calls.
        """
        key = tuple(int(v) for v in configuration)
        cached = self._feature_cache.get(key)
        if cached is None:
            cached = self._space.normalize(key)
            cached.flags.writeable = False
            if len(self._feature_cache) < self._feature_cache_size:
                self._feature_cache[key] = cached
        return cached

    def features_many(self, configurations: Sequence[Sequence[int]]) -> np.ndarray:
        """One feature matrix for a batch of configurations (cache-backed)."""
        if not len(configurations):
            return self._space.normalize_many(configurations)
        return np.vstack([self.features(cfg) for cfg in configurations])

    def transform_configuration(
        self, configuration: Sequence[int]
    ) -> TransformConfiguration:
        """The transformation parameters a configuration lowers to."""
        return self._space.to_transform_configuration(configuration)

    # -------------------------------------------------------------- internal

    def _runtime_uncached(self, configuration: Tuple[int, ...]) -> float:
        return self._model.runtime_seconds(
            self._space.to_transform_configuration(configuration)
        )

    def _compile_uncached(self, configuration: Tuple[int, ...]) -> float:
        return self._model.compile_seconds(
            self._space.to_transform_configuration(configuration)
        )

    def _sensitivity_uncached(self, configuration: Tuple[int, ...]) -> float:
        return self._model.noise_sensitivity(
            self._space.to_transform_configuration(configuration)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpaptBenchmark({self._spec.name!r}, space={self._space.size:.3g}, "
            f"target={self._spec.target_runtime_seconds}s)"
        )


def get_benchmark(name: str) -> SpaptBenchmark:
    """Instantiate one of the 11 SPAPT benchmarks by name."""
    if name not in BENCHMARK_SPECS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(benchmark_names())}"
        )
    return SpaptBenchmark(BENCHMARK_SPECS[name])


def load_suite(names: Optional[Sequence[str]] = None) -> List[SpaptBenchmark]:
    """Instantiate several benchmarks (all 11 by default)."""
    selected = list(names) if names is not None else benchmark_names()
    return [get_benchmark(name) for name in selected]
