"""Loop-nest IR definitions of the 11 SPAPT kernels used in the paper.

The SPAPT suite (Balaprakash, Wild & Norris, ICCS 2012) collects search
problems built from high-performance-computing kernels: dense linear algebra
(``mm``, ``atax``, ``bicgkernel``, ``dgemv3``, ``gemver``, ``mvt``, ``lu``),
stencils (``adi``, ``jacobi``, ``hessian``) and statistics (``correlation``).
The paper evaluates the 11 of them listed below (Section 4.2).

Each function returns a :class:`repro.ir.Kernel` whose loops carry unique
variable names; the tunable parameters defined in :mod:`repro.spapt.suite`
refer to those names.  Problem sizes are fixed per kernel (SPAPT treats the
input size as part of the search problem, not of the configuration) and are
chosen so that the simulated runtimes fall in the same ranges as the paper's
measurements.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.expr import Const, Var
from ..ir.loopnest import ArrayDecl, ArrayRef, Kernel, Loop, Statement

__all__ = [
    "build_adi",
    "build_atax",
    "build_bicgkernel",
    "build_correlation",
    "build_dgemv3",
    "build_gemver",
    "build_hessian",
    "build_jacobi",
    "build_lu",
    "build_mm",
    "build_mvt",
    "KERNEL_BUILDERS",
]


def _ref(array: str, *indices) -> ArrayRef:
    return ArrayRef(array, tuple(indices))


def _stmt(writes: Sequence[ArrayRef], reads: Sequence[ArrayRef], flops: int, label: str) -> Statement:
    return Statement(writes=tuple(writes), reads=tuple(reads), flops=flops, label=label)


def _nest(vars_and_bounds: Sequence[tuple], body: Sequence) -> Loop:
    """Build a perfectly nested loop from ``[(var, lower, upper), ...]``."""
    inner: Sequence = body
    loop: Loop
    for var, lower, upper in reversed(list(vars_and_bounds)):
        loop = Loop(var=var, lower=lower, upper=upper, body=tuple(inner))
        inner = (loop,)
    return inner[0]


def build_mm(n: int = 256) -> Kernel:
    """Dense square matrix multiplication ``C += A * B`` (an ijk nest)."""
    body = _stmt(
        writes=[_ref("C", Var("i"), Var("j"))],
        reads=[
            _ref("C", Var("i"), Var("j")),
            _ref("A", Var("i"), Var("k")),
            _ref("B", Var("k"), Var("j")),
        ],
        flops=2,
        label="mm_update",
    )
    nest = _nest([("i", 0, "N"), ("j", 0, "N"), ("k", 0, "N")], [body])
    return Kernel(
        name="mm",
        sizes={"N": n},
        arrays=(
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("B", ("N", "N")),
            ArrayDecl("C", ("N", "N")),
        ),
        loops=(nest,),
    )


def build_adi(n: int = 1024) -> Kernel:
    """Alternating-Direction-Implicit integration: row sweep, column sweep, update."""
    row_sweep = _nest(
        [("i1", 0, "N"), ("j1", 1, "N")],
        [
            _stmt(
                writes=[_ref("X", Var("i1"), Var("j1"))],
                reads=[
                    _ref("X", Var("i1"), Var("j1")),
                    _ref("X", Var("i1"), Var("j1") - 1),
                    _ref("A", Var("i1"), Var("j1")),
                    _ref("B", Var("i1"), Var("j1") - 1),
                ],
                flops=4,
                label="adi_row",
            ),
            _stmt(
                writes=[_ref("B", Var("i1"), Var("j1"))],
                reads=[
                    _ref("B", Var("i1"), Var("j1")),
                    _ref("A", Var("i1"), Var("j1")),
                    _ref("B", Var("i1"), Var("j1") - 1),
                ],
                flops=3,
                label="adi_row_b",
            ),
        ],
    )
    col_sweep = _nest(
        [("i2", 1, "N"), ("j2", 0, "N")],
        [
            _stmt(
                writes=[_ref("X", Var("i2"), Var("j2"))],
                reads=[
                    _ref("X", Var("i2"), Var("j2")),
                    _ref("X", Var("i2") - 1, Var("j2")),
                    _ref("A", Var("i2"), Var("j2")),
                    _ref("B", Var("i2") - 1, Var("j2")),
                ],
                flops=4,
                label="adi_col",
            ),
        ],
    )
    back_substitution = _nest(
        [("i3", 0, "N"), ("j3", 0, "N")],
        [
            _stmt(
                writes=[_ref("X", Var("i3"), Var("j3"))],
                reads=[
                    _ref("X", Var("i3"), Var("j3")),
                    _ref("B", Var("i3"), Var("j3")),
                ],
                flops=1,
                label="adi_back",
            ),
        ],
    )
    return Kernel(
        name="adi",
        sizes={"N": n},
        arrays=(
            ArrayDecl("X", ("N", "N")),
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("B", ("N", "N")),
        ),
        loops=(row_sweep, col_sweep, back_substitution),
    )


def build_atax(n: int = 1800) -> Kernel:
    """``y = A^T (A x)`` — two dependent matrix-vector products."""
    first = _nest(
        [("i1", 0, "N"), ("j1", 0, "N")],
        [
            _stmt(
                writes=[_ref("tmp", Var("i1"))],
                reads=[
                    _ref("tmp", Var("i1")),
                    _ref("A", Var("i1"), Var("j1")),
                    _ref("x", Var("j1")),
                ],
                flops=2,
                label="atax_ax",
            )
        ],
    )
    second = _nest(
        [("i2", 0, "N"), ("j2", 0, "N")],
        [
            _stmt(
                writes=[_ref("y", Var("j2"))],
                reads=[
                    _ref("y", Var("j2")),
                    _ref("A", Var("i2"), Var("j2")),
                    _ref("tmp", Var("i2")),
                ],
                flops=2,
                label="atax_aty",
            )
        ],
    )
    return Kernel(
        name="atax",
        sizes={"N": n},
        arrays=(
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("x", ("N",)),
            ArrayDecl("y", ("N",)),
            ArrayDecl("tmp", ("N",)),
        ),
        loops=(first, second),
    )


def build_bicgkernel(n: int = 1600) -> Kernel:
    """BiCG sub-kernel: ``q = A p`` and ``s = A^T r``."""
    forward = _nest(
        [("i1", 0, "N"), ("j1", 0, "N")],
        [
            _stmt(
                writes=[_ref("q", Var("i1"))],
                reads=[
                    _ref("q", Var("i1")),
                    _ref("A", Var("i1"), Var("j1")),
                    _ref("p", Var("j1")),
                ],
                flops=2,
                label="bicg_q",
            )
        ],
    )
    transpose = _nest(
        [("i2", 0, "N"), ("j2", 0, "N")],
        [
            _stmt(
                writes=[_ref("s", Var("j2"))],
                reads=[
                    _ref("s", Var("j2")),
                    _ref("r", Var("i2")),
                    _ref("A", Var("i2"), Var("j2")),
                ],
                flops=2,
                label="bicg_s",
            )
        ],
    )
    return Kernel(
        name="bicgkernel",
        sizes={"N": n},
        arrays=(
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("p", ("N",)),
            ArrayDecl("q", ("N",)),
            ArrayDecl("r", ("N",)),
            ArrayDecl("s", ("N",)),
        ),
        loops=(forward, transpose),
    )


def build_correlation(n: int = 900) -> Kernel:
    """Correlation matrix: column means, centring/scaling, symmetric product."""
    means = _nest(
        [("i1", 0, "N"), ("j1", 0, "N")],
        [
            _stmt(
                writes=[_ref("mean", Var("j1"))],
                reads=[_ref("mean", Var("j1")), _ref("data", Var("i1"), Var("j1"))],
                flops=1,
                label="corr_mean",
            )
        ],
    )
    centre = _nest(
        [("i2", 0, "N"), ("j2", 0, "N")],
        [
            _stmt(
                writes=[_ref("data", Var("i2"), Var("j2"))],
                reads=[
                    _ref("data", Var("i2"), Var("j2")),
                    _ref("mean", Var("j2")),
                    _ref("stddev", Var("j2")),
                ],
                flops=2,
                label="corr_centre",
            )
        ],
    )
    product = _nest(
        [("i3", 0, "N"), ("j3", Var("i3"), "N"), ("k3", 0, "N")],
        [
            _stmt(
                writes=[_ref("corr", Var("i3"), Var("j3"))],
                reads=[
                    _ref("corr", Var("i3"), Var("j3")),
                    _ref("data", Var("k3"), Var("i3")),
                    _ref("data", Var("k3"), Var("j3")),
                ],
                flops=2,
                label="corr_product",
            )
        ],
    )
    return Kernel(
        name="correlation",
        sizes={"N": n},
        arrays=(
            ArrayDecl("data", ("N", "N")),
            ArrayDecl("corr", ("N", "N")),
            ArrayDecl("mean", ("N",)),
            ArrayDecl("stddev", ("N",)),
        ),
        loops=(means, centre, product),
    )


def build_dgemv3(n: int = 1400) -> Kernel:
    """Three chained matrix-vector products plus a combining vector update."""
    loops: List[Loop] = []
    for idx, (matrix, vec_in, vec_out) in enumerate(
        [("A", "x1", "y1"), ("B", "x2", "y2"), ("Cm", "x3", "y3")], start=1
    ):
        loops.append(
            _nest(
                [(f"i{idx}", 0, "N"), (f"j{idx}", 0, "N")],
                [
                    _stmt(
                        writes=[_ref(vec_out, Var(f"i{idx}"))],
                        reads=[
                            _ref(vec_out, Var(f"i{idx}")),
                            _ref(matrix, Var(f"i{idx}"), Var(f"j{idx}")),
                            _ref(vec_in, Var(f"j{idx}")),
                        ],
                        flops=2,
                        label=f"dgemv3_{matrix.lower()}",
                    )
                ],
            )
        )
    combine = _nest(
        [("i4", 0, "N")],
        [
            _stmt(
                writes=[_ref("w", Var("i4"))],
                reads=[
                    _ref("y1", Var("i4")),
                    _ref("y2", Var("i4")),
                    _ref("y3", Var("i4")),
                ],
                flops=5,
                label="dgemv3_combine",
            )
        ],
    )
    scale = _nest(
        [("i5", 0, "N")],
        [
            _stmt(
                writes=[_ref("x2", Var("i5"))],
                reads=[_ref("y1", Var("i5"))],
                flops=1,
                label="dgemv3_feed2",
            ),
            _stmt(
                writes=[_ref("x3", Var("i5"))],
                reads=[_ref("y2", Var("i5"))],
                flops=1,
                label="dgemv3_feed3",
            ),
        ],
    )
    return Kernel(
        name="dgemv3",
        sizes={"N": n},
        arrays=(
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("B", ("N", "N")),
            ArrayDecl("Cm", ("N", "N")),
            ArrayDecl("x1", ("N",)),
            ArrayDecl("x2", ("N",)),
            ArrayDecl("x3", ("N",)),
            ArrayDecl("y1", ("N",)),
            ArrayDecl("y2", ("N",)),
            ArrayDecl("y3", ("N",)),
            ArrayDecl("w", ("N",)),
        ),
        loops=tuple(loops) + (combine, scale),
    )


def build_gemver(n: int = 1500) -> Kernel:
    """BLAS gemver: rank-2 update, transposed matvec, vector add, matvec."""
    rank_update = _nest(
        [("i1", 0, "N"), ("j1", 0, "N")],
        [
            _stmt(
                writes=[_ref("Bm", Var("i1"), Var("j1"))],
                reads=[
                    _ref("A", Var("i1"), Var("j1")),
                    _ref("u1", Var("i1")),
                    _ref("v1", Var("j1")),
                    _ref("u2", Var("i1")),
                    _ref("v2", Var("j1")),
                ],
                flops=4,
                label="gemver_rank2",
            )
        ],
    )
    transposed = _nest(
        [("i2", 0, "N"), ("j2", 0, "N")],
        [
            _stmt(
                writes=[_ref("x", Var("i2"))],
                reads=[
                    _ref("x", Var("i2")),
                    _ref("Bm", Var("j2"), Var("i2")),
                    _ref("y", Var("j2")),
                ],
                flops=2,
                label="gemver_xt",
            )
        ],
    )
    vector_add = _nest(
        [("i3", 0, "N")],
        [
            _stmt(
                writes=[_ref("x", Var("i3"))],
                reads=[_ref("x", Var("i3")), _ref("z", Var("i3"))],
                flops=1,
                label="gemver_add",
            )
        ],
    )
    matvec = _nest(
        [("i4", 0, "N"), ("j4", 0, "N")],
        [
            _stmt(
                writes=[_ref("w", Var("i4"))],
                reads=[
                    _ref("w", Var("i4")),
                    _ref("Bm", Var("i4"), Var("j4")),
                    _ref("x", Var("j4")),
                ],
                flops=2,
                label="gemver_w",
            )
        ],
    )
    return Kernel(
        name="gemver",
        sizes={"N": n},
        arrays=(
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("Bm", ("N", "N")),
            ArrayDecl("u1", ("N",)),
            ArrayDecl("u2", ("N",)),
            ArrayDecl("v1", ("N",)),
            ArrayDecl("v2", ("N",)),
            ArrayDecl("x", ("N",)),
            ArrayDecl("y", ("N",)),
            ArrayDecl("z", ("N",)),
            ArrayDecl("w", ("N",)),
        ),
        loops=(rank_update, transposed, vector_add, matvec),
    )


def build_hessian(n: int = 700) -> Kernel:
    """Second-derivative (Hessian) 5-point stencil over a 2-D field."""
    stencil = _nest(
        [("i1", 1, Var("N") - 1), ("j1", 1, Var("N") - 1)],
        [
            _stmt(
                writes=[_ref("H", Var("i1"), Var("j1"))],
                reads=[
                    _ref("f", Var("i1") + 1, Var("j1")),
                    _ref("f", Var("i1") - 1, Var("j1")),
                    _ref("f", Var("i1"), Var("j1") + 1),
                    _ref("f", Var("i1"), Var("j1") - 1),
                    _ref("f", Var("i1"), Var("j1")),
                ],
                flops=7,
                label="hessian_stencil",
            )
        ],
    )
    return Kernel(
        name="hessian",
        sizes={"N": n},
        arrays=(ArrayDecl("f", ("N", "N")), ArrayDecl("H", ("N", "N"))),
        loops=(stencil,),
    )


def build_jacobi(n: int = 1400) -> Kernel:
    """Jacobi 2-D relaxation: 5-point stencil plus copy-back."""
    relax = _nest(
        [("i1", 1, Var("N") - 1), ("j1", 1, Var("N") - 1)],
        [
            _stmt(
                writes=[_ref("B", Var("i1"), Var("j1"))],
                reads=[
                    _ref("A", Var("i1"), Var("j1")),
                    _ref("A", Var("i1") + 1, Var("j1")),
                    _ref("A", Var("i1") - 1, Var("j1")),
                    _ref("A", Var("i1"), Var("j1") + 1),
                    _ref("A", Var("i1"), Var("j1") - 1),
                ],
                flops=5,
                label="jacobi_relax",
            )
        ],
    )
    copy_back = _nest(
        [("i2", 1, Var("N") - 1), ("j2", 1, Var("N") - 1)],
        [
            _stmt(
                writes=[_ref("A", Var("i2"), Var("j2"))],
                reads=[_ref("B", Var("i2"), Var("j2"))],
                flops=0,
                label="jacobi_copy",
            )
        ],
    )
    return Kernel(
        name="jacobi",
        sizes={"N": n},
        arrays=(ArrayDecl("A", ("N", "N")), ArrayDecl("B", ("N", "N"))),
        loops=(relax, copy_back),
    )


def build_lu(n: int = 600) -> Kernel:
    """LU decomposition without pivoting (triangular update nest)."""
    scale_column = _nest(
        [("k1", 0, "N"), ("i1", Var("k1") + 1, "N")],
        [
            _stmt(
                writes=[_ref("A", Var("i1"), Var("k1"))],
                reads=[_ref("A", Var("i1"), Var("k1")), _ref("A", Var("k1"), Var("k1"))],
                flops=1,
                label="lu_scale",
            )
        ],
    )
    update = _nest(
        [("k2", 0, "N"), ("i2", Var("k2") + 1, "N"), ("j2", Var("k2") + 1, "N")],
        [
            _stmt(
                writes=[_ref("A", Var("i2"), Var("j2"))],
                reads=[
                    _ref("A", Var("i2"), Var("j2")),
                    _ref("A", Var("i2"), Var("k2")),
                    _ref("A", Var("k2"), Var("j2")),
                ],
                flops=2,
                label="lu_update",
            )
        ],
    )
    return Kernel(
        name="lu",
        sizes={"N": n},
        arrays=(ArrayDecl("A", ("N", "N")),),
        loops=(scale_column, update),
    )


def build_mvt(n: int = 1500) -> Kernel:
    """``x1 += A y1`` and ``x2 += A^T y2`` (the mvt PolyBench kernel)."""
    forward = _nest(
        [("i1", 0, "N"), ("j1", 0, "N")],
        [
            _stmt(
                writes=[_ref("x1", Var("i1"))],
                reads=[
                    _ref("x1", Var("i1")),
                    _ref("A", Var("i1"), Var("j1")),
                    _ref("y1", Var("j1")),
                ],
                flops=2,
                label="mvt_forward",
            )
        ],
    )
    transposed = _nest(
        [("i2", 0, "N"), ("j2", 0, "N")],
        [
            _stmt(
                writes=[_ref("x2", Var("i2"))],
                reads=[
                    _ref("x2", Var("i2")),
                    _ref("A", Var("j2"), Var("i2")),
                    _ref("y2", Var("j2")),
                ],
                flops=2,
                label="mvt_transposed",
            )
        ],
    )
    return Kernel(
        name="mvt",
        sizes={"N": n},
        arrays=(
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("x1", ("N",)),
            ArrayDecl("x2", ("N",)),
            ArrayDecl("y1", ("N",)),
            ArrayDecl("y2", ("N",)),
        ),
        loops=(forward, transposed),
    )


KERNEL_BUILDERS = {
    "adi": build_adi,
    "atax": build_atax,
    "bicgkernel": build_bicgkernel,
    "correlation": build_correlation,
    "dgemv3": build_dgemv3,
    "gemver": build_gemver,
    "hessian": build_hessian,
    "jacobi": build_jacobi,
    "lu": build_lu,
    "mm": build_mm,
    "mvt": build_mvt,
}
