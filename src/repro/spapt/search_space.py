"""Tunable parameters and search spaces for the SPAPT benchmarks.

Each SPAPT search problem is defined by a kernel, a (fixed) input size and a
set of tunable integer parameters.  Following the paper (Section 4.2) we
consider the integer parameters only — loop unroll factors, cache tile
sizes and register tile factors — and leave binary flags and input size
fixed so the comparison against Balaprakash et al. is like-for-like.

A configuration is a plain tuple of integers, one entry per parameter in
declaration order; this is what the profiler, the models and the learner all
pass around.  The :class:`SearchSpace` converts configurations to

* :class:`~repro.machine.cost_model.TransformConfiguration` objects consumed
  by the machine cost model and the transformation passes, and
* normalised feature vectors (scaled and centred, as in Section 4.5 of the
  paper) consumed by the surrogate models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..machine.cost_model import TransformConfiguration

__all__ = ["ParameterKind", "TunableParameter", "SearchSpace"]


class ParameterKind(str, Enum):
    """The three kinds of integer tunables used by the paper."""

    UNROLL = "unroll"
    CACHE_TILE = "cache_tile"
    REGISTER_TILE = "register_tile"


@dataclass(frozen=True)
class TunableParameter:
    """One tunable integer parameter bound to a loop of the kernel.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"U_i1"`` or ``"T_j2"``.
    kind:
        Which transformation the parameter controls.
    loop_var:
        The loop variable of the base kernel the transformation applies to.
    values:
        The ordered tuple of admissible values (all positive integers).
    """

    name: str
    kind: ParameterKind
    loop_var: str
    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        values = tuple(int(v) for v in self.values)
        object.__setattr__(self, "values", values)
        if not values:
            raise ValueError(f"parameter {self.name!r} has no admissible values")
        if any(v < 1 for v in values):
            raise ValueError(f"parameter {self.name!r} has non-positive values")
        if len(set(values)) != len(values):
            raise ValueError(f"parameter {self.name!r} has duplicate values")

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def value_at(self, index: int) -> int:
        """The parameter value at position ``index`` of the value list."""
        return self.values[index]

    def index_of(self, value: int) -> int:
        """Position of ``value`` in the value list (raises if absent)."""
        try:
            return self.values.index(int(value))
        except ValueError as exc:
            raise ValueError(
                f"{value} is not an admissible value of parameter {self.name!r}"
            ) from exc

    @classmethod
    def unroll(cls, name: str, loop_var: str, max_factor: int = 32) -> "TunableParameter":
        """An unroll factor parameter ranging over 1..max_factor."""
        return cls(name, ParameterKind.UNROLL, loop_var, tuple(range(1, max_factor + 1)))

    @classmethod
    def register_tile(
        cls, name: str, loop_var: str, max_factor: int = 16
    ) -> "TunableParameter":
        """A register-tile (unroll-and-jam) factor ranging over 1..max_factor."""
        return cls(
            name, ParameterKind.REGISTER_TILE, loop_var, tuple(range(1, max_factor + 1))
        )

    @classmethod
    def cache_tile(
        cls, name: str, loop_var: str, values: Optional[Sequence[int]] = None
    ) -> "TunableParameter":
        """A cache-tile size parameter.

        The default value set (1 plus multiples of 16 up to 1024) mirrors the
        tile ranges SPAPT exposes; 1 means "do not tile this loop".
        """
        if values is None:
            values = (1,) + tuple(range(16, 1025, 16))
        return cls(name, ParameterKind.CACHE_TILE, loop_var, tuple(values))


class SearchSpace:
    """The Cartesian product of a list of tunable parameters."""

    def __init__(self, parameters: Sequence[TunableParameter]) -> None:
        if not parameters:
            raise ValueError("a search space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(names) != len(set(names)):
            raise ValueError("duplicate parameter names in search space")
        self._parameters: Tuple[TunableParameter, ...] = tuple(parameters)
        # Admissible-value sets for O(1) validation, and the per-dimension
        # midpoint/scale of the feature normalisation, precomputed once so
        # normalising a batch of configurations is two array ops.
        self._value_sets: Tuple[frozenset, ...] = tuple(
            frozenset(param.values) for param in self._parameters
        )
        mids = np.empty(len(self._parameters), dtype=float)
        scales = np.empty(len(self._parameters), dtype=float)
        for i, param in enumerate(self._parameters):
            lo = param.values[0]
            hi = param.values[-1]
            mids[i] = (lo + hi) / 2.0
            # Standard deviation of a uniform distribution over [lo, hi].
            scales[i] = (hi - lo) / math.sqrt(12.0) if hi > lo else 1.0
        self._feature_mid = mids
        self._feature_scale = scales

    @property
    def parameters(self) -> Tuple[TunableParameter, ...]:
        return self._parameters

    @property
    def dimensions(self) -> int:
        return len(self._parameters)

    @property
    def size(self) -> int:
        """Total number of configurations (product of cardinalities)."""
        total = 1
        for param in self._parameters:
            total *= param.cardinality
        return total

    def parameter(self, name: str) -> TunableParameter:
        for param in self._parameters:
            if param.name == name:
                return param
        raise KeyError(f"no parameter named {name!r}")

    # ------------------------------------------------------------ validation

    def validate(self, configuration: Sequence[int]) -> Tuple[int, ...]:
        """Check a configuration and return it as a canonical tuple."""
        values = tuple(int(v) for v in configuration)
        if len(values) != self.dimensions:
            raise ValueError(
                f"configuration has {len(values)} values, expected {self.dimensions}"
            )
        for value, value_set, param in zip(values, self._value_sets, self._parameters):
            if value not in value_set:
                raise ValueError(
                    f"{value} is not admissible for parameter {param.name!r}"
                )
        return values

    def __contains__(self, configuration: Sequence[int]) -> bool:
        try:
            self.validate(configuration)
        except ValueError:
            return False
        return True

    # -------------------------------------------------------------- sampling

    def default_configuration(self) -> Tuple[int, ...]:
        """The baseline configuration: every parameter at its first value.

        With the constructors above the first value of every parameter is 1,
        i.e. "apply no transformation" — the ``-O2``-only baseline the paper
        compiles against.
        """
        return tuple(param.values[0] for param in self._parameters)

    def random_configuration(self, rng: np.random.Generator) -> Tuple[int, ...]:
        """One configuration sampled uniformly at random."""
        return tuple(
            param.values[int(rng.integers(param.cardinality))]
            for param in self._parameters
        )

    def sample_distinct(
        self, count: int, rng: np.random.Generator, exclude: Iterable[Sequence[int]] = ()
    ) -> List[Tuple[int, ...]]:
        """Sample ``count`` distinct configurations uniformly at random.

        ``exclude`` lists configurations that must not be returned (e.g. the
        training examples already seen, so the candidate pool stays fresh).
        Raises ``ValueError`` if the space cannot supply that many distinct
        configurations.
        """
        if count < 0:
            raise ValueError("count cannot be negative")
        excluded = {tuple(int(v) for v in cfg) for cfg in exclude}
        available = self.size - len(excluded)
        if count > available:
            raise ValueError(
                f"cannot sample {count} distinct configurations: only {available} available"
            )
        chosen: set[Tuple[int, ...]] = set()
        result: List[Tuple[int, ...]] = []
        # Rejection sampling is efficient because SPAPT spaces are many orders
        # of magnitude larger than any sample we draw; fall back to exhaustive
        # enumeration only for tiny synthetic spaces used in tests.
        attempts = 0
        max_attempts = max(1000, count * 50)
        while len(result) < count and attempts < max_attempts:
            attempts += 1
            candidate = self.random_configuration(rng)
            if candidate in excluded or candidate in chosen:
                continue
            chosen.add(candidate)
            result.append(candidate)
        if len(result) < count:
            for candidate in self._enumerate():
                if candidate in excluded or candidate in chosen:
                    continue
                chosen.add(candidate)
                result.append(candidate)
                if len(result) == count:
                    break
        return result

    def _enumerate(self) -> Iterator[Tuple[int, ...]]:
        """Enumerate every configuration (only sensible for tiny spaces)."""
        def recurse(prefix: Tuple[int, ...], remaining: Tuple[TunableParameter, ...]):
            if not remaining:
                yield prefix
                return
            head, tail = remaining[0], remaining[1:]
            for value in head.values:
                yield from recurse(prefix + (value,), tail)

        yield from recurse((), self._parameters)

    # ---------------------------------------------------------- conversions

    def to_transform_configuration(
        self, configuration: Sequence[int]
    ) -> TransformConfiguration:
        """Lower a configuration tuple onto transformation parameters."""
        values = self.validate(configuration)
        unroll: Dict[str, int] = {}
        cache_tiles: Dict[str, int] = {}
        register_tiles: Dict[str, int] = {}
        for value, param in zip(values, self._parameters):
            if param.kind is ParameterKind.UNROLL:
                unroll[param.loop_var] = unroll.get(param.loop_var, 1) * value
            elif param.kind is ParameterKind.CACHE_TILE:
                cache_tiles[param.loop_var] = value
            else:
                register_tiles[param.loop_var] = (
                    register_tiles.get(param.loop_var, 1) * value
                )
        return TransformConfiguration(
            unroll=unroll, cache_tiles=cache_tiles, register_tiles=register_tiles
        )

    def normalize(self, configuration: Sequence[int]) -> np.ndarray:
        """Scale and centre a configuration into model feature space.

        Each parameter is mapped to ``(value - midpoint) / scale`` where the
        midpoint and scale are those of a uniform distribution over the
        parameter's admissible values — the "scaling and centring to
        something similar to the Standard Normal Distribution" described in
        Section 4.5 of the paper.
        """
        values = self.validate(configuration)
        return (np.asarray(values, dtype=float) - self._feature_mid) / self._feature_scale

    def normalize_many(self, configurations: Sequence[Sequence[int]]) -> np.ndarray:
        """Normalise a batch of configurations into a 2-D feature matrix.

        The whole batch is validated row by row but normalised with a single
        broadcast over the precomputed midpoint/scale vectors.
        """
        rows = [self.validate(cfg) for cfg in configurations]
        if not rows:
            raise ValueError("normalize_many() needs at least one configuration")
        matrix = np.asarray(rows, dtype=float)
        return (matrix - self._feature_mid) / self._feature_scale

    def describe(self) -> str:
        """A human-readable multi-line description of the space."""
        lines = [f"search space with {self.dimensions} parameters, {self.size:.3g} points"]
        for param in self._parameters:
            lines.append(
                f"  {param.name:>8} ({param.kind.value:>13}) on loop {param.loop_var:>4}: "
                f"{param.cardinality} values in [{param.values[0]}, {param.values[-1]}]"
            )
        return "\n".join(lines)
