"""Dataset generation: the paper's 10 000-configuration per-benchmark datasets.

Section 4.5 of the paper: each program is profiled under 10 000 distinct,
randomly selected configurations; each configuration's mean runtime is the
average of 35 executions; 7 500 configurations are marked available for
training and the remaining 2 500 form the test set.

:func:`generate_dataset` reproduces that pipeline against the simulated
substrate (scaled down by default — the counts are parameters).  The
resulting :class:`Dataset` carries everything the experiments need: raw
observations, mean runtimes, per-configuration variances, compile times and
normalised features, plus the profiling cost that generating the dataset
would have charged (used by Table 2 and the motivation figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..measurement.profiler import Profiler
from ..measurement.stats import SampleSummary, summarize
from .suite import SpaptBenchmark

__all__ = ["DatasetEntry", "Dataset", "TrainTestSplit", "generate_dataset"]


@dataclass(frozen=True)
class DatasetEntry:
    """One profiled configuration."""

    configuration: Tuple[int, ...]
    observations: Tuple[float, ...]
    mean_runtime: float
    variance: float
    compile_time: float
    true_runtime: float
    noise_sensitivity: float

    def summary(self) -> SampleSummary:
        return summarize(self.observations)


@dataclass(frozen=True)
class TrainTestSplit:
    """Indices into a dataset marking training-eligible and test configurations."""

    train_indices: Tuple[int, ...]
    test_indices: Tuple[int, ...]


class Dataset:
    """A collection of profiled configurations for one benchmark."""

    def __init__(self, benchmark: SpaptBenchmark, entries: Sequence[DatasetEntry]) -> None:
        if not entries:
            raise ValueError("a dataset needs at least one entry")
        self._benchmark = benchmark
        self._entries: Tuple[DatasetEntry, ...] = tuple(entries)

    @property
    def benchmark(self) -> SpaptBenchmark:
        return self._benchmark

    @property
    def entries(self) -> Tuple[DatasetEntry, ...]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> DatasetEntry:
        return self._entries[index]

    def configurations(self) -> List[Tuple[int, ...]]:
        return [entry.configuration for entry in self._entries]

    def mean_runtimes(self) -> np.ndarray:
        return np.array([entry.mean_runtime for entry in self._entries], dtype=float)

    def true_runtimes(self) -> np.ndarray:
        return np.array([entry.true_runtime for entry in self._entries], dtype=float)

    def variances(self) -> np.ndarray:
        return np.array([entry.variance for entry in self._entries], dtype=float)

    def compile_times(self) -> np.ndarray:
        return np.array([entry.compile_time for entry in self._entries], dtype=float)

    def features(self) -> np.ndarray:
        return self._benchmark.features_many(self.configurations())

    def split(
        self,
        test_fraction: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ) -> TrainTestSplit:
        """Randomly mark a fraction of the dataset as the held-out test set.

        The paper marks 2 500 of 10 000 configurations (25%) as the test set
        per experiment.
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be strictly between 0 and 1")
        rng = rng if rng is not None else np.random.default_rng()
        indices = np.arange(len(self._entries))
        rng.shuffle(indices)
        n_test = max(int(round(len(indices) * test_fraction)), 1)
        test = tuple(int(i) for i in indices[:n_test])
        train = tuple(int(i) for i in indices[n_test:])
        if not train:
            raise ValueError("test_fraction leaves no training configurations")
        return TrainTestSplit(train_indices=train, test_indices=test)

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """A new dataset containing only the selected entries."""
        return Dataset(self._benchmark, [self._entries[i] for i in indices])


def generate_dataset(
    benchmark: SpaptBenchmark,
    configurations: int = 1000,
    observations_per_configuration: int = 35,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Profile ``configurations`` distinct random configurations.

    Mirrors Section 4.5 of the paper with configurable counts (the paper uses
    10 000 configurations and 35 observations each; the default here is
    laptop-sized and the experiment harness chooses its own counts).
    """
    if configurations < 1:
        raise ValueError("configurations must be at least 1")
    if observations_per_configuration < 1:
        raise ValueError("observations_per_configuration must be at least 1")
    rng = rng if rng is not None else np.random.default_rng()
    space = benchmark.search_space
    count = min(configurations, space.size)
    selected = space.sample_distinct(count, rng)
    profiler = Profiler(benchmark, rng=rng)
    entries: List[DatasetEntry] = []
    for configuration in selected:
        observations = profiler.measure(
            configuration, repetitions=observations_per_configuration
        )
        summary = summarize(observations)
        entries.append(
            DatasetEntry(
                configuration=configuration,
                observations=tuple(float(o) for o in observations),
                mean_runtime=summary.mean,
                variance=summary.variance,
                compile_time=benchmark.compile_time(configuration),
                true_runtime=benchmark.true_runtime(configuration),
                noise_sensitivity=benchmark.noise_sensitivity(configuration),
            )
        )
    return Dataset(benchmark, entries)
