"""SPAPT benchmark substrate: kernels, search spaces, suite and datasets."""

from .dataset import Dataset, DatasetEntry, TrainTestSplit, generate_dataset
from .kernels import KERNEL_BUILDERS
from .search_space import ParameterKind, SearchSpace, TunableParameter
from .suite import (
    BENCHMARK_SPECS,
    BenchmarkSpec,
    PAPER_SEARCH_SPACE_SIZES,
    SpaptBenchmark,
    benchmark_names,
    get_benchmark,
    load_suite,
)

__all__ = [
    "Dataset",
    "DatasetEntry",
    "TrainTestSplit",
    "generate_dataset",
    "KERNEL_BUILDERS",
    "ParameterKind",
    "SearchSpace",
    "TunableParameter",
    "BENCHMARK_SPECS",
    "BenchmarkSpec",
    "PAPER_SEARCH_SPACE_SIZES",
    "SpaptBenchmark",
    "benchmark_names",
    "get_benchmark",
    "load_suite",
]
