"""Benchmark regenerating Table 2 (variance and CI/mean spread per benchmark).

Profiles a dataset per benchmark and prints the min/mean/max of the
per-configuration variance and of the 95% CI-to-mean ratio for 35- and
5-observation samples, mirroring Table 2's message: noise differs by orders
of magnitude across benchmarks and across each benchmark's space.
"""

from __future__ import annotations

import pytest

from repro.experiments.table2 import run_table2

BENCHMARKS = ("mvt", "lu", "mm", "adi", "correlation")


@pytest.mark.benchmark(group="table2")
def test_bench_table2(benchmark, scale_factory):
    scale = scale_factory(BENCHMARKS)
    result = benchmark.pedantic(
        run_table2, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())
    by_name = {row.benchmark: row for row in result.rows}
    # The Table 2 ordering the paper relies on: correlation is the noisiest,
    # mvt/lu are essentially noise-free.
    assert by_name["correlation"].variance_mean > by_name["mvt"].variance_mean
    assert by_name["correlation"].variance_mean > by_name["lu"].variance_mean
