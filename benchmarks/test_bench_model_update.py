"""Micro-benchmarks of the model-update cost (the paper's O(n^3) argument).

Section 3.2 motivates dynamic trees over Gaussian processes with the cost of
sequential updates: the GP needs an O(n^3) refit per new observation while
the dynamic tree only touches the leaf containing the new point.  These
micro-benchmarks measure one sequential update (absorb a point, then
predict) at different training-set sizes for both models, plus the raw
throughput of the simulated substrate (cost-model evaluation and profiling).

Together with ``test_bench_predict.py`` the results are exported to
``BENCH_model.json`` (pytest-benchmark JSON, see ``conftest.py``) so the
perf trajectory of the model hot paths is tracked across PRs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.measurement.profiler import Profiler
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.models.gp import GaussianProcessRegressor
from repro.spapt.suite import get_benchmark


def _training_data(size, dims=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.5, 1.5, size=(size, dims))
    y = 1.0 + 0.3 * X[:, 0] + np.where(X[:, 1] > 0, 0.5, 0.0) + rng.normal(0, 0.02, size)
    return X, y


@pytest.mark.benchmark(group="model-update")
@pytest.mark.parametrize("size", [50, 200, 400])
def test_bench_dynamic_tree_update(benchmark, size):
    X, y = _training_data(size)
    model = DynamicTreeRegressor(
        DynamicTreeConfig(n_particles=20), rng=np.random.default_rng(1)
    )
    model.fit(X, y)
    probe = np.zeros((1, X.shape[1]))

    def update_and_predict():
        model.update(X[size // 2], float(y[size // 2]))
        model.predict(probe)

    benchmark(update_and_predict)


@pytest.mark.benchmark(group="model-update")
@pytest.mark.parametrize("size", [50, 200, 400])
def test_bench_gaussian_process_update(benchmark, size):
    X, y = _training_data(size)
    probe = np.zeros((1, X.shape[1]))

    def update_and_predict():
        model = GaussianProcessRegressor()
        model.fit(X, y)
        model.update(X[size // 2], float(y[size // 2]))
        model.predict(probe)

    benchmark(update_and_predict)


@pytest.mark.benchmark(group="substrate")
def test_bench_cost_model_evaluation(benchmark):
    mm = get_benchmark("mm")
    rng = np.random.default_rng(2)
    configurations = [mm.search_space.random_configuration(rng) for _ in range(200)]

    def evaluate_all():
        return sum(mm.true_runtime(c) for c in configurations)

    total = benchmark(evaluate_all)
    assert total > 0


@pytest.mark.benchmark(group="substrate")
def test_bench_profiler_throughput(benchmark):
    mm = get_benchmark("mm")

    def profile_batch():
        profiler = Profiler(mm, rng=np.random.default_rng(3))
        for _ in range(50):
            configuration = mm.search_space.random_configuration(profiler._rng)
            profiler.measure(configuration, repetitions=3)
        return profiler.ledger.total_seconds

    cost = benchmark(profile_batch)
    assert cost > 0
