"""Micro-benchmarks of the model-update cost (the paper's O(n^3) argument).

Section 3.2 motivates dynamic trees over Gaussian processes with the cost of
sequential updates: the GP needs an O(n^3) refit per new observation while
the dynamic tree only touches the leaf containing the new point.  These
micro-benchmarks measure one sequential update (absorb a point, then
predict) at different training-set sizes for both models, the batched SMC
update kernel against the per-particle reference loop at paper-scale
particle counts, plus the raw throughput of the simulated substrate
(cost-model evaluation and profiling).

Together with ``test_bench_predict.py`` the results are exported to
``BENCH_model.json`` (pytest-benchmark JSON, see ``conftest.py``) so the
perf trajectory of the model hot paths is tracked across PRs
(``benchmarks/check_regression.py`` gates on the ``model-update``,
``predict-alc`` and ``forest-maintenance`` groups).
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np
import pytest

from repro.measurement.profiler import Profiler
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.models.gp import GaussianProcessRegressor
from repro.spapt.suite import get_benchmark


def _training_data(size, dims=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.5, 1.5, size=(size, dims))
    y = 1.0 + 0.3 * X[:, 0] + np.where(X[:, 1] > 0, 0.5, 0.0) + rng.normal(0, 0.02, size)
    return X, y


def _as_reference(model: DynamicTreeRegressor) -> DynamicTreeRegressor:
    """A vectorized=False twin with the same (deep-copied) particle state.

    Fitting at paper-scale particle counts through the reference path takes
    minutes; transplanting the state of a batched fit measures exactly the
    same update workload on identical trees without paying that setup.
    """
    clone = DynamicTreeRegressor(
        dataclasses.replace(model.config, vectorized=False),
        rng=copy.deepcopy(model._rng),
    )
    clone._X = None if model._X is None else model._X.copy()
    clone._y = None if model._y is None else model._y.copy()
    clone._n = model._n
    clone._prior = model._prior
    clone._lml = model._lml
    clone._particles = [root.copy() for root in model._particles]
    clone._flat = [None] * len(model._particles)
    clone._flat_shared = [False] * len(model._particles)
    return clone


@pytest.mark.benchmark(group="model-update")
@pytest.mark.parametrize("size", [50, 200, 400])
def test_bench_dynamic_tree_update(benchmark, size):
    """One sequential update (absorb + predict) at a fixed training size.

    The untimed setup restores a fresh deep copy of the fitted model every
    round, so each round measures the same fixed-size workload.  (The
    previous calibrated-mode version updated one long-lived model in place;
    its mean depended on how many rounds the calibration chose — the model
    kept growing — which made the regression gate flaky by construction.)
    """
    X, y = _training_data(size)
    fitted = DynamicTreeRegressor(
        DynamicTreeConfig(n_particles=20), rng=np.random.default_rng(1)
    )
    fitted.fit(X, y)
    probe = np.zeros((1, X.shape[1]))
    holder = {}

    def fresh_state():
        holder["model"] = copy.deepcopy(fitted)
        return (), {}

    def update_and_predict():
        model = holder["model"]
        model.update(X[size // 2], float(y[size // 2]))
        model.predict(probe)

    benchmark.pedantic(
        update_and_predict, setup=fresh_state, rounds=30, iterations=1, warmup_rounds=1
    )


@pytest.fixture(scope="module")
def paper_scale_model():
    """One batched fit at paper-scale particle count, shared by the
    update-kernel benchmarks (the trees are deep-copied per benchmark)."""
    X, y = _training_data(220)
    model = DynamicTreeRegressor(
        DynamicTreeConfig(n_particles=1000), rng=np.random.default_rng(1)
    )
    model.fit(X[:200], y[:200])
    return model, X, y


@pytest.mark.benchmark(group="model-update")
@pytest.mark.parametrize("kernel", ["batched", "fast", "compiled", "reference"])
def test_bench_particle_update_1000(benchmark, paper_scale_model, kernel):
    """Algorithm 1's per-observation model update at 1 000 particles.

    ``batched`` is the production kernel on the default NumPy backend
    (batched reweight, copy-on-write resample, three-phase propagate);
    ``fast`` is the same kernel with ``DynamicTreeConfig(float_mode="fast")``
    (fused reductions and SIMD transcendentals, tolerance-tested instead of
    bit-exact); ``compiled`` dispatches through
    ``DynamicTreeConfig(backend="numba")`` — the njit kernels when numba is
    installed, the automatic NumPy fallback otherwise; ``reference`` is the
    pre-batching per-particle Python loop kept as the equivalence oracle.
    All absorb the same held-out observations from identical tree state, so
    the quartet measures the update-kernel speedup directly.  One untimed
    warm-up round absorbs JIT compilation and allocator warm-up.

    The last timed round's per-phase wall-clock split
    (``DynamicTreeRegressor.phase_timings``) lands in the JSON record's
    ``extra_info``, so BENCH_model.json says *where* the milliseconds went,
    not just how many there were.
    """
    fitted, X, y = paper_scale_model
    rounds = 3 if kernel == "reference" else 5
    holder = {}

    def run_updates():
        model = holder["model"]
        for i in range(200, 205):
            model.update(X[i], float(y[i]))

    def fresh_state():
        if kernel == "reference":
            model = _as_reference(fitted)
        else:
            model = copy.deepcopy(fitted)
            if kernel == "compiled":
                model._config = dataclasses.replace(model.config, backend="numba")
            elif kernel == "fast":
                model._config = dataclasses.replace(
                    model.config, float_mode="fast"
                )
            # Zero the fit's accumulators so extra_info reports exactly the
            # round's five updates.
            model.reset_phase_timings()
        holder["model"] = model
        return (), {}

    benchmark.pedantic(
        run_updates, setup=fresh_state, rounds=rounds, iterations=1, warmup_rounds=1
    )
    if kernel != "reference":
        benchmark.extra_info["phase_timings_ms"] = {
            phase: round(seconds * 1000.0, 3)
            for phase, seconds in holder["model"].phase_timings.items()
        }


@pytest.mark.benchmark(group="forest-maintenance")
@pytest.mark.parametrize("forest", ["incremental", "rebuild"])
def test_bench_forest_maintenance_1000(benchmark, paper_scale_model, forest):
    """First predict/ALC batch after an update at 1 000 particles.

    This is the per-iteration cost the incremental forest amortises: the
    untimed setup absorbs one observation, the timed body scores a
    candidate batch — paying the forest repair (``incremental``) or the
    full ``FlatForest.from_trees`` rebuild (``rebuild``) plus the routing
    itself.  Their ratio in ``BENCH_model.json`` is the tracked win of the
    incremental maintenance; equivalence is pinned separately by
    ``tests/test_incremental_forest.py``.
    """
    fitted, X, y = paper_scale_model
    model = copy.deepcopy(fitted)
    if forest == "rebuild":
        model._config = dataclasses.replace(model.config, incremental_forest=False)
    rng = np.random.default_rng(5)
    candidates = rng.uniform(-1.5, 1.5, size=(20, X.shape[1]))
    reference = candidates[:10]
    model.predict(candidates[:1])  # build the initial forest outside the timing
    state = {"i": 0}

    def absorb_one():
        i = 200 + state["i"] % 20
        state["i"] += 1
        model.update(X[i], float(y[i]))
        return (), {}

    def score_batch():
        model.expected_average_variance(candidates, reference)
        model.predict(candidates[:5])

    benchmark.pedantic(
        score_batch, setup=absorb_one, rounds=40, iterations=1, warmup_rounds=1
    )


@pytest.mark.benchmark(group="model-update")
def test_bench_particle_update_5000(benchmark, bench_scale_is_laptop):
    """The batched kernel at the paper's full 5 000 particles.

    Only measured at ``--bench-scale=laptop`` (the fit alone takes ~1 min);
    the fast tier-1 configuration records the 1 000-particle pair above.
    """
    if not bench_scale_is_laptop:
        pytest.skip("5000-particle update benchmark runs at --bench-scale=laptop")
    X, y = _training_data(170)
    model = DynamicTreeRegressor(
        DynamicTreeConfig(n_particles=5000), rng=np.random.default_rng(1)
    )
    model.fit(X[:150], y[:150])

    def run_updates():
        for i in range(150, 155):
            model.update(X[i], float(y[i]))

    benchmark.pedantic(run_updates, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="model-update")
@pytest.mark.parametrize("size", [50, 200, 400])
def test_bench_gaussian_process_update(benchmark, size):
    X, y = _training_data(size)
    probe = np.zeros((1, X.shape[1]))

    def update_and_predict():
        model = GaussianProcessRegressor()
        model.fit(X, y)
        model.update(X[size // 2], float(y[size // 2]))
        model.predict(probe)

    benchmark(update_and_predict)


@pytest.mark.benchmark(group="model-update")
@pytest.mark.parametrize("mode", ["rank1", "full-refit"])
def test_bench_gaussian_process_sequential_updates(benchmark, mode):
    """The GP's sequential-update cost with and without the rank-1 path.

    ``rank1`` extends the Cholesky factor (O(n²) per observation, periodic
    refits); ``full-refit`` restores the old behaviour of an O(n³)
    refactorisation plus hyper-parameter re-estimation per observation —
    the Section-3.2 comparison the dynamic tree is measured against.
    """
    X, y = _training_data(420)
    interval = 25 if mode == "rank1" else 1
    probe = np.zeros((1, X.shape[1]))
    holder = {}

    def sequential_updates():
        model = holder["model"]
        for i in range(400, 420):
            model.update(X[i], float(y[i]))
            model.predict(probe)

    def fresh_model():
        model = GaussianProcessRegressor(refit_interval=interval)
        model.fit(X[:400], y[:400])
        model.predict(probe)
        holder["model"] = model
        return (), {}

    benchmark.pedantic(
        sequential_updates, setup=fresh_model, rounds=3, iterations=1, warmup_rounds=1
    )


@pytest.mark.benchmark(group="substrate")
def test_bench_cost_model_evaluation(benchmark):
    mm = get_benchmark("mm")
    rng = np.random.default_rng(2)
    configurations = [mm.search_space.random_configuration(rng) for _ in range(200)]

    def evaluate_all():
        return sum(mm.true_runtime(c) for c in configurations)

    total = benchmark(evaluate_all)
    assert total > 0


@pytest.mark.benchmark(group="substrate")
def test_bench_profiler_throughput(benchmark):
    mm = get_benchmark("mm")

    def profile_batch():
        profiler = Profiler(mm, rng=np.random.default_rng(3))
        for _ in range(50):
            configuration = mm.search_space.random_configuration(profiler._rng)
            profiler.measure(configuration, repetitions=3)
        return profiler.ledger.total_seconds

    cost = benchmark(profile_batch)
    assert cost > 0
