"""Benchmark regenerating Figure 1 (mm unroll plane: error vs sample size).

Profiles the mm unroll-factor plane and prints the Figure 1 summary: the MAE
a single observation would incur, how many observations a post-hoc optimal
plan keeps per point, and the total-run reduction (paper: 31,500 runs for
the fixed plan vs 15,131 with perfect knowledge, roughly half).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import run_figure1


@pytest.mark.benchmark(group="figure1")
def test_bench_figure1(benchmark, scale_factory):
    scale = scale_factory(("mm",))
    result = benchmark.pedantic(
        run_figure1, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())
    assert result.total_optimal_runs < result.total_fixed_plan_runs
