"""Benchmark for the noise-injection robustness study (paper's future work).

Scales the calibrated noise of one benchmark and reruns the sampling-plan
comparison at each level, printing how the variable plan's advantage evolves
as the simulated machine becomes more heavily loaded.
"""

from __future__ import annotations

import pytest

from repro.experiments.noise_robustness import run_noise_robustness


@pytest.mark.benchmark(group="noise-robustness")
def test_bench_noise_robustness(benchmark, scale_factory):
    scale = scale_factory(("mm",))
    result = benchmark.pedantic(
        run_noise_robustness,
        kwargs={
            "scale": scale,
            "benchmark_name": "mm",
            "noise_multipliers": (0.5, 1.0, 4.0),
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render())
    assert len(result.levels) == 3
