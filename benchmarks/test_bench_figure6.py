"""Benchmark regenerating Figure 6 (RMSE vs evaluation time, three plans).

Produces the learning curves for two of the paper's six Figure 6 panels: a
noisy benchmark (adi) where the single-observation plan should lag, and a
quiet one (atax) where a single observation is enough and the 35-sample
baseline wastes time.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure6 import run_figure6

PANELS = ("adi", "atax")


@pytest.mark.benchmark(group="figure6")
def test_bench_figure6(benchmark, scale_factory):
    scale = scale_factory(PANELS)
    result = benchmark.pedantic(
        run_figure6,
        kwargs={"scale": scale, "benchmarks": list(PANELS)},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render())
    for panel in result.panels.values():
        for plan in ("all observations", "one observation", "variable observations"):
            assert len(panel.series(plan)) >= 2
