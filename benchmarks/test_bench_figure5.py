"""Benchmark regenerating Figure 5 (per-benchmark profiling-cost reduction bars).

Reruns the Table 1 comparison on a subset of benchmarks and prints the
speed-up bars; in the paper the bars range from 0.29x (adi) to 26x (gemver)
with a geometric mean of 3.97x.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure5 import run_figure5

BENCHMARKS = ("mm", "atax", "gemver")


@pytest.mark.benchmark(group="figure5")
def test_bench_figure5(benchmark, scale_factory):
    scale = scale_factory(BENCHMARKS)
    result = benchmark.pedantic(
        run_figure5, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())
    assert len(result.bars) == len(BENCHMARKS)
