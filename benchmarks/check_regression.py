"""Perf-regression gate over the tracked model benchmarks.

``python benchmarks/check_regression.py [--baseline REF_OR_FILE]
[--threshold 0.20] [--group predict-alc --group model-update]``

Compares the working tree's ``BENCH_model.json`` (pytest-benchmark JSON,
refreshed by running the benchmark harness) against a committed baseline —
by default the copy at ``git HEAD`` — and fails (exit code 1) when any
benchmark in the gated groups regresses by more than the threshold on mean
time.  This is the ROADMAP's "track BENCH_model.json across PRs" gate: run
the benchmarks, then this script, before shipping model-path changes.

Benchmarks present on only one side are reported but never fail the gate
(new benchmarks appear, retired ones disappear); only a genuine slowdown of
a benchmark measured on both sides does.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import Dict, Iterable, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_model.json"
DEFAULT_GROUPS = (
    "predict-alc",
    "model-update",
    "forest-maintenance",
    "session-overhead",
    "batch-acquisition",
    "broker-overhead",
)
DEFAULT_THRESHOLD = 0.20


def _group_means(payload: dict, groups: Iterable[str]) -> Dict[str, Tuple[str, float]]:
    """``name -> (group, mean seconds)`` for benchmarks in the gated groups."""
    wanted = set(groups)
    out: Dict[str, Tuple[str, float]] = {}
    for bench in payload.get("benchmarks", []):
        group = bench.get("group")
        name = bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if group in wanted and name and isinstance(mean, (int, float)):
            out[name] = (group, float(mean))
    return out


def _load_baseline(spec: str) -> Optional[dict]:
    """Baseline JSON from a file path, or from ``git show <ref>:BENCH_model.json``."""
    path = pathlib.Path(spec)
    if path.is_file():
        return json.loads(path.read_text("utf-8"))
    try:
        blob = subprocess.run(
            ["git", "show", f"{spec}:BENCH_model.json"],
            cwd=REPO_ROOT,
            capture_output=True,
            check=True,
            text=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    return json.loads(blob)


def compare(
    baseline: dict,
    current: dict,
    groups: Iterable[str] = DEFAULT_GROUPS,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """``(regressions, notes)`` between two pytest-benchmark payloads.

    A regression is a benchmark present in both payloads whose current mean
    exceeds the baseline mean by more than ``threshold`` (relative).
    """
    base = _group_means(baseline, groups)
    cur = _group_means(current, groups)
    regressions: List[str] = []
    notes: List[str] = []
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            notes.append(f"NEW       {name}: {cur[name][1] * 1e3:.3f} ms (no baseline)")
            continue
        if name not in cur:
            notes.append(f"RETIRED   {name}: present only in baseline")
            continue
        group, base_mean = base[name]
        _, cur_mean = cur[name]
        ratio = cur_mean / base_mean if base_mean > 0 else float("inf")
        line = (
            f"{group:12s} {name}: {base_mean * 1e3:.3f} ms -> {cur_mean * 1e3:.3f} ms"
            f" ({ratio:.2f}x)"
        )
        if cur_mean > base_mean * (1.0 + threshold):
            regressions.append("REGRESSED " + line)
        else:
            notes.append(("IMPROVED  " if ratio < 1.0 else "OK        ") + line)
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="HEAD",
        help="git ref whose BENCH_model.json is the baseline, or a JSON file path",
    )
    parser.add_argument(
        "--current",
        default=str(BENCH_JSON),
        help="current benchmark JSON (default: the tracked BENCH_model.json)",
    )
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument(
        "--group",
        action="append",
        dest="groups",
        help=f"benchmark group to gate (repeatable; default: {', '.join(DEFAULT_GROUPS)})",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 10:
        parser.error("--threshold must be a sane relative fraction")
    current_path = pathlib.Path(args.current)
    if not current_path.is_file():
        print(f"no current benchmark record at {current_path}; run the benchmarks first")
        return 2
    current = json.loads(current_path.read_text("utf-8"))
    baseline = _load_baseline(args.baseline)
    if baseline is None:
        print(f"no baseline BENCH_model.json at {args.baseline!r}; skipping gate")
        return 0
    groups = args.groups or list(DEFAULT_GROUPS)
    regressions, notes = compare(baseline, current, groups, args.threshold)
    for line in notes:
        print(line)
    if regressions:
        print()
        for line in regressions:
            print(line)
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} on mean time"
        )
        return 1
    print(f"\nOK: no gated benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
