"""Benchmark pinning the ResilientBroker happy-path overhead.

The fault-tolerance PR wrapped live measurement in
:class:`~repro.measurement.faults.ResilientBroker` (retries, deadlines,
prior-statistics sanity checks).  On the happy path with no deadline
configured the wrapper is one direct inner call plus a cheap sanity scan
of the result, and this file keeps that promise honest two ways:

* the ``broker-overhead`` group records the absolute wall time of a
  request stream served by a bare :class:`ProfilerBroker` and by the same
  broker wrapped in a ``ResilientBroker``, tracked in ``BENCH_model.json``
  and gated by ``check_regression.py``;
* ``test_resilient_overhead_under_five_percent`` asserts the wrapper
  costs less than 5% over the bare broker, comparing back-to-back pairs
  so machine noise cancels instead of accumulating.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.measurement.broker import MeasurementRequest, ProfilerBroker
from repro.measurement.faults import ResilientBroker
from repro.measurement.profiler import Profiler
from repro.measurement.stats import RunningStats
from repro.spapt.suite import get_benchmark

N_REQUESTS = 200
REPETITIONS = 3


@pytest.fixture(scope="module")
def mm():
    return get_benchmark("mm")


@pytest.fixture(scope="module")
def requests(mm):
    """A fixed request stream, every request carrying genuine prior
    statistics so the wrapper's outlier scan actually runs."""
    rng = np.random.default_rng(11)
    configurations = mm.search_space.sample_distinct(N_REQUESTS, rng)
    profiler = Profiler(mm, rng=np.random.default_rng(5))
    stream = []
    for configuration in configurations:
        observations = profiler.measure(configuration, repetitions=REPETITIONS)
        prior = RunningStats()
        prior.extend(observations)
        stream.append(
            MeasurementRequest(
                benchmark=mm.name,
                configuration=configuration,
                repetitions=REPETITIONS,
                prior_stats=prior,
            )
        )
    return stream


def _drive(mm, stream, wrap):
    broker = ProfilerBroker(Profiler(mm, rng=np.random.default_rng(3)))
    if wrap:
        broker = ResilientBroker(broker, max_retries=3)
    return [broker.measure(request) for request in stream]


@pytest.mark.benchmark(group="broker-overhead")
def test_bench_bare_profiler_broker(benchmark, mm, requests):
    results = benchmark.pedantic(
        _drive, args=(mm, requests, False), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert len(results) == N_REQUESTS


@pytest.mark.benchmark(group="broker-overhead")
def test_bench_resilient_broker(benchmark, mm, requests):
    results = benchmark.pedantic(
        _drive, args=(mm, requests, True), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert len(results) == N_REQUESTS


def test_resilient_overhead_under_five_percent(mm, requests):
    """The happy-path wrapper costs < 5% over the bare broker.

    Both arms serve the identical request stream from identically seeded
    profilers, so the best back-to-back pair isolates the wrapper's
    dispatch + sanity-scan cost; a loaded machine can only slow a run
    down, never speed it up, so noise cannot fake a pass on every pair.
    """
    bare = _drive(mm, requests, False)
    wrapped = _drive(mm, requests, True)
    assert [r.runtimes for r in bare] == [r.runtimes for r in wrapped]

    pair_ratios = []
    for _ in range(4):
        for _ in range(5):
            start = time.perf_counter()
            _drive(mm, requests, False)
            bare_seconds = time.perf_counter() - start
            start = time.perf_counter()
            _drive(mm, requests, True)
            wrapped_seconds = time.perf_counter() - start
            pair_ratios.append(wrapped_seconds / bare_seconds)
        if min(pair_ratios) <= 1.05:
            break
    best = min(pair_ratios)
    assert best <= 1.05, (
        f"ResilientBroker is {best - 1:+.1%} over the bare broker in its "
        f"best back-to-back pair "
        f"(ratios: {', '.join(f'{r:.2f}' for r in pair_ratios)})"
    )
