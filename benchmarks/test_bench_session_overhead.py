"""Benchmark pinning the ask/tell session dispatch overhead.

The PR that inverted the learning loop (``TuningSession`` + measurement
brokers) promised the indirection is free: ``ActiveLearner.run`` is a thin
ask/measure/tell driver producing a bit-identical trajectory.  This file
keeps that promise honest two ways:

* the ``session-overhead`` group records the absolute wall time of the
  session-driven run and of a frozen copy of the pre-refactor inline loop
  (the same numeric work on the same RNG stream), tracked in
  ``BENCH_model.json`` and gated by ``check_regression.py``;
* ``test_dispatch_overhead_under_five_percent`` asserts the session driver
  costs less than 5% over the inline loop at bench scale, comparing
  back-to-back pairs so machine noise cancels instead of accumulating.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.acquisition import ALCAcquisition
from repro.core.candidates import CandidatePool
from repro.core.curves import CurvePoint, LearningCurve
from repro.core.evaluation import build_test_set, evaluate_rmse
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import sequential_plan
from repro.measurement.profiler import Profiler
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.spapt.suite import get_benchmark

CONFIG = LearnerConfig(
    n_initial=5,
    seed_observations=10,
    n_candidates=30,
    max_training_examples=40,
    reference_size=20,
    evaluation_interval=10,
    tree_particles=15,
)


@pytest.fixture(scope="module")
def mm():
    return get_benchmark("mm")


@pytest.fixture(scope="module")
def test_set(mm):
    return build_test_set(mm, size=60, observations=4, rng=np.random.default_rng(7))


def _session_run(mm, test_set):
    learner = ActiveLearner(
        mm,
        plan=sequential_plan(5),
        config=CONFIG,
        rng=np.random.default_rng(2017),
    )
    return learner.run(test_set)


def _inline_run(mm, test_set):
    """Frozen pre-refactor inline loop: identical numeric work and RNG
    stream as the session driver, no request/result dispatch."""
    config = CONFIG
    plan = sequential_plan(5)
    rng = np.random.default_rng(2017)
    space = mm.search_space
    profiler = Profiler(mm, rng=rng)
    pool = CandidatePool(
        space,
        max_observations=plan.max_observations_per_example,
        revisit=plan.revisit,
    )
    model = DynamicTreeRegressor(
        DynamicTreeConfig(n_particles=config.tree_particles, backend=config.tree_backend),
        rng=np.random.default_rng(rng.integers(2 ** 63)),
    )
    curve = LearningCurve(plan.name)
    acquisition = ALCAcquisition()

    def record_point(training_examples):
        curve.add(
            CurvePoint(
                cost_seconds=profiler.ledger.total_seconds,
                rmse=evaluate_rmse(model, test_set),
                training_examples=training_examples,
                observations=profiler.ledger.executions,
            )
        )

    n_seed = min(config.n_initial, space.size)
    seed_configurations = space.sample_distinct(n_seed, rng)
    seed_features = mm.features_many(seed_configurations)
    seed_targets = []
    for configuration in seed_configurations:
        profiler.measure(configuration, repetitions=config.seed_observations)
        pool.record(configuration, config.seed_observations)
        seed_targets.append(profiler.mean_runtime(configuration))
    model.fit(seed_features, np.asarray(seed_targets))
    record_point(n_seed)
    training_examples = n_seed

    for iteration in range(n_seed, config.max_training_examples):
        if pool.exhausted():
            break
        candidates = pool.draw(config.n_candidates, rng)
        if not candidates:
            break
        candidate_features = mm.features_many(candidates)
        size = min(config.reference_size, candidate_features.shape[0])
        indices = rng.choice(candidate_features.shape[0], size=size, replace=False)
        index = acquisition.select(
            model, candidate_features, candidate_features[indices], rng
        )
        chosen = candidates[index]
        observations = np.asarray(
            profiler.measure(chosen, repetitions=plan.observations_per_selection)
        )
        pool.record(chosen, len(observations))
        model.update(mm.features(chosen), float(np.mean(observations)))
        training_examples = iteration + 1
        if (
            (training_examples - n_seed) % config.evaluation_interval == 0
            or training_examples == config.max_training_examples
        ):
            record_point(training_examples)

    if not curve.points or curve.points[-1].training_examples != training_examples:
        record_point(training_examples)
    return curve


@pytest.mark.benchmark(group="session-overhead")
def test_bench_session_driver(benchmark, mm, test_set):
    result = benchmark.pedantic(
        _session_run, args=(mm, test_set), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.training_examples == CONFIG.max_training_examples


@pytest.mark.benchmark(group="session-overhead")
def test_bench_inline_loop(benchmark, mm, test_set):
    curve = benchmark.pedantic(
        _inline_run, args=(mm, test_set), rounds=3, iterations=1, warmup_rounds=1
    )
    assert curve.points[-1].training_examples == CONFIG.max_training_examples


def test_dispatch_overhead_under_five_percent(mm, test_set):
    """Ask/tell + broker dispatch costs < 5% over the inline loop.

    Both callables do the same numeric work on the same RNG stream, so the
    best-of-N difference isolates the dispatch layer.  Minima (not means)
    make the comparison robust to background interference: a loaded
    machine can only slow a run down, never speed it up.
    """
    # The two trajectories must actually agree, or the timing comparison
    # is meaningless.
    session_result = _session_run(mm, test_set)
    inline_curve = _inline_run(mm, test_set)
    assert [
        (p.cost_seconds, p.rmse, p.training_examples) for p in session_result.curve.points
    ] == [(p.cost_seconds, p.rmse, p.training_examples) for p in inline_curve.points]

    # Timer jitter on a shared box dwarfs the dispatch layer (individual
    # runs vary by tens of percent), so compare back-to-back *pairs*: each
    # pair shares whatever load the machine is under at that instant, and
    # the best pair isolates the dispatch cost.  A genuine regression
    # inflates every pair; noise cannot deflate all of them.
    pair_ratios = []
    for _ in range(4):
        for _ in range(5):
            start = time.perf_counter()
            _inline_run(mm, test_set)
            inline_seconds = time.perf_counter() - start
            start = time.perf_counter()
            _session_run(mm, test_set)
            session_seconds = time.perf_counter() - start
            pair_ratios.append(session_seconds / inline_seconds)
        if min(pair_ratios) <= 1.05:
            break
    best = min(pair_ratios)
    assert best <= 1.05, (
        f"session driver is {best - 1:+.1%} over the inline loop in its best "
        f"back-to-back pair (ratios: {', '.join(f'{r:.2f}' for r in pair_ratios)})"
    )
