"""Benchmark for batch acquisition: ``ask(5)`` vs five ``ask(1)`` cycles.

Greedy-ALC-fantasy batch selection re-scores the candidate set after each
fantasized update, so one ``ask(5)`` does roughly the acquisition work of
five sequential asks *plus* the fantasy model copies/updates — but it
amortizes the candidate draw, the reference draw and the request
book-keeping, and it is the call a parallel-measurement deployment sits
on.  The ``batch-acquisition`` group records both sides of that trade in
``BENCH_model.json`` so ``check_regression.py`` catches either cycle
getting slower:

* ``test_bench_ask5_batch_cycle`` — one full ``ask(5)`` + five tells;
* ``test_bench_five_ask1_cycles`` — five ``ask(1)`` + tell cycles doing
  the same amount of learning from the same primed session.

Both sides start every round from a deepcopy of the same primed session
(seeding finished, model fitted), so the numbers compare like with like.

The fantasy copy is the cheap copy-on-write
``DynamicTreeRegressor.fantasy_copy`` (shared particles and
compilations, trees flagged shared on both sides), not a
``copy.deepcopy`` of the model — profiling shows the copy itself no
longer registers.  The residual ~1.4× gap of ``ask(5)`` over five
``ask(1)`` is inherent to the kriging-believer recipe at this scale:
the batch cycle performs nine model updates (five real tells plus four
fantasized believes) against the sequential cycle's five, and the
updates dominate the cycle.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.acquisition import GreedyALCFantasyAcquisition
from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import sequential_plan
from repro.measurement.broker import ProfilerBroker, measure_batch
from repro.measurement.profiler import Profiler
from repro.spapt.suite import get_benchmark

CONFIG = LearnerConfig(
    n_initial=5,
    seed_observations=10,
    n_candidates=30,
    max_training_examples=40,
    reference_size=20,
    tree_particles=15,
)

BATCH = 5


@pytest.fixture(scope="module")
def mm():
    return get_benchmark("mm")


@pytest.fixture(scope="module")
def primed(mm):
    """A session past seeding with a few learning steps folded, frozen as
    the common starting state for every benchmark round."""
    learner = ActiveLearner(
        mm,
        plan=sequential_plan(5),
        acquisition=GreedyALCFantasyAcquisition(),
        config=CONFIG,
        rng=np.random.default_rng(2017),
    )
    test_set = build_test_set(
        mm, size=60, observations=4, rng=np.random.default_rng(7)
    )
    session = learner.start_session(test_set)
    broker = ProfilerBroker(Profiler(mm, rng=session.rng))
    while session.training_examples < CONFIG.n_initial + 3:
        session.tell(broker.measure(session.ask()))
    return session


def _clone(mm, primed):
    session = copy.deepcopy(primed)
    session.attach_benchmark(mm)
    broker = ProfilerBroker(Profiler(mm, rng=session.rng))
    return session, broker


def _batch_cycle(session, broker):
    requests = session.ask(BATCH)
    for result in measure_batch(broker, requests):
        session.tell(result)
    return len(requests)


def _sequential_cycles(session, broker):
    served = 0
    for _ in range(BATCH):
        request = session.ask()
        if request is None:
            break
        session.tell(broker.measure(request))
        served += 1
    return served


@pytest.mark.benchmark(group="batch-acquisition")
def test_bench_ask5_batch_cycle(benchmark, mm, primed):
    served = benchmark.pedantic(
        _batch_cycle,
        setup=lambda: (_clone(mm, primed), {}),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert served == BATCH


@pytest.mark.benchmark(group="batch-acquisition")
def test_bench_five_ask1_cycles(benchmark, mm, primed):
    served = benchmark.pedantic(
        _sequential_cycles,
        setup=lambda: (_clone(mm, primed), {}),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert served == BATCH


def test_batch_and_sequential_learn_the_same_amount(mm, primed):
    """Sanity anchor for the timing comparison: both cycles advance the
    session by the same number of training examples."""
    batch_session, batch_broker = _clone(mm, primed)
    _batch_cycle(batch_session, batch_broker)
    sequential_session, sequential_broker = _clone(mm, primed)
    _sequential_cycles(sequential_session, sequential_broker)
    assert (
        batch_session.training_examples
        == sequential_session.training_examples
        == primed.training_examples + BATCH
    )
