"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation runs the active-learning loop with one ingredient changed and
reports the resulting model error and profiling cost, so the contribution of
that ingredient can be judged:

* **acquisition function** — ALC (the paper's choice) vs ALM vs random
  selection;
* **surrogate model** — dynamic tree (the paper's choice) vs Gaussian
  process vs k-NN;
* **candidate revisiting** — the sequential plan vs a no-revisit
  single-observation plan (i.e. active learning without sequential analysis);
* **number of dynamic-tree particles** — the paper uses 5 000 via dynaTree;
  this shows how few particles the acquisition actually needs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acquisition import make_acquisition
from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import fixed_plan, sequential_plan
from repro.models.baselines import KNNRegressor
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.models.gp import GaussianProcessRegressor
from repro.spapt.suite import get_benchmark

CONFIG = LearnerConfig(
    n_initial=5,
    seed_observations=8,
    n_candidates=25,
    max_training_examples=60,
    reference_size=18,
    evaluation_interval=10,
    tree_particles=15,
)


def _run(benchmark_name, plan, acquisition_name="alc", model_factory=None, seed=11):
    benchmark = get_benchmark(benchmark_name)
    rng = np.random.default_rng(seed)
    test_set = build_test_set(benchmark, size=100, observations=6, rng=rng)
    learner = ActiveLearner(
        benchmark,
        plan=plan,
        acquisition=make_acquisition(acquisition_name),
        config=CONFIG,
        model_factory=model_factory,
        rng=np.random.default_rng(seed + 1),
    )
    return learner.run(test_set)


@pytest.mark.benchmark(group="ablation-acquisition")
@pytest.mark.parametrize("acquisition", ["alc", "alm", "random"])
def test_bench_acquisition_ablation(benchmark, acquisition):
    result = benchmark.pedantic(
        _run,
        args=("mm", sequential_plan(10), acquisition),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print(
        f"\nacquisition={acquisition}: best RMSE {result.curve.best_error:.4f}, "
        f"cost {result.total_cost_seconds:.0f}s, "
        f"distinct configurations {result.distinct_configurations}"
    )
    assert result.curve.best_error > 0


@pytest.mark.benchmark(group="ablation-model")
@pytest.mark.parametrize("model_name", ["dynamic-tree", "gp", "knn"])
def test_bench_surrogate_model_ablation(benchmark, model_name):
    factories = {
        "dynamic-tree": None,  # the learner's default
        "gp": lambda rng: GaussianProcessRegressor(),
        "knn": lambda rng: KNNRegressor(k=5),
    }
    result = benchmark.pedantic(
        _run,
        args=("mm", sequential_plan(10), "alc", factories[model_name]),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print(
        f"\nsurrogate={model_name}: best RMSE {result.curve.best_error:.4f}, "
        f"cost {result.total_cost_seconds:.0f}s"
    )
    assert result.curve.best_error > 0


@pytest.mark.benchmark(group="ablation-revisit")
@pytest.mark.parametrize("revisit", ["sequential", "no-revisit"])
def test_bench_revisiting_ablation(benchmark, revisit):
    plan = sequential_plan(10) if revisit == "sequential" else fixed_plan(1)
    result = benchmark.pedantic(
        _run,
        args=("correlation", plan),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print(
        f"\n{revisit}: best RMSE {result.curve.best_error:.4f}, "
        f"cost {result.total_cost_seconds:.0f}s, "
        f"observations {result.total_observations}"
    )
    assert result.total_observations > 0


@pytest.mark.benchmark(group="ablation-particles")
@pytest.mark.parametrize("particles", [5, 15, 40])
def test_bench_particle_count_ablation(benchmark, particles):
    def factory(rng):
        return DynamicTreeRegressor(DynamicTreeConfig(n_particles=particles), rng=rng)

    result = benchmark.pedantic(
        _run,
        args=("mm", sequential_plan(10), "alc", factory),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print(
        f"\nparticles={particles}: best RMSE {result.curve.best_error:.4f}, "
        f"cost {result.total_cost_seconds:.0f}s"
    )
    assert result.curve.best_error > 0
