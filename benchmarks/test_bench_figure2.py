"""Benchmark regenerating Figure 2 (adi runtime vs unroll factor, one sample).

Sweeps the unroll factor of adi's first loop with one observation per point
and prints the series; the expected shape is a plateau (~2.1s in the paper)
climbing from around a factor of 10 to a higher plateau (~3.1s).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import run_figure2


@pytest.mark.benchmark(group="figure2")
def test_bench_figure2(benchmark, scale_factory):
    scale = scale_factory(("adi",))
    result = benchmark.pedantic(
        run_figure2, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())
    assert result.high_plateau > result.low_plateau
