"""Shared configuration for the benchmark harness.

Every benchmark runs a scaled-down version of one of the paper's
tables/figures (or an ablation of a design choice) and prints the same
rows/series the paper reports.  The scale is deliberately small so the whole
harness finishes in a few minutes; pass ``--bench-scale=laptop`` for the
larger configuration used to fill EXPERIMENTS.md, or edit
:class:`repro.experiments.ExperimentScale` for anything bigger.
"""

from __future__ import annotations

import pytest

from repro.core.learner import LearnerConfig
from repro.experiments.config import ExperimentScale


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="bench",
        choices=["bench", "laptop"],
        help="Scale of the experiment benchmarks (default: bench, a fast configuration).",
    )


def _bench_scale(benchmarks) -> ExperimentScale:
    """A scale slightly larger than smoke but still fast enough to benchmark."""
    return ExperimentScale(
        name="bench",
        benchmarks=tuple(benchmarks),
        learner=LearnerConfig(
            n_initial=5,
            seed_observations=10,
            n_candidates=30,
            max_training_examples=70,
            reference_size=20,
            evaluation_interval=10,
            tree_particles=15,
        ),
        repetitions=1,
        test_size=120,
        test_observations=8,
        dataset_configurations=150,
        dataset_observations=20,
        figure1_grid=10,
        seed=2017,
    )


@pytest.fixture(scope="session")
def scale_factory(request):
    """Factory returning an ExperimentScale restricted to the given benchmarks."""
    choice = request.config.getoption("--bench-scale")

    def factory(benchmarks):
        if choice == "laptop":
            return ExperimentScale.laptop(benchmarks=benchmarks)
        return _bench_scale(benchmarks)

    return factory
