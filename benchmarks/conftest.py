"""Shared configuration for the benchmark harness.

Every benchmark runs a scaled-down version of one of the paper's
tables/figures (or an ablation of a design choice) and prints the same
rows/series the paper reports.  The scale is deliberately small so the whole
harness finishes in a few minutes; pass ``--bench-scale=laptop`` for the
larger configuration used to fill EXPERIMENTS.md, or edit
:class:`repro.experiments.ExperimentScale` for anything bigger.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

import pytest

from repro.core.learner import LearnerConfig
from repro.experiments.config import ExperimentScale

#: Machine-readable benchmark results land here (pytest-benchmark's JSON
#: export), so the perf trajectory of the model hot paths is tracked across
#: PRs.  An explicit ``--benchmark-json=...`` on the command line wins.
BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_model.json"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="bench",
        choices=["bench", "laptop"],
        help="Scale of the experiment benchmarks (default: bench, a fast configuration).",
    )


def pytest_configure(config):
    # Warm up before every timed measurement with exactly ONE throwaway run
    # of the benchmarked callable: JIT compilation on the numba backend and
    # NumPy's allocator warm-up must never pollute recorded means.  The
    # warmup-iterations pin matters: pytest-benchmark's default of 100 000
    # would replay *every calibrated round* as warm-up, which grows the
    # stateful update benchmarks' models before timing starts and inflates
    # their means several-fold.  Calibrated benchmarks honour these options
    # directly; the ``pedantic`` benchmarks pass an explicit
    # ``warmup_rounds=1`` (the options do not apply there).  Explicit
    # ``--benchmark-warmup*`` flags on the command line win.
    if not any(
        arg.startswith("--benchmark-warmup") for arg in config.invocation_params.args
    ) and hasattr(config.option, "benchmark_warmup"):
        config.option.benchmark_warmup = True
        config.option.benchmark_warmup_iterations = 1

    benchmark_json = getattr(config.option, "benchmark_json", "missing")
    if benchmark_json is None:
        # pytest-benchmark is installed and no JSON target was given: export
        # to a scratch file first and publish to the tracked BENCH_model.json
        # only once the run has produced results (see pytest_unconfigure) —
        # opening the tracked file here would truncate the previous record on
        # every collection, aborted run or benchmark-free invocation.
        handle = tempfile.NamedTemporaryFile(
            mode="wb", suffix=".json", prefix="bench-model-", delete=False
        )
        config._bench_json_scratch = handle.name
        config.option.benchmark_json = handle


def pytest_unconfigure(config):
    scratch = getattr(config, "_bench_json_scratch", None)
    if scratch is None:
        return
    try:
        with open(scratch, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("benchmarks"):
            # Merge into the tracked record by benchmark name, so a partial
            # run (one file, a -k subset) refreshes its own entries without
            # dropping the rest of the perf history.
            try:
                previous = json.loads(BENCH_JSON_PATH.read_text("utf-8"))
                measured = {bench["name"] for bench in data["benchmarks"]}
                kept = [
                    bench
                    for bench in previous.get("benchmarks", [])
                    if bench.get("name") not in measured
                ]
                data["benchmarks"] = sorted(
                    kept + data["benchmarks"], key=lambda bench: bench.get("name", "")
                )
            except (OSError, ValueError, KeyError, TypeError):
                pass
            BENCH_JSON_PATH.write_text(json.dumps(data, indent=4) + "\n", "utf-8")
    except (OSError, ValueError):
        # Aborted or benchmark-free run: keep the previous tracked record.
        pass
    finally:
        try:
            os.unlink(scratch)
        except OSError:
            pass


def _bench_scale(benchmarks) -> ExperimentScale:
    """A scale slightly larger than smoke but still fast enough to benchmark."""
    return ExperimentScale(
        name="bench",
        benchmarks=tuple(benchmarks),
        learner=LearnerConfig(
            n_initial=5,
            seed_observations=10,
            n_candidates=30,
            max_training_examples=70,
            reference_size=20,
            evaluation_interval=10,
            tree_particles=15,
        ),
        repetitions=1,
        test_size=120,
        test_observations=8,
        dataset_configurations=150,
        dataset_observations=20,
        figure1_grid=10,
        seed=2017,
    )


@pytest.fixture(scope="session")
def bench_scale_is_laptop(request):
    """True when the harness runs at the larger --bench-scale=laptop setting."""
    return request.config.getoption("--bench-scale") == "laptop"


@pytest.fixture(scope="session")
def scale_factory(request):
    """Factory returning an ExperimentScale restricted to the given benchmarks."""
    choice = request.config.getoption("--bench-scale")

    def factory(benchmarks):
        if choice == "laptop":
            return ExperimentScale.laptop(benchmarks=benchmarks)
        return _bench_scale(benchmarks)

    return factory
