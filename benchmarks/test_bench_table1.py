"""Benchmark regenerating Table 1 (lowest common RMSE, cost, speed-up).

Runs the three sampling plans (35 observations, 1 observation, variable) on a
subset of SPAPT benchmarks and prints the Table 1 rows: the lowest error
level every plan reaches, the simulated profiling cost each plan needs to
first reach it, and the speed-up of the paper's variable plan over the
35-observation baseline (paper: geometric mean 3.97x, maximum 26x).
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import run_table1

#: Representative subset: one quiet benchmark, one noisy one, the motivation
#: kernel.  The full 11-benchmark table is what EXPERIMENTS.md reports.
BENCHMARKS = ("mm", "lu", "gemver")


@pytest.mark.benchmark(group="table1")
def test_bench_table1(benchmark, scale_factory):
    scale = scale_factory(BENCHMARKS)
    result = benchmark.pedantic(
        run_table1, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())
    assert len(result.rows) == len(BENCHMARKS)
    assert result.geometric_mean_speedup > 0
