"""Micro-benchmarks of the batched predict/ALC hot path.

Every iteration of the paper's Algorithm 1 scores a candidate batch against
a reference batch across every dynamic-tree particle — this *is* the cost
of reproduction, which is why the tree inference was lowered onto the
flat-array kernel (:mod:`repro.models.flat_tree`).  The benchmarks here pit
that kernel against the per-node reference implementation (the seed's
pure-Python descent loops, kept as ``predict_reference`` /
``expected_average_variance_reference``) at "bench scale": 60 candidates ×
40 reference points × 40 particles.

Results are exported to ``BENCH_model.json`` (see ``conftest.py``), so the
vectorized-vs-reference ratio — the before/after speedup — is recorded
machine-readably on every run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor

N_CANDIDATES = 60
N_REFERENCE = 40
N_PARTICLES = 40
N_TRAIN = 150
DIMS = 6


def _make_model(vectorized: bool):
    rng = np.random.default_rng(0)
    X = rng.uniform(-1.5, 1.5, size=(N_TRAIN, DIMS))
    y = (
        1.0
        + 0.3 * X[:, 0]
        + np.where(X[:, 1] > 0, 0.5, 0.0)
        + rng.normal(0, 0.02, N_TRAIN)
    )
    model = DynamicTreeRegressor(
        DynamicTreeConfig(n_particles=N_PARTICLES, vectorized=vectorized),
        rng=np.random.default_rng(1),
    )
    model.fit(X, y)
    candidates = rng.uniform(-1.5, 1.5, size=(N_CANDIDATES, DIMS))
    reference = candidates[rng.choice(N_CANDIDATES, size=N_REFERENCE, replace=False)]
    return model, candidates, reference


@pytest.mark.benchmark(group="predict-alc")
@pytest.mark.parametrize("kernel", ["vectorized", "reference"])
def test_bench_predict_alc(benchmark, kernel):
    """One acquisition scoring pass: batched predict + ALC over all particles.

    ``reference`` is the seed implementation (per-node Python descent);
    ``vectorized`` is the flat-array kernel.  Their ratio in
    ``BENCH_model.json`` is the tracked before/after speedup.
    """
    model, candidates, reference = _make_model(vectorized=(kernel == "vectorized"))
    if kernel == "vectorized":

        def score_once():
            model.predict(candidates)
            return model.expected_average_variance(candidates, reference)

    else:

        def score_once():
            model.predict_reference(candidates)
            return model.expected_average_variance_reference(candidates, reference)

    scores = benchmark(score_once)
    assert scores.shape == (N_CANDIDATES,)


@pytest.mark.benchmark(group="predict-alc")
def test_bench_acquisition_iteration(benchmark):
    """A full learner-iteration model workload: update (cache invalidation +
    patching) followed by batched ALC scoring and a prediction, i.e. what
    the vectorized pipeline pays per Algorithm-1 iteration."""
    model, candidates, reference = _make_model(vectorized=True)
    rng = np.random.default_rng(7)
    xs = rng.uniform(-1.5, 1.5, size=(512, DIMS))
    ys = 1.0 + 0.3 * xs[:, 0] + np.where(xs[:, 1] > 0, 0.5, 0.0)
    state = {"i": 0}

    def one_iteration():
        i = state["i"] = (state["i"] + 1) % xs.shape[0]
        model.update(xs[i], float(ys[i]))
        scores = model.expected_average_variance(candidates, reference)
        model.predict(candidates[: int(np.argmax(-scores)) + 1])
        return scores

    scores = benchmark(one_iteration)
    assert scores.shape == (N_CANDIDATES,)


@pytest.mark.benchmark(group="predict-alc")
@pytest.mark.parametrize("batch", [16, 256])
def test_bench_batched_predict(benchmark, batch):
    """Raw batched prediction throughput at two batch sizes."""
    model, _, _ = _make_model(vectorized=True)
    rng = np.random.default_rng(3)
    X = rng.uniform(-1.5, 1.5, size=(batch, DIMS))

    prediction = benchmark(model.predict, X)
    assert prediction.mean.shape == (batch,)
