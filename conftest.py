"""Root pytest configuration: the chaos-seed plumbing.

The randomised chaos tests (``tests/test_chaos.py``) draw their fault
plans from one per-run seed so every CI run explores a different fault
schedule while any failure stays reproducible: the seed is echoed in the
pytest report header and can be pinned with ``--chaos-seed N``.
"""

from __future__ import annotations

import random

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "seed for the randomised chaos tests (default: a fresh random "
            "seed, echoed in the report header for reproduction)"
        ),
    )


def pytest_configure(config):
    seed = config.getoption("--chaos-seed")
    if seed is None:
        seed = random.SystemRandom().randrange(2**31)
    config._chaos_seed = seed


def pytest_report_header(config):
    seed = config._chaos_seed
    return f"chaos-seed: {seed} (reproduce with --chaos-seed {seed})"


@pytest.fixture
def chaos_seed(request):
    """The per-run seed for randomised chaos scenarios."""
    return request.config._chaos_seed
