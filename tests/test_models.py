"""Tests for the surrogate models: dynamic tree, GP, baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.base import Prediction
from repro.models.baselines import ConstantMeanModel, KNNRegressor
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.models.gp import GaussianProcessRegressor


def piecewise(X: np.ndarray) -> np.ndarray:
    """A noise-free piecewise-constant-ish target, tree-friendly by design."""
    return np.where(X[:, 0] > 0.0, 2.0 + 0.3 * X[:, 1], -1.0 + 0.1 * X[:, 0])


@pytest.fixture
def training_data(rng):
    X = rng.uniform(-2, 2, size=(120, 2))
    y = piecewise(X) + rng.normal(0, 0.05, size=120)
    return X, y


class TestPrediction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Prediction(mean=np.zeros(3), variance=np.zeros(2))


class TestDynamicTreeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicTreeConfig(n_particles=0)
        with pytest.raises(ValueError):
            DynamicTreeConfig(split_alpha=1.5)
        with pytest.raises(ValueError):
            DynamicTreeConfig(min_leaf=0)
        with pytest.raises(ValueError):
            DynamicTreeConfig(resample_threshold=0.0)

    def test_split_probability_decreases_with_depth(self):
        config = DynamicTreeConfig()
        assert config.split_probability(0) > config.split_probability(2) > 0


class TestDynamicTree:
    def make_model(self, particles=20, seed=0):
        return DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=particles),
            rng=np.random.default_rng(seed),
        )

    def test_requires_fit_before_use(self):
        model = self.make_model()
        with pytest.raises(RuntimeError):
            model.update(np.zeros(2), 1.0)
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 2)))

    def test_fit_and_predict_shapes(self, training_data):
        X, y = training_data
        model = self.make_model()
        model.fit(X[:30], y[:30])
        prediction = model.predict(X[30:40])
        assert prediction.mean.shape == (10,)
        assert prediction.variance.shape == (10,)
        assert np.all(prediction.variance > 0)
        assert model.training_size == 30
        assert model.n_particles == 20

    def test_learns_piecewise_structure(self, training_data, rng):
        X, y = training_data
        model = self.make_model(particles=30)
        model.fit(X[:20], y[:20])
        for i in range(20, len(X)):
            model.update(X[i], y[i])
        X_test = rng.uniform(-2, 2, size=(200, 2))
        prediction = model.predict(X_test)
        rmse = float(np.sqrt(np.mean((prediction.mean - piecewise(X_test)) ** 2)))
        # The two levels are ~3 apart; a model that learned nothing scores ~1.5.
        assert rmse < 0.5

    def test_beats_constant_baseline(self, training_data, rng):
        X, y = training_data
        tree = self.make_model(particles=25)
        tree.fit(X, y)
        constant = ConstantMeanModel()
        constant.fit(X, y)
        X_test = rng.uniform(-2, 2, size=(150, 2))
        truth = piecewise(X_test)
        tree_rmse = np.sqrt(np.mean((tree.predict(X_test).mean - truth) ** 2))
        const_rmse = np.sqrt(np.mean((constant.predict(X_test).mean - truth) ** 2))
        assert tree_rmse < const_rmse * 0.6

    def test_trees_actually_grow(self, training_data):
        X, y = training_data
        model = self.make_model()
        model.fit(X, y)
        assert np.mean(model.leaf_counts()) > 1.5

    def test_variance_shrinks_with_repeated_observations(self):
        """Sequential analysis foundation: more samples => tighter prediction."""
        model = self.make_model(particles=20)
        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, size=(10, 2))
        y = 1.0 + 0.1 * X[:, 0] + rng.normal(0, 0.2, size=10)
        model.fit(X, y)
        target = np.array([0.5, 0.5])
        before = float(model.predict(target[None, :]).variance[0])
        for _ in range(25):
            model.update(target, 1.05 + rng.normal(0, 0.02))
        after = float(model.predict(target[None, :]).variance[0])
        assert after < before

    def test_feature_dimension_mismatch_rejected(self, training_data):
        X, y = training_data
        model = self.make_model()
        model.fit(X[:10], y[:10])
        with pytest.raises(ValueError):
            model.update(np.zeros(5), 1.0)

    def test_fit_rejects_inconsistent_shapes(self):
        model = self.make_model()
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 2)), np.zeros(0))

    def test_expected_average_variance_shape_and_bounds(self, training_data, rng):
        X, y = training_data
        model = self.make_model()
        model.fit(X, y)
        candidates = rng.uniform(-2, 2, size=(15, 2))
        reference = rng.uniform(-2, 2, size=(25, 2))
        scores = model.expected_average_variance(candidates, reference)
        assert scores.shape == (15,)
        assert np.all(scores >= 0)
        base = float(np.mean(model.predict(reference).variance))
        assert np.all(scores <= base + 1e-9)

    def test_deterministic_given_seed(self, training_data):
        X, y = training_data
        a = self.make_model(seed=7)
        b = self.make_model(seed=7)
        a.fit(X[:50], y[:50])
        b.fit(X[:50], y[:50])
        grid = np.array([[0.0, 0.0], [1.0, -1.0]])
        np.testing.assert_allclose(a.predict(grid).mean, b.predict(grid).mean)


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        X = rng.uniform(-1, 1, size=(30, 2))
        y = np.sin(X[:, 0]) + X[:, 1]
        gp = GaussianProcessRegressor(noise_variance=1e-8)
        gp.fit(X, y)
        prediction = gp.predict(X)
        assert np.allclose(prediction.mean, y, atol=1e-2)

    def test_variance_larger_far_from_data(self, rng):
        X = rng.uniform(-1, 1, size=(30, 2))
        y = X[:, 0]
        gp = GaussianProcessRegressor()
        gp.fit(X, y)
        near = gp.predict(np.array([[0.0, 0.0]])).variance[0]
        far = gp.predict(np.array([[30.0, 30.0]])).variance[0]
        assert far > near

    def test_update_appends_data(self, rng):
        gp = GaussianProcessRegressor()
        gp.update(np.array([0.0, 0.0]), 1.0)
        gp.update(np.array([1.0, 1.0]), 2.0)
        assert gp.training_size == 2
        assert gp.predict(np.array([[0.0, 0.0]])).mean.shape == (1,)

    def test_expected_average_variance_improves_near_candidate(self, rng):
        X = rng.uniform(-1, 1, size=(25, 2))
        y = X[:, 0] + 0.5 * X[:, 1]
        gp = GaussianProcessRegressor()
        gp.fit(X, y)
        reference = np.array([[3.0, 3.0]])
        near_reference = np.array([[3.0, 3.0]])
        far_from_reference = np.array([[0.0, 0.0]])
        scores = gp.expected_average_variance(
            np.vstack([near_reference, far_from_reference]), reference
        )
        # Sampling right at the lonely reference point removes more variance.
        assert scores[0] < scores[1]

    def test_predict_requires_data(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(RuntimeError):
            gp.predict(np.zeros((1, 2)))

    def test_rank1_update_matches_full_refit(self, rng):
        """The rank-1 Cholesky extension is equivalent to refactoring.

        With the hyper-parameters pinned by overrides, the incremental
        factor and a from-scratch ``cho_factor`` describe the same matrix,
        so predictions and ALC scores must agree to numerical precision
        however the observations arrived.
        """
        X = rng.uniform(-1, 1, size=(40, 3))
        y = np.sin(X[:, 0]) + 0.3 * X[:, 1] + rng.normal(0, 0.05, 40)
        kwargs = dict(lengthscale=0.8, signal_variance=1.2, noise_variance=0.01)
        incremental = GaussianProcessRegressor(refit_interval=1000, **kwargs)
        incremental.fit(X[:20], y[:20])
        incremental.predict(X[:1])  # trigger the initial factorization
        full = GaussianProcessRegressor(refit_interval=1, **kwargs)
        full.fit(X[:20], y[:20])
        for i in range(20, 40):
            incremental.update(X[i], float(y[i]))
            full.update(X[i], float(y[i]))
        grid = rng.uniform(-1, 1, size=(15, 3))
        a = incremental.predict(grid)
        b = full.predict(grid)
        np.testing.assert_allclose(a.mean, b.mean, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(a.variance, b.variance, rtol=1e-8, atol=1e-10)
        alc_a = incremental.expected_average_variance(grid[:5], grid[5:])
        alc_b = full.expected_average_variance(grid[:5], grid[5:])
        np.testing.assert_allclose(alc_a, alc_b, rtol=1e-8, atol=1e-12)

    def test_rank1_update_with_heuristic_hyperparameters_stays_close(self, rng):
        """Frozen-heuristic incremental updates track the refit model.

        Hyper-parameters drift slightly between refits, so only statistical
        closeness is required — this is the configuration the learner uses.
        """
        X = rng.uniform(-1, 1, size=(50, 2))
        y = X[:, 0] * X[:, 1] + rng.normal(0, 0.05, 50)
        incremental = GaussianProcessRegressor(refit_interval=10)
        incremental.fit(X[:30], y[:30])
        full = GaussianProcessRegressor(refit_interval=1)
        full.fit(X[:30], y[:30])
        for i in range(30, 50):
            incremental.update(X[i], float(y[i]))
            full.update(X[i], float(y[i]))
        grid = rng.uniform(-1, 1, size=(20, 2))
        a = incremental.predict(grid)
        b = full.predict(grid)
        assert incremental.training_size == full.training_size == 50
        np.testing.assert_allclose(a.mean, b.mean, atol=0.1)

    def test_refit_interval_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(refit_interval=0)

    def test_refit_interval_one_never_extends(self, rng, monkeypatch):
        """``refit_interval=1`` restores always-refit behaviour exactly:
        the rank-1 extension path must never run, even with predictions
        interleaved between updates."""
        X = rng.uniform(-1, 1, size=(30, 3))
        y = X[:, 0] + rng.normal(0, 0.01, 30)
        gp = GaussianProcessRegressor(refit_interval=1)
        gp.fit(X[:20], y[:20])
        calls = []
        original = GaussianProcessRegressor._extend_factor
        monkeypatch.setattr(
            GaussianProcessRegressor,
            "_extend_factor",
            lambda self, *args: calls.append(1) or original(self, *args),
        )
        for i in range(20, 30):
            gp.update(X[i], float(y[i]))
            gp.predict(X[:1])
        assert calls == []

    def test_refit_interval_counts_extensions_between_refits(self, rng, monkeypatch):
        """``refit_interval=k`` pays one full refit every k observations."""
        X = rng.uniform(-1, 1, size=(40, 2))
        y = X[:, 1] + rng.normal(0, 0.01, 40)
        gp = GaussianProcessRegressor(refit_interval=5)
        gp.fit(X[:20], y[:20])
        gp.predict(X[:1])
        refits = []
        original = GaussianProcessRegressor._refresh
        def counting(self):
            if self._stale:
                refits.append(self.training_size)
            return original(self)
        monkeypatch.setattr(GaussianProcessRegressor, "_refresh", counting)
        for i in range(20, 40):
            gp.update(X[i], float(y[i]))
            gp.predict(X[:1])
        assert len(refits) == 4  # 20 observations / interval 5

    def test_near_duplicate_update_falls_back_to_refit(self):
        """A nearly-duplicate point keeps the factor positive-definite by
        falling back to a full refit instead of extending."""
        gp = GaussianProcessRegressor(
            lengthscale=1.0, signal_variance=1.0, noise_variance=1e-12, jitter=1e-12,
            refit_interval=1000,
        )
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        gp.fit(X, np.array([1.0, 2.0]))
        gp.predict(X[:1])
        gp.update(np.array([0.0, 1e-9]), 1.0)
        prediction = gp.predict(np.array([[0.0, 0.0]]))
        assert np.isfinite(prediction.mean).all()
        assert np.isfinite(prediction.variance).all()


class TestSlidingWindow:
    """Sliding-window GP: rank-1 downdate vs full refit on the window."""

    def test_window_size_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(window_size=1)

    def test_fit_trims_to_the_window(self, rng):
        X = rng.uniform(-1, 1, size=(20, 2))
        y = X[:, 0]
        gp = GaussianProcessRegressor(window_size=8)
        gp.fit(X, y)
        assert gp.training_size == 8
        assert gp.window_size == 8

    def test_forget_oldest_requires_data(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(RuntimeError):
            gp.forget_oldest()

    def test_forget_oldest_on_single_point_empties_the_model(self):
        gp = GaussianProcessRegressor()
        gp.update(np.array([0.0, 0.0]), 1.0)
        gp.forget_oldest()
        assert gp.training_size == 0
        with pytest.raises(RuntimeError):
            gp.predict(np.zeros((1, 2)))

    def test_downdate_matches_full_refit_on_the_window(self, rng):
        """Streaming through a window via downdates is the *same model* as
        refitting from scratch on the last ``window_size`` observations.

        Hyper-parameters are pinned by overrides so both sides factor the
        identical matrix; refit_interval is effectively infinite so the
        windowed model exercises only extend + downdate after the seed fit.
        """
        window = 12
        kwargs = dict(lengthscale=0.7, signal_variance=2.0, noise_variance=0.05)
        X = rng.uniform(-1, 1, size=(40, 3))
        y = np.sin(X[:, 0]) + 0.3 * X[:, 1] + rng.normal(0, 0.05, 40)
        windowed = GaussianProcessRegressor(
            window_size=window, refit_interval=10**9, **kwargs
        )
        windowed.fit(X[:window], y[:window])
        windowed.predict(X[:1])  # trigger the initial factorization
        grid = rng.uniform(-1, 1, size=(15, 3))
        for i in range(window, 40):
            windowed.update(X[i], float(y[i]))
            assert windowed.training_size == window
            fresh = GaussianProcessRegressor(**kwargs)
            fresh.fit(X[i - window + 1 : i + 1], y[i - window + 1 : i + 1])
            a = windowed.predict(grid)
            b = fresh.predict(grid)
            np.testing.assert_allclose(a.mean, b.mean, rtol=1e-8, atol=1e-10)
            np.testing.assert_allclose(
                a.variance, b.variance, rtol=1e-8, atol=1e-10
            )

    def test_near_singular_window_stays_finite(self, rng):
        """Adversarial case: the window is packed with near-duplicate rows,
        so the factor is nearly singular.  Downdates (or their refit
        fallback) must keep predictions finite and the window pinned."""
        window = 6
        gp = GaussianProcessRegressor(
            window_size=window,
            lengthscale=1.0,
            signal_variance=1.0,
            noise_variance=1e-9,
            jitter=1e-12,
            refit_interval=10**9,
        )
        base = np.array([0.3, -0.2])
        for i in range(window + 20):
            point = base + 1e-10 * rng.normal(size=2)
            gp.update(point, 1.0 + 1e-6 * i)
            prediction = gp.predict(base[None, :])
            assert np.isfinite(prediction.mean).all()
            assert np.isfinite(prediction.variance).all()
            assert gp.training_size <= window

    def test_windowed_model_forgets_stale_regions(self, rng):
        """After the window slides past an old regime, predictions follow
        the recent data rather than averaging both regimes."""
        gp = GaussianProcessRegressor(window_size=10, noise_variance=1e-6)
        for _ in range(10):
            gp.update(rng.uniform(-1, 0, size=2), -5.0)
        for _ in range(10):
            gp.update(rng.uniform(0, 1, size=2), 5.0)
        prediction = gp.predict(np.array([[0.5, 0.5]]))
        assert prediction.mean[0] > 4.0

    def test_gp_window_factory_name(self):
        from repro.models import model_factory

        model = model_factory("gp-window", tree_particles=8)(
            np.random.default_rng(0)
        )
        assert isinstance(model, GaussianProcessRegressor)
        assert model.window_size == 100


class TestBaselines:
    def test_constant_model(self, rng):
        model = ConstantMeanModel()
        model.fit(np.zeros((4, 2)), np.array([1.0, 2.0, 3.0, 4.0]))
        prediction = model.predict(rng.normal(size=(5, 2)))
        assert np.allclose(prediction.mean, 2.5)
        model.update(np.zeros(2), 10.0)
        assert model.training_size == 5

    def test_constant_model_requires_data(self):
        with pytest.raises(RuntimeError):
            ConstantMeanModel().predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            ConstantMeanModel().fit(np.zeros((0, 2)), np.zeros(0))

    def test_knn_predicts_local_mean(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array([1.0, 1.2, 9.0, 9.2])
        model = KNNRegressor(k=2)
        model.fit(X, y)
        prediction = model.predict(np.array([[0.05], [5.05]]))
        assert prediction.mean[0] == pytest.approx(1.1)
        assert prediction.mean[1] == pytest.approx(9.1)

    def test_knn_variance_grows_with_distance(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        model = KNNRegressor(k=2)
        model.fit(X, y)
        near = model.predict(np.array([[0.5]])).variance[0]
        far = model.predict(np.array([[50.0]])).variance[0]
        assert far > near

    def test_knn_validation(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)
        model = KNNRegressor()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 1)))

    def test_knn_update(self):
        model = KNNRegressor(k=1)
        model.update(np.array([0.0]), 5.0)
        assert model.predict(np.array([[0.0]])).mean[0] == pytest.approx(5.0)
