"""Ask/tell :class:`TuningSession` and the measurement-broker layer.

The load-bearing guarantees:

* **bit-identity** — the inverted ask/tell loop reproduces the
  pre-refactor inline loop exactly (curve, cost ledger, observation
  counts, RNG stream) for every sampling plan, pinned against a frozen
  copy of the old loop kept in this file;
* **resume** — a mid-session pickle resumed through ``ActiveLearner.run``
  continues the trajectory bit-for-bit, from any checkpoint;
* **replay** — a :class:`ReplayBroker` over a recorded trace serves a
  repeated run without a single live ``Profiler.measure`` call, and the
  registry's ``replay_trace`` plumbing re-scores ablation arms from a
  recorded table1 trace;
* **unit isolation** — trace records are namespaced by the recording
  unit's identity: units sharing a trace directory never replay each
  other's observations implicitly, and a session's RNG / drift-noise
  state is only ever restored from records that same unit wrote.
  Cross-unit serving happens solely through the explicit re-scoring mode
  (``rescore_from``), which shares observations but never state.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.curves import CurvePoint, LearningCurve
from repro.core.candidates import CandidatePool
from repro.core.evaluation import build_test_set, evaluate_rmse
from repro.core.learner import ActiveLearner, LearnerCheckpoint, LearnerConfig
from repro.core.plans import adaptive_ci_plan, fixed_plan, sequential_plan
from repro.core.session import DONE, LEARNING, SEEDING, TuningSession
from repro.measurement.broker import (
    MeasurementRequest,
    MeasurementResult,
    ProfilerBroker,
    ReplayBroker,
    ReplayMissError,
    ReplayTrace,
)
from repro.measurement.profiler import Profiler
from repro.measurement.stats import RunningStats
from repro.spapt.suite import get_benchmark

SMALL = LearnerConfig(
    n_initial=4,
    seed_observations=4,
    n_candidates=15,
    max_training_examples=24,
    reference_size=10,
    evaluation_interval=5,
    tree_particles=8,
)

PLANS = {
    "fixed3": lambda: fixed_plan(3),
    "fixed1": lambda: fixed_plan(1),
    "sequential": lambda: sequential_plan(5),
    "adaptive": lambda: adaptive_ci_plan(0.05, max_observations=6),
}


@pytest.fixture(scope="module")
def mm():
    return get_benchmark("mm")


def _test_set(benchmark):
    return build_test_set(
        benchmark, size=30, observations=2, rng=np.random.default_rng(42)
    )


def _fingerprint(result):
    return (
        [
            (p.cost_seconds, p.rmse, p.training_examples, p.observations)
            for p in result.curve.points
        ],
        (
            result.ledger.compile_seconds,
            result.ledger.runtime_seconds,
            result.ledger.compilations,
            result.ledger.executions,
        ),
        result.observation_counts,
        result.training_examples,
    )


def _reference_run(benchmark, plan, config, test_set, rng):
    """Frozen copy of the pre-refactor inline loop (Algorithm 1).

    This is the loop :class:`TuningSession` replaced, kept verbatim (minus
    checkpointing) so the ask/tell refactor stays pinned to the exact
    trajectory — same RNG draw order, same ledger arithmetic — it inverted.
    Returns ``(fingerprint, rng)`` so callers can also compare the final
    generator state.
    """
    from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor

    space = benchmark.search_space
    profiler = Profiler(benchmark, rng=rng)
    pool = CandidatePool(
        space,
        max_observations=plan.max_observations_per_example,
        revisit=plan.revisit,
    )
    model = DynamicTreeRegressor(
        DynamicTreeConfig(
            n_particles=config.tree_particles, backend=config.tree_backend
        ),
        rng=np.random.default_rng(rng.integers(2 ** 63)),
    )
    curve = LearningCurve(plan.name)

    def record_point(training_examples):
        curve.add(
            CurvePoint(
                cost_seconds=profiler.ledger.total_seconds,
                rmse=evaluate_rmse(model, test_set),
                training_examples=training_examples,
                observations=profiler.ledger.executions,
            )
        )

    n_seed = min(config.n_initial, space.size)
    seed_configurations = space.sample_distinct(n_seed, rng)
    seed_features = benchmark.features_many(seed_configurations)
    seed_targets = []
    for configuration in seed_configurations:
        profiler.measure(configuration, repetitions=config.seed_observations)
        pool.record(configuration, config.seed_observations)
        seed_targets.append(profiler.mean_runtime(configuration))
    model.fit(seed_features, np.asarray(seed_targets))
    record_point(n_seed)
    training_examples = n_seed

    from repro.core.acquisition import ALCAcquisition

    acquisition = ALCAcquisition()
    for iteration in range(n_seed, config.max_training_examples):
        if (
            config.max_cost_seconds is not None
            and profiler.ledger.total_seconds >= config.max_cost_seconds
        ):
            break
        if pool.exhausted():
            break
        candidates = pool.draw(config.n_candidates, rng)
        if not candidates:
            break
        candidate_features = benchmark.features_many(candidates)
        size = min(config.reference_size, candidate_features.shape[0])
        indices = rng.choice(candidate_features.shape[0], size=size, replace=False)
        reference_features = candidate_features[indices]
        index = acquisition.select(
            model, candidate_features, reference_features, rng
        )
        chosen = candidates[index]

        observations = list(
            profiler.measure(chosen, repetitions=plan.observations_per_selection)
        )
        if plan.ci_threshold is not None:
            already = profiler.observation_count(chosen)
            while (
                already < plan.max_observations_per_example
                and not profiler.summary(chosen).passes_ci_validation(
                    plan.ci_threshold
                )
            ):
                observations.extend(profiler.measure(chosen, repetitions=1))
                already += 1
        observations = np.asarray(observations)
        pool.record(chosen, len(observations))
        chosen_features = benchmark.features(chosen)
        if plan.aggregate_mean:
            model.update(chosen_features, float(np.mean(observations)))
        else:
            for observation in observations:
                model.update(chosen_features, float(observation))
        training_examples = iteration + 1
        if (
            (training_examples - n_seed) % config.evaluation_interval == 0
            or training_examples == config.max_training_examples
        ):
            record_point(training_examples)

    if not curve.points or curve.points[-1].training_examples != training_examples:
        record_point(training_examples)

    fingerprint = (
        [
            (p.cost_seconds, p.rmse, p.training_examples, p.observations)
            for p in curve.points
        ],
        (
            profiler.ledger.compile_seconds,
            profiler.ledger.runtime_seconds,
            profiler.ledger.compilations,
            profiler.ledger.executions,
        ),
        pool.observation_counts,
        training_examples,
    )
    return fingerprint, rng


class TestBitIdentity:
    """The inverted loop vs the frozen pre-refactor loop, per plan."""

    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    def test_ask_tell_matches_reference_loop(self, mm, plan_name):
        plan = PLANS[plan_name]()
        expected, reference_rng = _reference_run(
            mm, plan, SMALL, _test_set(mm), np.random.default_rng(777)
        )

        learner = ActiveLearner(
            mm, plan=PLANS[plan_name](), config=SMALL,
            rng=np.random.default_rng(777),
        )
        session = learner.start_session(_test_set(mm))
        broker = ProfilerBroker(Profiler(mm, rng=session.rng))
        while (request := session.ask()) is not None:
            session.tell(broker.measure(request))
        result = session.result()

        assert _fingerprint(result) == expected
        # Same number of draws in the same order: the generators end in
        # bit-identical states.
        assert (
            session.rng.bit_generator.state == reference_rng.bit_generator.state
        )

    def test_learner_run_is_the_same_driver(self, mm):
        """``ActiveLearner.run`` is a thin ask/measure/tell wrapper."""
        manual_learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL,
            rng=np.random.default_rng(777),
        )
        session = manual_learner.start_session(_test_set(mm))
        broker = ProfilerBroker(Profiler(mm, rng=session.rng))
        while (request := session.ask()) is not None:
            session.tell(broker.measure(request))
        manual = _fingerprint(session.result())

        run_learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL,
            rng=np.random.default_rng(777),
        )
        assert _fingerprint(run_learner.run(_test_set(mm))) == manual

    def test_learner_instance_is_stateless(self, mm):
        """Running twice gives identical results; the caller's generator
        is never consumed (the session owns a deep copy)."""
        rng = np.random.default_rng(777)
        before = rng.bit_generator.state
        learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL, rng=rng
        )
        first = _fingerprint(learner.run(_test_set(mm)))
        second = _fingerprint(learner.run(_test_set(mm)))
        assert first == second
        assert rng.bit_generator.state == before


class TestSessionProtocol:
    def _session(self, mm, plan=None):
        learner = ActiveLearner(
            mm,
            plan=plan if plan is not None else sequential_plan(5),
            config=SMALL,
            rng=np.random.default_rng(7),
        )
        return learner.start_session(_test_set(mm))

    def test_phases(self, mm):
        session = self._session(mm)
        assert session.phase == SEEDING
        assert not session.done
        broker = ProfilerBroker(Profiler(mm, rng=session.rng))
        for _ in range(session.n_seed if session.n_seed else SMALL.n_initial):
            session.tell(broker.measure(session.ask()))
        assert session.phase == LEARNING
        while (request := session.ask()) is not None:
            session.tell(broker.measure(request))
        assert session.phase == DONE
        assert session.done
        # ask() after completion stays None.
        assert session.ask() is None

    def test_batched_ask_returns_a_list_of_requests(self, mm):
        # ask(k > 1) is batch acquisition now (tests/test_batch_acquisition.py
        # covers it in depth); at the protocol level a batch ask returns a
        # list of distinct-configuration requests and k must be positive.
        session = self._session(mm)
        requests = session.ask(k=2)
        assert isinstance(requests, list) and len(requests) == 2
        assert len({r.configuration for r in requests}) == 2
        with pytest.raises(RuntimeError, match="outstanding"):
            session.ask()

    def test_nonpositive_batch_size_rejected(self, mm):
        session = self._session(mm)
        with pytest.raises(ValueError, match="at least 1"):
            session.ask(k=0)

    def test_ask_with_pending_request_rejected(self, mm):
        session = self._session(mm)
        session.ask()
        with pytest.raises(RuntimeError, match="outstanding"):
            session.ask()

    def test_tell_without_ask_rejected(self, mm):
        session = self._session(mm)
        with pytest.raises(RuntimeError, match="without an outstanding"):
            session.tell(
                MeasurementResult(configuration=(0, 0, 0), runtimes=(1.0,))
            )

    def test_tell_configuration_must_match(self, mm):
        session = self._session(mm)
        request = session.ask()
        wrong = tuple(v + 1 for v in request.configuration)
        with pytest.raises(ValueError, match="configuration"):
            session.tell(MeasurementResult(configuration=wrong, runtimes=(1.0,)))

    def test_result_requires_completion(self, mm):
        session = self._session(mm)
        with pytest.raises(RuntimeError, match="only available once"):
            session.result()

    def test_requests_carry_the_plan_protocol(self, mm):
        plan = adaptive_ci_plan(0.05, max_observations=6)
        session = self._session(mm, plan=plan)
        broker = ProfilerBroker(Profiler(mm, rng=session.rng))
        # Seeding requests take the seed repetition count, no CI rule.
        request = session.ask()
        assert request.repetitions == SMALL.seed_observations
        assert request.ci_threshold is None
        while session.phase == SEEDING:
            session.tell(broker.measure(request))
            request = session.ask()
        # Learning requests under the CI plan carry the stopping rule.
        assert request.repetitions == plan.observations_per_selection
        assert request.ci_threshold == plan.ci_threshold
        assert request.max_observations == plan.max_observations_per_example

    def test_should_checkpoint_cadence(self, mm):
        session = self._session(mm)
        broker = ProfilerBroker(Profiler(mm, rng=session.rng))
        fired = []
        while (request := session.ask()) is not None:
            session.tell(broker.measure(request))
            if session.should_checkpoint(4):
                fired.append(session.training_examples)
        n_seed = session.n_seed
        # Never during or right after seeding; every 4 examples past it.
        assert fired == [n_seed + 4 * k for k in range(1, len(fired) + 1)]
        assert fired, "cadence never fired"


class TestSessionPickle:
    def test_mid_session_resume_is_bit_identical(self, mm):
        baseline_learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL,
            rng=np.random.default_rng(777),
        )
        baseline = _fingerprint(baseline_learner.run(_test_set(mm)))

        blobs = []
        recording = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL,
            rng=np.random.default_rng(777),
        )
        recording.run(
            _test_set(mm),
            checkpoint_interval=4,
            checkpoint_sink=lambda s: blobs.append(
                pickle.dumps(s, protocol=pickle.HIGHEST_PROTOCOL)
            ),
        )
        assert blobs, "no checkpoints emitted"

        for index, blob in enumerate(blobs):
            session = pickle.loads(blob)
            assert isinstance(session, TuningSession)
            resumed = ActiveLearner(
                mm, plan=sequential_plan(5), config=SMALL,
                rng=np.random.default_rng(12345),  # decoy: must be unused
            )
            result = resumed.run(_test_set(mm), resume=session)
            assert _fingerprint(result) == baseline, f"checkpoint {index} diverged"

    def test_resume_rejects_other_plans(self, mm):
        learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL,
            rng=np.random.default_rng(7),
        )
        blobs = []
        learner.run(
            _test_set(mm),
            checkpoint_interval=4,
            checkpoint_sink=lambda s: blobs.append(pickle.dumps(s)),
        )
        other = ActiveLearner(
            mm, plan=fixed_plan(3), config=SMALL, rng=np.random.default_rng(7)
        )
        with pytest.raises(ValueError, match="checkpoint is for plan"):
            other.run(_test_set(mm), resume=pickle.loads(blobs[0]))

    def test_attach_benchmark_validates_name(self, mm):
        learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL,
            rng=np.random.default_rng(7),
        )
        session = pickle.loads(pickle.dumps(learner.start_session(_test_set(mm))))
        with pytest.raises(ValueError, match="benchmark"):
            session.attach_benchmark(get_benchmark("adi"))

    def test_learner_checkpoint_is_the_session(self):
        """The old checkpoint name survives as an alias of the session."""
        assert LearnerCheckpoint is TuningSession

    def test_foreign_pickle_state_rejected(self):
        session = TuningSession.__new__(TuningSession)
        with pytest.raises(AttributeError, match="incompatible checkpoint"):
            session.__setstate__({"plan_name": "variable", "next_iteration": 9})


class TestMeasurementRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementRequest(benchmark="mm", configuration=(1,), repetitions=0)
        with pytest.raises(ValueError):
            MeasurementRequest(
                benchmark="mm", configuration=(1,), repetitions=1,
                ci_threshold=0.05,  # CI rule needs a cap
            )
        with pytest.raises(ValueError):
            MeasurementResult(configuration=(1,), runtimes=())

    def test_configuration_canonicalised(self):
        request = MeasurementRequest(
            benchmark="mm", configuration=np.array([1, 2, 3]), repetitions=2
        )
        assert request.configuration == (1, 2, 3)
        assert all(isinstance(v, int) for v in request.configuration)

    def test_prior_observations(self):
        stats = RunningStats()
        stats.add(1.0)
        stats.add(2.0)
        request = MeasurementRequest(
            benchmark="mm", configuration=(1,), repetitions=1,
            ci_threshold=0.1, max_observations=6, prior_stats=stats,
        )
        assert request.prior_observations == 2
        bare = MeasurementRequest(
            benchmark="mm", configuration=(1,), repetitions=1
        )
        assert bare.prior_observations == 0

    def test_plan_measurement_request_copies_prior_stats(self):
        plan = adaptive_ci_plan(0.05, max_observations=6)
        stats = RunningStats()
        stats.add(3.0)
        request = plan.measurement_request("mm", (1, 2), prior_stats=stats)
        assert request.ci_threshold == plan.ci_threshold
        assert request.max_observations == plan.max_observations_per_example
        assert request.prior_stats is not stats
        stats.add(4.0)
        assert request.prior_stats.count == 1  # snapshot, not a reference


class TestReplay:
    def test_trace_round_trip(self, tmp_path):
        trace = ReplayTrace(tmp_path)
        assert trace.lookup("mm", (1, 2), 0) is None
        trace.record(
            "mm", (1, 2), 0,
            MeasurementResult(
                configuration=(1, 2), runtimes=(0.5, 0.75),
                compile_seconds=(2.0,),
            ),
            rng_state={"state": 1},
        )
        record = trace.lookup("mm", (1, 2), 0)
        assert record["runtimes"] == [0.5, 0.75]
        assert record["compile"] == [2.0]
        assert record["rng_state"] == {"state": 1}
        # First record wins; duplicates are ignored.
        trace.record(
            "mm", (1, 2), 0,
            MeasurementResult(configuration=(1, 2), runtimes=(9.9,)),
        )
        assert trace.lookup("mm", (1, 2), 0)["runtimes"] == [0.5, 0.75]
        # A fresh instance reads the same data back from disk; len counts
        # appended lines (the shadowed duplicate included).
        reread = ReplayTrace(tmp_path)
        assert reread.lookup("mm", (1, 2), 0)["runtimes"] == [0.5, 0.75]
        assert len(reread) == 2

    def test_miss_without_fallback_raises(self, tmp_path):
        broker = ReplayBroker(ReplayTrace(tmp_path))
        with pytest.raises(ReplayMissError):
            broker.measure(
                MeasurementRequest(
                    benchmark="mm", configuration=(1, 2), repetitions=2
                )
            )

    def test_record_then_replay_zero_live_measures(self, mm, tmp_path, monkeypatch):
        test_set = _test_set(mm)

        def run(count, trace_dir):
            learner = ActiveLearner(
                mm, plan=sequential_plan(5), config=SMALL,
                rng=np.random.default_rng(777),
            )
            brokers = []

            def factory(base, rng):
                broker = ReplayBroker(
                    ReplayTrace(trace_dir), fallback=base, rng=rng
                )
                brokers.append(broker)
                return broker

            original = Profiler.measure

            def counting(self, *args, **kwargs):
                count["n"] += 1
                return original(self, *args, **kwargs)

            monkeypatch.setattr(Profiler, "measure", counting)
            try:
                result = learner.run(test_set, broker_factory=factory)
            finally:
                monkeypatch.setattr(Profiler, "measure", original)
            return _fingerprint(result), brokers[0]

        plain = _fingerprint(
            ActiveLearner(
                mm, plan=sequential_plan(5), config=SMALL,
                rng=np.random.default_rng(777),
            ).run(test_set)
        )

        recording_count = {"n": 0}
        recorded, recorder = run(recording_count, tmp_path)
        assert recorded == plain, "recording run diverged from plain run"
        assert recording_count["n"] > 0
        assert recorder.misses > 0 and recorder.hits == 0

        replay_count = {"n": 0}
        replayed, replayer = run(replay_count, tmp_path)
        assert replayed == plain, "replay diverged"
        assert replay_count["n"] == 0, "replay made live Profiler.measure calls"
        assert replayer.misses == 0
        assert replayer.hits == recorder.misses


class _CannedBroker:
    """Deterministic fallback broker: fixed runtimes, counts calls."""

    def __init__(self, runtimes=(0.5, 0.6)):
        self.calls = 0
        self._runtimes = tuple(runtimes)

    def measure(self, request):
        self.calls += 1
        repeats = -(-request.repetitions // len(self._runtimes))
        runtimes = (self._runtimes * repeats)[: request.repetitions]
        return MeasurementResult(
            configuration=request.configuration, runtimes=runtimes
        )


class TestReplayUnitIsolation:
    """The REVIEW fixes: units sharing one trace directory stay
    statistically independent, and no unit ever receives another unit's
    recorded RNG or noise state."""

    REQUEST = dict(benchmark="mm", configuration=(1, 2), repetitions=2)

    def test_units_never_share_records_while_recording(self, tmp_path):
        trace = ReplayTrace(tmp_path)
        first = ReplayBroker(
            trace, fallback=_CannedBroker((0.5, 0.6)),
            unit="table1--u1", artifact="table1",
        )
        first.measure(MeasurementRequest(**self.REQUEST))
        assert first.misses == 1

        # A sibling unit asking for the same (configuration, prior) must
        # measure live — cross-unit reuse would make a recording run
        # statistically different from a live run.
        live = _CannedBroker((0.7, 0.8))
        second = ReplayBroker(
            trace, fallback=live, unit="table1--u2", artifact="table1"
        )
        result = second.measure(MeasurementRequest(**self.REQUEST))
        assert live.calls == 1
        assert (second.hits, second.shared_hits, second.misses) == (0, 0, 1)
        assert result.runtimes == (0.7, 0.8)

        # Each unit replays its own record afterwards.
        for unit, expected in (("table1--u1", (0.5, 0.6)),
                               ("table1--u2", (0.7, 0.8))):
            replayer = ReplayBroker(ReplayTrace(tmp_path), unit=unit)
            replayed = replayer.measure(MeasurementRequest(**self.REQUEST))
            assert replayed.runtimes == expected
            assert replayer.hits == 1

    def test_without_rescore_mode_foreign_records_are_invisible(self, tmp_path):
        trace = ReplayTrace(tmp_path)
        ReplayBroker(
            trace, fallback=_CannedBroker(), unit="table1--u1",
            artifact="table1",
        ).measure(MeasurementRequest(**self.REQUEST))
        lone = ReplayBroker(ReplayTrace(tmp_path), unit="ablation--u1")
        with pytest.raises(ReplayMissError):
            lone.measure(MeasurementRequest(**self.REQUEST))

    def test_rescore_serves_foreign_observations_but_never_state(self, tmp_path):
        trace = ReplayTrace(tmp_path)
        recorder_rng = np.random.default_rng(1)
        recorder_rng.random(5)  # a distinctive mid-run state
        recorder = ReplayBroker(
            trace, fallback=_CannedBroker((0.5, 0.6)), rng=recorder_rng,
            unit="table1--u1", artifact="table1",
        )
        recorder.measure(MeasurementRequest(**self.REQUEST))

        rescorer_rng = np.random.default_rng(2)
        before = rescorer_rng.bit_generator.state
        rescorer = ReplayBroker(
            ReplayTrace(tmp_path), rng=rescorer_rng,
            unit="acquisition-ablation--u1", artifact="acquisition-ablation",
            rescore_from=("table1",),
        )
        result = rescorer.measure(MeasurementRequest(**self.REQUEST))
        assert result.runtimes == (0.5, 0.6)
        assert (rescorer.hits, rescorer.shared_hits, rescorer.misses) == (0, 1, 0)
        # The foreign unit's recorded generator state was NOT injected.
        assert rescorer_rng.bit_generator.state == before
        # Artifacts outside rescore_from stay invisible.
        other = ReplayBroker(
            ReplayTrace(tmp_path), unit="x--u1", artifact="x",
            rescore_from=("figure1",),
        )
        with pytest.raises(ReplayMissError):
            other.measure(MeasurementRequest(**self.REQUEST))

    def test_identical_sibling_unit_measures_live(self, mm, tmp_path, monkeypatch):
        """Two units with bit-identical trajectories recording into one
        trace: the second must re-measure everything (fresh noise draws),
        while a replay under the first unit's own id profiles nothing."""
        test_set = _test_set(mm)
        counts = []

        def run(unit_id):
            count = {"n": 0}
            original = Profiler.measure

            def counting(self, *args, **kwargs):
                count["n"] += 1
                return original(self, *args, **kwargs)

            learner = ActiveLearner(
                mm, plan=sequential_plan(5), config=SMALL,
                rng=np.random.default_rng(777),
            )
            monkeypatch.setattr(Profiler, "measure", counting)
            try:
                result = learner.run(
                    test_set,
                    broker_factory=lambda base, rng: ReplayBroker(
                        ReplayTrace(tmp_path), fallback=base, rng=rng,
                        unit=unit_id, artifact="t",
                    ),
                )
            finally:
                monkeypatch.setattr(Profiler, "measure", original)
            counts.append(count["n"])
            return _fingerprint(result)

        first = run("t--u1")
        second = run("t--u2")
        again = run("t--u1")
        assert first == second == again  # same seed: same trajectory
        assert counts[0] > 0
        assert counts[1] == counts[0], "sibling unit reused recorded data"
        assert counts[2] == 0, "same-unit replay touched the profiler"

    def test_drift_state_recorded_and_restored_same_unit_only(self, tmp_path):
        from repro.measurement.noise import FrequencyDrift, NoiseModel

        model = NoiseModel([FrequencyDrift(step_sigma=0.01)])
        model.restore_drift_state([0.02])
        recorder = ReplayBroker(
            ReplayTrace(tmp_path), fallback=_CannedBroker(),
            rng=np.random.default_rng(3), noise_model=model,
            unit="t--u1", artifact="t",
        )
        recorder.measure(MeasurementRequest(**self.REQUEST))

        # Same unit replaying: the drift walk snaps back to the recorded
        # position, so a live fallback after the hit continues exactly.
        model.restore_drift_state([-0.01])
        replayer = ReplayBroker(
            ReplayTrace(tmp_path), rng=np.random.default_rng(3),
            noise_model=model, unit="t--u1",
        )
        replayer.measure(MeasurementRequest(**self.REQUEST))
        assert model.drift_state() == [0.02]

        # A re-scoring unit serving the same record leaves its own noise
        # model untouched.
        model.restore_drift_state([-0.01])
        foreign = ReplayBroker(
            ReplayTrace(tmp_path), noise_model=model, unit="a--u1",
            artifact="a", rescore_from=("t",),
        )
        foreign.measure(MeasurementRequest(**self.REQUEST))
        assert foreign.shared_hits == 1
        assert model.drift_state() == [-0.01]

    def test_lookup_sees_concurrent_appends(self, tmp_path):
        """A trace instance whose first read found nothing still sees
        records another process appended afterwards (re-read on miss)."""
        first = ReplayTrace(tmp_path)
        assert first.lookup("mm", (1,), 0) is None  # loads (and caches) the file
        second = ReplayTrace(tmp_path)  # a concurrent recorder
        second.record(
            "mm", (1,), 0,
            MeasurementResult(configuration=(1,), runtimes=(0.25,)),
            unit="t--u1", artifact="t",
        )
        found = first.lookup("mm", (1,), 0, unit="t--u1")
        assert found is not None and found["runtimes"] == [0.25]
        assert [r["runtimes"] for r in first.lookup_shared("mm", (1,), 0)] == [[0.25]]


class TestReplayThroughRegistry:
    def test_rescore_ablation_from_table1_trace(self, tmp_path, monkeypatch):
        from repro.core.learner import LearnerConfig as LC
        from repro.experiments.config import ExperimentScale
        from repro.experiments.registry import run_artifacts
        import repro.measurement.broker as broker_mod

        scale = ExperimentScale(
            name="test",
            benchmarks=("mm",),
            learner=LC(
                n_initial=4,
                seed_observations=4,
                n_candidates=12,
                max_training_examples=16,
                reference_size=8,
                evaluation_interval=5,
                tree_particles=6,
            ),
            repetitions=1,
            test_size=20,
            test_observations=2,
            dataset_configurations=20,
            dataset_observations=3,
            figure1_grid=4,
            seed=2017,
        )
        trace_dir = str(tmp_path / "trace")

        plain = run_artifacts(scale, ["table1"])["table1"].render()
        recorded = run_artifacts(scale, ["table1"], replay_trace=trace_dir)
        assert recorded["table1"].render() == plain

        # Replaying table1 never falls back to live measurement.
        def forbidden(self, request):
            raise AssertionError("live measurement during replay")

        monkeypatch.setattr(broker_mod.ProfilerBroker, "measure", forbidden)
        replayed = run_artifacts(scale, ["table1"], replay_trace=trace_dir)
        assert replayed["table1"].render() == plain
        monkeypatch.undo()

        # The ablation arms re-score against the same trace: requests that
        # coincide with recorded table1 measurements (e.g. the alc arm's
        # seeding phase, which shares its run seed with a table1 unit) are
        # served from disk in re-scoring mode, the rest falls back to live
        # profiling and extends the trace under the ablation units' own
        # namespaces.
        import repro.experiments.registry as registry_mod

        created = []

        class SpyBroker(broker_mod.ReplayBroker):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(registry_mod, "ReplayBroker", SpyBroker)
        before = len(ReplayTrace(trace_dir))
        ablation = run_artifacts(
            scale, ["acquisition-ablation"], replay_trace=trace_dir
        )
        monkeypatch.undo()
        assert "alc" in ablation["acquisition-ablation"].render()
        assert len(ReplayTrace(trace_dir)) > before
        assert created, "learner units did not build replay brokers"
        assert all(b.unit is not None for b in created)
        assert sum(b.shared_hits for b in created) > 0, (
            "re-scoring mode never served a recorded table1 measurement"
        )
        # Re-scored arms never replay table1 records *exactly* (that would
        # inject the recorded RNG stream into a different strategy's run).
        assert sum(b.misses for b in created) > 0


class TestRunAllFlag:
    def test_replay_trace_threads_to_backends(self, monkeypatch, tmp_path):
        import importlib

        run_all_mod = importlib.import_module("repro.experiments.run_all")

        seen = {}

        def fake_run_artifacts(scale, selected, workers=1, on_result=None,
                               replay_trace=None, profile_dir=None,
                               broker_policy=None):
            seen["memory"] = replay_trace
            return {}

        def fake_run_paper_run(scale, run_dir, **kwargs):
            seen["paper"] = kwargs.get("replay_trace")
            return ""

        monkeypatch.setattr(run_all_mod, "run_artifacts", fake_run_artifacts)
        monkeypatch.setattr(run_all_mod, "run_paper_run", fake_run_paper_run)

        run_all_mod.main(
            ["--only", "table1", "--replay-trace", str(tmp_path), "--output",
             str(tmp_path / "out.txt")]
        )
        assert seen["memory"] == str(tmp_path)

        run_all_mod.main(
            ["--paper-run", "--scale", "smoke",
             "--run-dir", str(tmp_path / "run"),
             "--replay-trace", str(tmp_path),
             "--output", str(tmp_path / "out2.txt")]
        )
        assert seen["paper"] == str(tmp_path)

    def test_replay_trace_rejected_for_paper_scale_smoke(self, tmp_path):
        import importlib

        run_all_mod = importlib.import_module("repro.experiments.run_all")

        with pytest.raises(SystemExit):
            run_all_mod.main(
                ["--paper-scale-smoke", "--replay-trace", str(tmp_path)]
            )
